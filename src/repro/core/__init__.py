"""Core: unified data model, shared backend, MultiModelDB facade."""

from repro.core import datamodel
from repro.core.context import BaseStore, EngineContext
from repro.core.database import MultiModelDB

__all__ = ["datamodel", "BaseStore", "EngineContext", "MultiModelDB"]
