"""Unified scan cursors — one iteration contract for all nine model stores.

Before this module every store exposed its own ad-hoc full-scan API
(``DocumentCollection.all``, ``Table.rows``, ``KeyValueBucket.items``,
``TreeStore.uris``, …) and the query executor special-cased each one, one
row at a time.  :class:`ScanCursor` replaces that drift with a single
batched protocol:

* ``next_batch(n)`` returns up to *n* frame values (the store's natural
  MMQL row shape) and ``[]`` once exhausted;
* ``close()`` releases the underlying snapshot iterator (idempotent);
* cursors are **snapshot/txn-aware**: opened inside a transaction they
  read the transaction's snapshot plus its own writes; outside, the row
  view materializes a point-in-time copy at open, so concurrent writers
  never perturb a running scan.

Every model store exposes ``scan_cursor(txn=None)`` (see the per-store
overrides); the legacy iteration methods survive as thin compat shims that
emit :class:`DeprecationWarning` via :func:`warn_deprecated_scan` (promoted
from :class:`PendingDeprecationWarning` one release after the cursor
protocol landed — the shims are next to go).
"""

from __future__ import annotations

import warnings
from itertools import islice
from typing import Any, Iterable, Iterator, Optional

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "ScanCursor",
    "IteratorScanCursor",
    "open_scan_cursor",
    "warn_deprecated_scan",
]

#: Engine-wide default batch size: large enough to amortize per-batch
#: bookkeeping (deadline checks, metric increments, probe accounting) to
#: noise, small enough that a batch of ordinary documents stays cache- and
#: frame-friendly.
DEFAULT_BATCH_SIZE = 256


class ScanCursor:
    """Batched iteration over one model store (the unified scan protocol).

    Subclasses implement :meth:`next_batch`; everything else — row
    iteration, batch iteration, context management — derives from it."""

    __slots__ = ()

    def next_batch(self, n: int = DEFAULT_BATCH_SIZE) -> list:
        """Up to *n* frame values in scan order; ``[]`` when exhausted."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the cursor (idempotent; exhausting a cursor also closes
        it)."""

    def batches(self, n: int = DEFAULT_BATCH_SIZE) -> Iterator[list]:
        """Stream non-empty batches of *n* until exhaustion."""
        while True:
            batch = self.next_batch(n)
            if not batch:
                return
            yield batch

    def __iter__(self) -> Iterator[Any]:
        """Row-at-a-time convenience view (batched underneath)."""
        for batch in self.batches():
            yield from batch

    def __enter__(self) -> "ScanCursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class IteratorScanCursor(ScanCursor):
    """A :class:`ScanCursor` over a snapshot iterator.

    The iterator is produced by the owning store (typically from
    ``BaseStore._raw_scan``, which snapshots committed state at open or
    reads through the supplied transaction), so batching here never
    changes visibility semantics."""

    __slots__ = ("_iterator", "_closed")

    def __init__(self, iterator: Iterable[Any]):
        self._iterator = iter(iterator)
        self._closed = False

    def next_batch(self, n: int = DEFAULT_BATCH_SIZE) -> list:
        if self._closed:
            return []
        batch = list(islice(self._iterator, max(int(n), 1)))
        if not batch:
            self.close()
        return batch

    def close(self) -> None:
        self._closed = True
        self._iterator = iter(())


def open_scan_cursor(db: Any, name: str, txn: Any = None) -> ScanCursor:
    """Open the unified scan cursor of any catalog object by name.

    This is the **only** way the query layer iterates a store — the
    per-kind legacy methods are compat shims for external callers."""
    from repro.errors import UnknownCollectionError

    store = db.resolve(name)
    opener = getattr(store, "scan_cursor", None)
    if opener is None:
        raise UnknownCollectionError(f"cannot iterate a {db.kind_of(name)}")
    return opener(txn=txn)


def warn_deprecated_scan(old: str, new: str = "scan_cursor()") -> None:
    """One-liner used by the legacy iteration shims on every store."""
    warnings.warn(
        f"{old} is deprecated; use {new} (the unified ScanCursor protocol)",
        DeprecationWarning,
        stacklevel=3,
    )


def _values_cursor(store: Any, txn: Optional[Any]) -> IteratorScanCursor:
    """Default cursor shape: the stored record values, scan order."""
    return IteratorScanCursor(
        value for _key, value in store._raw_scan(txn)
    )
