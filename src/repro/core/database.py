"""The :class:`MultiModelDB` facade — "one unified database for multi-model
data" (slide 10).

One instance owns the single integrated backend (central log, views,
transactions, indexes) and a catalog of model objects:

* relational **tables** (:class:`repro.relational.Table`),
* document **collections** (:class:`repro.document.DocumentCollection`),
* key/value **buckets** (:class:`repro.keyvalue.KeyValueBucket`),
* property **graphs** (:class:`repro.graph.PropertyGraph`),
* XML/JSON **tree stores** (:class:`repro.xmlmodel.TreeStore`),
* RDF **triple stores** (:class:`repro.rdf.TripleStore`).

Cross-model queries are written in MMQL (:meth:`query` / :meth:`explain`);
cross-model transactions span any mix of the above (:meth:`transaction`);
durability comes from an attached WAL (:meth:`attach_wal`,
:meth:`recover`).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Iterator, Optional

from repro.core.context import EngineContext
from repro.document.store import DocumentCollection
from repro.errors import DuplicateCollectionError, UnknownCollectionError
from repro.graph.store import PropertyGraph
from repro.keyvalue.store import KeyValueBucket
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import instrument_store
from repro.rdf.store import TripleStore
from repro.relational.schema import TableSchema
from repro.relational.table import Table
from repro.storage.wal import WriteAheadLog, replay_into
from repro.txn.consistency import ConsistencyLevel
from repro.txn.manager import IsolationLevel, Transaction
from repro.xmlmodel.store import TreeStore

__all__ = ["MultiModelDB"]


class MultiModelDB:
    """An embedded multi-model database."""

    def __init__(
        self,
        lock_timeout: float = 5.0,
        plan_cache_size: int = 128,
        batch_size: int = 256,
        columnar: bool = True,
    ):
        from repro.query.engine import PlanCache, QueryGuardrails
        from repro.query.rules import RuleToggles, SuggestionLog
        from repro.query.statistics import StatisticsStore

        self.context = EngineContext(lock_timeout=lock_timeout)
        #: Default vectorization width for query execution (frames per
        #: pipeline batch); per-query ``batch_size`` overrides it and
        #: ``guardrails.max_batch_size`` caps both.
        self.batch_size = max(int(batch_size), 1)
        #: Default columnar-scan switch: relational/wide-column scans run
        #: over typed column segments with zone-map pruning when on;
        #: per-query ``columnar=`` overrides it.  Results are identical
        #: either way — this is purely a physical-plan choice.
        self.columnar = bool(columnar)
        self._catalog: dict[str, tuple[str, Any]] = {}
        #: Serializes catalog DDL (``_register``/``drop``) against lookups:
        #: the network server runs sessions on a thread pool, and a DDL
        #: racing a lookup must never observe a half-registered object or a
        #: stale version stamp.  Reads take it too — it is uncontended in
        #: embedded single-threaded use.
        self._catalog_lock = threading.RLock()
        self._wal: Optional[WriteAheadLog] = None
        #: Monotone counter bumped by catalog DDL; together with the index
        #: manager's ``version`` it stamps plan-cache entries so DDL
        #: invalidates exactly the plans it could change.
        self.catalog_version = 0
        self.plan_cache = PlanCache(plan_cache_size)
        #: Default query limits (timeout seconds / max result rows); both
        #: ``None`` — i.e. disabled — unless the deployment opts in.
        self.guardrails = QueryGuardrails()
        #: Observed cardinality feedback (EXPLAIN ANALYZE actuals); its
        #: ``version`` joins the plan-cache validity stamp.
        self.statistics = StatisticsStore()
        #: Per-database rewrite-rule switchboard; the disabled-set
        #: fingerprint joins the plan-cache key.
        self.optimizer_rules = RuleToggles()
        #: Near-miss index suggestions recorded by the rewrite rules
        #: (surfaced by the advisor and the shell's ``.advise``).
        self.index_suggestions = SuggestionLog()

    # ------------------------------------------------------------------ DDL --

    def _register(self, kind: str, name: str, store: Any) -> Any:
        with self._catalog_lock:
            if name in self._catalog:
                existing_kind, _ = self._catalog[name]
                raise DuplicateCollectionError(
                    f"{name!r} already exists (as a {existing_kind})"
                )
            # Every catalog object reports per-model op counts/latencies into
            # the metrics registry; the wrappers no-op when observability is
            # disabled, so registration-time wrapping is unconditional.
            instrument_store(kind, store)
            self._catalog[name] = (kind, store)
            self.catalog_version += 1
        return store

    def create_table(self, schema: TableSchema) -> Table:
        """Relational table from a :class:`TableSchema`."""
        return self._register("table", schema.name, Table(self.context, schema))

    def create_collection(self, name: str, **kwargs) -> DocumentCollection:
        """Document collection (``required_fields=…, closed=…`` optional)."""
        return self._register(
            "collection", name, DocumentCollection(self.context, name, **kwargs)
        )

    def create_bucket(self, name: str) -> KeyValueBucket:
        """Key/value bucket."""
        return self._register("bucket", name, KeyValueBucket(self.context, name))

    def create_graph(self, name: str) -> PropertyGraph:
        """Property graph."""
        return self._register("graph", name, PropertyGraph(self.context, name))

    def create_tree_store(self, name: str) -> TreeStore:
        """XML/JSON unified tree store."""
        return self._register("trees", name, TreeStore(self.context, name))

    def create_triple_store(self, name: str) -> TripleStore:
        """RDF triple store."""
        return self._register("triples", name, TripleStore(self.context, name))

    def create_object_store(self, name: str = "objects"):
        """Object model: classes with inheritance over Caché-style globals."""
        from repro.objectmodel.classes import ObjectStore

        return self._register("objects", name, ObjectStore(self.context, name))

    def create_wide_table(self, name: str, columns, primary_key: str):
        """Wide-column (CQL-style) table with UDT support."""
        from repro.widecolumn.table import WideColumnTable

        return self._register(
            "wide", name, WideColumnTable(self.context, name, columns, primary_key)
        )

    def create_spatial(self, name: str, rtree_fanout: int = 8):
        """Spatial store (R-tree indexed points/boxes)."""
        from repro.spatial.store import SpatialStore

        return self._register(
            "spatial", name, SpatialStore(self.context, name, rtree_fanout)
        )

    def drop(self, name: str) -> None:
        """Drop any catalog object and its data."""
        with self._catalog_lock:
            kind_store = self._catalog.pop(name, None)
            if kind_store is None:
                raise UnknownCollectionError(
                    f"nothing named {name!r} in the catalog"
                )
            self.catalog_version += 1
        kind_store[1].truncate()

    # -------------------------------------------------------------- catalog --

    def catalog(self) -> dict[str, str]:
        """{name: kind} for everything defined."""
        with self._catalog_lock:
            items = sorted(self._catalog.items())
        return {name: kind for name, (kind, _store) in items}

    def _get(self, name: str, kind: str) -> Any:
        with self._catalog_lock:
            entry = self._catalog.get(name)
        if entry is None:
            raise UnknownCollectionError(f"no {kind} named {name!r}")
        actual_kind, store = entry
        if actual_kind != kind:
            raise UnknownCollectionError(
                f"{name!r} is a {actual_kind}, not a {kind}"
            )
        return store

    def table(self, name: str) -> Table:
        return self._get(name, "table")

    def collection(self, name: str) -> DocumentCollection:
        return self._get(name, "collection")

    def bucket(self, name: str) -> KeyValueBucket:
        return self._get(name, "bucket")

    def graph(self, name: str) -> PropertyGraph:
        return self._get(name, "graph")

    def tree_store(self, name: str) -> TreeStore:
        return self._get(name, "trees")

    def triple_store(self, name: str) -> TripleStore:
        return self._get(name, "triples")

    def spatial(self, name: str):
        return self._get(name, "spatial")

    def wide_table(self, name: str):
        return self._get(name, "wide")

    def object_store(self, name: str = "objects"):
        return self._get(name, "objects")

    def resolve(self, name: str) -> Any:
        """Any catalog object by name (used by the query engine)."""
        with self._catalog_lock:
            entry = self._catalog.get(name)
        if entry is None:
            raise UnknownCollectionError(f"nothing named {name!r} in the catalog")
        return entry[1]

    def kind_of(self, name: str) -> str:
        with self._catalog_lock:
            entry = self._catalog.get(name)
        if entry is None:
            raise UnknownCollectionError(f"nothing named {name!r} in the catalog")
        return entry[0]

    def stats(self) -> dict:
        """Engine-wide statistics: per-object record counts, index names,
        log length, and transaction counters."""
        objects = {}
        with self._catalog_lock:
            entries = sorted(self._catalog.items())
        for name, (kind, store) in entries:
            if kind == "graph":
                count = store.vertex_count() + store.edge_count()
            elif kind == "objects":
                count = sum(1 for _ in store.globals._raw_scan(None))
            elif hasattr(store, "count"):
                try:
                    count = store.count()
                except TypeError:
                    count = store.count_triples()
            else:
                count = 0
            objects[name] = {"kind": kind, "records": count}
        transactions = self.context.transactions
        return {
            "objects": objects,
            "indexes": self.context.indexes.names(),
            "log_entries": len(self.context.log),
            "transactions": {
                "commits": transactions.commits,
                "aborts": transactions.aborts,
                "conflicts": transactions.conflicts,
                "active": transactions.active_count,
                "versions": transactions.version_count,
            },
        }

    def metrics(self) -> dict:
        """Snapshot of the engine-wide observability registry
        (:data:`repro.obs.metrics.REGISTRY`)."""
        return obs_metrics.REGISTRY.snapshot()

    # --------------------------------------------------------- transactions --

    def begin(
        self, isolation: IsolationLevel | str = IsolationLevel.SNAPSHOT
    ) -> Transaction:
        return self.context.transactions.begin(isolation)

    def commit(self, txn: Transaction) -> None:
        self.context.transactions.commit(txn)

    def abort(self, txn: Transaction) -> None:
        self.context.transactions.abort(txn)

    @contextlib.contextmanager
    def transaction(
        self, isolation: IsolationLevel | str = IsolationLevel.SNAPSHOT
    ) -> Iterator[Transaction]:
        """``with db.transaction() as txn: …`` — commit on success, abort on
        any exception (including serialization conflicts, which re-raise)."""
        txn = self.begin(isolation)
        try:
            yield txn
        except BaseException:
            if txn.is_active:
                self.abort(txn)
            raise
        if txn.is_active:
            self.commit(txn)

    def set_consistency(self, name: str, level: ConsistencyLevel | str) -> None:
        """Per-namespace consistency level (challenge 6 / slide 97)."""
        store = self.resolve(name)
        namespace = getattr(store, "namespace", None) or getattr(
            store, "vertex_namespace"
        )
        self.context.consistency.set_level(namespace, level)

    # ------------------------------------------------------------------ MMQL --

    def query(
        self,
        text: str,
        bind_vars: Optional[dict] = None,
        txn: Optional[Transaction] = None,
        analyze: bool = False,
        timeout: Optional[float] = None,
        max_rows: Optional[int] = None,
        batch_size: Optional[int] = None,
        columnar: Optional[bool] = None,
    ):
        """Run an MMQL query; returns a :class:`repro.query.executor.Result`.

        ``analyze=True`` — or a leading ``EXPLAIN ANALYZE`` in *text* —
        executes with per-operator probes and attaches the annotated plan
        (``result.analyzed`` / ``result.op_stats``).

        ``timeout`` (seconds) / ``max_rows`` bound this query's runtime and
        result size (:class:`repro.errors.QueryTimeoutError` /
        :class:`repro.errors.ResourceExhaustedError`); unset, they fall back
        to ``self.guardrails``, which is disabled by default.

        ``batch_size`` overrides the vectorization width for this query
        (default ``self.batch_size``); ``columnar`` overrides the
        columnar-scan switch (default ``self.columnar``); results are
        identical at any width and on either scan path."""
        from repro.query.engine import run_query

        return run_query(
            self,
            text,
            bind_vars or {},
            txn,
            analyze=analyze,
            timeout=timeout,
            max_rows=max_rows,
            batch_size=batch_size,
            columnar=columnar,
        )

    def query_cursor(
        self,
        text: str,
        bind_vars: Optional[dict] = None,
        txn: Optional[Transaction] = None,
        timeout: Optional[float] = None,
        max_rows: Optional[int] = None,
        batch_size: Optional[int] = None,
        columnar: Optional[bool] = None,
    ):
        """Open a lazy :class:`repro.query.engine.QueryCursor` over an MMQL
        query: rows stream out through ``next_batch(n)``/iteration instead
        of materializing up front — the embedded twin of the server's
        ``query_open``/``cursor_next`` wire cursors."""
        from repro.query.engine import open_query_cursor

        return open_query_cursor(
            self,
            text,
            bind_vars or {},
            txn,
            timeout=timeout,
            max_rows=max_rows,
            batch_size=batch_size,
            columnar=columnar,
        )

    def explain(self, text: str, bind_vars: Optional[dict] = None) -> str:
        """The optimized plan as text, without executing."""
        from repro.query.engine import explain_query

        return explain_query(self, text, bind_vars or {})

    # ------------------------------------------------------------- durability --

    def attach_wal(self, path: str, sync: bool = True) -> WriteAheadLog:
        """Shadow every log entry into a WAL file from now on."""
        self._wal = WriteAheadLog(path, sync=sync)
        self.context.log.subscribe(self._wal.log_entry)
        return self._wal

    def recover(self, path: str) -> tuple[int, int]:
        """Replay a WAL into this (fresh) database; returns
        (redone, discarded).  Call before defining catalog objects writes."""
        return replay_into(path, self.context.log)

    def checkpoint(self, path: str) -> int:
        """Write a checkpoint of the committed state; returns the covered
        LSN (feed it to :func:`repro.storage.checkpoint.truncate_wal`)."""
        from repro.storage.checkpoint import write_checkpoint

        return write_checkpoint(
            path, self.context.rows, self.context.log, self.context.transactions
        )

    def recover_from_checkpoint(
        self, checkpoint_path: str, wal_path: str
    ) -> tuple[int, int]:
        """Checkpoint-accelerated recovery: load the checkpoint, then replay
        only the WAL tail; returns (checkpoint records, redone tail ops)."""
        from repro.storage.checkpoint import recover_from_checkpoint

        return recover_from_checkpoint(checkpoint_path, wal_path, self.context.log)

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "MultiModelDB":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
