"""Shared engine context and the base record store every model builds on.

The paper's definition (slide 11): "a multi-model database is designed to
support multiple data models against a *single, integrated backend*".  The
:class:`EngineContext` is that backend: one central log, one row view, one
column view, one transaction manager, one index manager.  Every model store
(:mod:`repro.relational`, :mod:`repro.document`, :mod:`repro.keyvalue`,
:mod:`repro.graph`, :mod:`repro.xmlmodel`, :mod:`repro.rdf`) is a
:class:`BaseStore` veneer over it — which is exactly what makes cross-model
queries, cross-model indexes and cross-model transactions possible.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.core import datamodel
from repro.core.cursor import IteratorScanCursor, ScanCursor
from repro.errors import UnknownCollectionError
from repro.indexes.manager import IndexManager
from repro.storage.log import CentralLog, LogOp
from repro.storage.segments import SegmentManager
from repro.storage.views import ColumnView, RowView
from repro.txn.consistency import ConsistencyPolicy
from repro.txn.manager import Transaction, TransactionManager

__all__ = ["EngineContext", "BaseStore"]


class EngineContext:
    """The single integrated backend shared by all model APIs."""

    def __init__(self, lock_timeout: float = 5.0):
        self.log = CentralLog()
        self.rows = RowView(self.log)
        self.columns = ColumnView(self.log)
        #: Columnar segments + zone maps for registered (relational /
        #: wide-column) namespaces — the analytic scan format.
        self.segments = SegmentManager(self.log, self.rows)
        self.transactions = TransactionManager(self.log, lock_timeout=lock_timeout)
        self.indexes = IndexManager(self.log, self.rows)
        self.consistency = ConsistencyPolicy()


class BaseStore:
    """Keyed record store over the shared backend.

    All methods accept an optional ``txn``: inside a transaction, reads see
    the transaction's snapshot plus its own writes and writes are buffered;
    outside, reads hit the row view (latest committed) and each write
    auto-commits as a single-operation transaction.
    """

    #: model tag used in the namespace prefix, e.g. "doc"
    model = "base"

    def __init__(self, context: EngineContext, name: str):
        self._context = context
        self.name = name
        self.namespace = f"{self.model}:{name}"

    # -- write path ------------------------------------------------------------

    def _write(
        self,
        key: Any,
        value: Any,
        op: LogOp,
        txn: Optional[Transaction],
    ) -> None:
        manager = self._context.transactions
        if txn is not None:
            if op is LogOp.DELETE:
                manager.delete(txn, self.namespace, key)
            else:
                manager.write(txn, self.namespace, key, value, op)
            return
        local = manager.begin()
        try:
            if op is LogOp.DELETE:
                manager.delete(local, self.namespace, key)
            else:
                manager.write(local, self.namespace, key, value, op)
            manager.commit(local)
        except BaseException:
            if local.is_active:
                manager.abort(local)
            raise

    def _put(self, key: Any, value: Any, txn: Optional[Transaction] = None) -> None:
        exists = self._raw_get(key, txn) is not None
        op = LogOp.UPDATE if exists else LogOp.INSERT
        self._write(key, datamodel.normalize(value), op, txn)

    def _delete_key(self, key: Any, txn: Optional[Transaction] = None) -> bool:
        if self._raw_get(key, txn) is None:
            return False
        self._write(key, None, LogOp.DELETE, txn)
        return True

    # -- read path ----------------------------------------------------------------

    def _raw_get(self, key: Any, txn: Optional[Transaction] = None) -> Any:
        if txn is not None:
            return self._context.transactions.read(txn, self.namespace, key)
        return self._context.rows.get(self.namespace, key)

    def _raw_scan(
        self, txn: Optional[Transaction] = None
    ) -> Iterator[tuple[Any, Any]]:
        if txn is not None:
            return self._context.transactions.scan(txn, self.namespace)
        return self._context.rows.scan(self.namespace)

    def scan_cursor(self, txn: Optional[Transaction] = None) -> ScanCursor:
        """Unified batched scan (:class:`repro.core.cursor.ScanCursor`)
        over this store's natural row shape — the stored record values.

        Stores whose MMQL frame shape differs from the raw record value
        (key/value buckets, tree stores, triple stores, spatial stores)
        override this; everything else inherits it."""
        return IteratorScanCursor(
            value for _key, value in self._raw_scan(txn)
        )

    def count(self, txn: Optional[Transaction] = None) -> int:
        if txn is not None:
            return sum(1 for _ in self._raw_scan(txn))
        return self._context.rows.count(self.namespace)

    def contains(self, key: Any, txn: Optional[Transaction] = None) -> bool:
        return self._raw_get(key, txn) is not None

    # -- lifecycle -------------------------------------------------------------------

    def truncate(self) -> None:
        """Drop all records (auto-commit; runs outside any transaction)."""
        self._context.transactions.drop_namespace(self.namespace)
        self._context.log.append(0, LogOp.DROP_NAMESPACE, self.namespace)

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.namespace} ({self.count()} records)>"
