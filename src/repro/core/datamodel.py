"""The unified data model shared by every model in the engine.

The tutorial's first open challenge (slide 91) is an *open data model*: "a
flexible data model to accommodate multi-model data, providing a convenient
unique interface to handle data from different sources".  This module is that
interface.  Every model in the engine — relational rows, JSON documents,
key/value entries, graph vertices and edges, XML trees, RDF terms — bottoms
out in one small value algebra:

    NULL | BOOL | NUMBER | STRING | ARRAY | OBJECT

Values are represented by plain Python objects (``None``, ``bool``,
``int``/``float``, ``str``, ``list``, ``dict``) so that user code never needs
wrapper classes; this module supplies the *semantics*: a total cross-type
ordering (used by sorts and B+tree indexes), deep equality, truthiness,
normalization, JSONB-style containment, and canonical serialization/hashing
(used by the ``jsonb_path_ops`` inverted index).

The total order follows the AQL/ArangoDB convention also used by most
multi-model engines in the tutorial:

    null  <  bool  <  number  <  string  <  array  <  object
"""

from __future__ import annotations

import enum
import hashlib
import json
import math
from typing import Any, Iterator

from repro.errors import DataModelError, TypeMismatchError

__all__ = [
    "TypeTag",
    "type_of",
    "type_name",
    "normalize",
    "compare",
    "values_equal",
    "truthy",
    "SortKey",
    "contains",
    "iter_paths",
    "iter_keys_and_values",
    "canonical_json",
    "hash_value",
    "deep_get",
    "deep_merge",
]


class TypeTag(enum.IntEnum):
    """Type tags in total-order position (smaller tag sorts first)."""

    NULL = 0
    BOOL = 1
    NUMBER = 2
    STRING = 3
    ARRAY = 4
    OBJECT = 5


_SCALAR_TAGS = (TypeTag.NULL, TypeTag.BOOL, TypeTag.NUMBER, TypeTag.STRING)


def type_of(value: Any) -> TypeTag:
    """Return the :class:`TypeTag` of a model value.

    Raises :class:`DataModelError` for objects outside the value algebra.
    """
    if value is None:
        return TypeTag.NULL
    if isinstance(value, bool):
        return TypeTag.BOOL
    if isinstance(value, (int, float)):
        return TypeTag.NUMBER
    if isinstance(value, str):
        return TypeTag.STRING
    if isinstance(value, (list, tuple)):
        return TypeTag.ARRAY
    if isinstance(value, dict):
        return TypeTag.OBJECT
    raise DataModelError(
        f"value of Python type {type(value).__name__!r} is outside the "
        "unified data model (expected None/bool/number/str/list/dict)"
    )


def type_name(value: Any) -> str:
    """Human-readable type name used in error messages and EXPLAIN output."""
    return type_of(value).name.lower()


def is_scalar(value: Any) -> bool:
    """True for null, bool, number and string values."""
    return type_of(value) in _SCALAR_TAGS


def normalize(value: Any) -> Any:
    """Return a canonical copy of *value* inside the value algebra.

    Tuples become lists, dict keys must be strings, NaN is rejected (it has
    no place in a total order), and nested values are normalized recursively.
    The returned structure shares no mutable state with the input, so stores
    can keep it without fear of aliasing.
    """
    tag = type_of(value)
    if tag is TypeTag.NUMBER:
        if isinstance(value, float) and math.isnan(value):
            raise DataModelError("NaN is not representable in the data model")
        return value
    if tag in _SCALAR_TAGS:
        return value
    if tag is TypeTag.ARRAY:
        return [normalize(item) for item in value]
    # OBJECT
    out = {}
    for key, item in value.items():
        if not isinstance(key, str):
            raise DataModelError(
                f"object keys must be strings, got {type(key).__name__!r}"
            )
        out[key] = normalize(item)
    return out


def compare(left: Any, right: Any) -> int:
    """Three-way comparison under the cross-type total order.

    Returns a negative number, zero, or a positive number as *left* is less
    than, equal to, or greater than *right*.  Arrays compare element-wise
    then by length; objects compare by their sorted key sequence, then by
    the values of those keys in key order (the ArangoDB object order).
    """
    ltag = type_of(left)
    rtag = type_of(right)
    if ltag is not rtag:
        # bool is an int subclass in Python; the tag check already separates
        # them, so plain subtraction gives the cross-type order.
        return int(ltag) - int(rtag)
    if ltag is TypeTag.NULL:
        return 0
    if ltag in (TypeTag.BOOL, TypeTag.NUMBER, TypeTag.STRING):
        if left == right:
            return 0
        return -1 if left < right else 1
    if ltag is TypeTag.ARRAY:
        for litem, ritem in zip(left, right):
            result = compare(litem, ritem)
            if result != 0:
                return result
        return len(left) - len(right)
    # OBJECT
    lkeys = sorted(left)
    rkeys = sorted(right)
    result = compare(lkeys, rkeys)
    if result != 0:
        return result
    for key in lkeys:
        result = compare(left[key], right[key])
        if result != 0:
            return result
    return 0


def values_equal(left: Any, right: Any) -> bool:
    """Deep equality under the data model (1 == 1.0, but 1 != true)."""
    return compare(left, right) == 0


def truthy(value: Any) -> bool:
    """AQL-style truthiness: null/false/0/'' are false, everything else
    (including empty arrays and objects, per ArangoDB) is true."""
    tag = type_of(value)
    if tag is TypeTag.NULL:
        return False
    if tag is TypeTag.BOOL:
        return value
    if tag is TypeTag.NUMBER:
        return value != 0
    if tag is TypeTag.STRING:
        return value != ""
    return True


class SortKey:
    """Adapter making any model value usable as a Python sort key.

    ``sorted(rows, key=lambda r: SortKey(r["age"]))`` gives the engine's
    total order even for heterogeneous columns.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "SortKey") -> bool:
        return compare(self.value, other.value) < 0

    def __le__(self, other: "SortKey") -> bool:
        return compare(self.value, other.value) <= 0

    def __gt__(self, other: "SortKey") -> bool:
        return compare(self.value, other.value) > 0

    def __ge__(self, other: "SortKey") -> bool:
        return compare(self.value, other.value) >= 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SortKey):
            return NotImplemented
        return compare(self.value, other.value) == 0

    def __hash__(self) -> int:
        return hash_value(self.value)

    def __repr__(self) -> str:
        return f"SortKey({self.value!r})"


def contains(haystack: Any, needle: Any) -> bool:
    """JSONB ``@>`` containment (slide 82's containment operator).

    * scalars contain equal scalars;
    * an object contains another object when every key/value pair of the
      needle is contained in the corresponding haystack entry;
    * an array contains another array when every element of the needle is
      contained in *some* element of the haystack (order-insensitive, as in
      PostgreSQL);
    * following PostgreSQL, an array also contains a bare scalar that equals
      one of its elements.
    """
    htag = type_of(haystack)
    ntag = type_of(needle)
    if htag is TypeTag.ARRAY and ntag in _SCALAR_TAGS:
        return any(contains(item, needle) for item in haystack)
    if htag is not ntag:
        return False
    if htag is TypeTag.OBJECT:
        return all(
            key in haystack and contains(haystack[key], value)
            for key, value in needle.items()
        )
    if htag is TypeTag.ARRAY:
        return all(
            any(contains(hitem, nitem) for hitem in haystack)
            for nitem in needle
        )
    return values_equal(haystack, needle)


def iter_paths(value: Any, _prefix: tuple = ()) -> Iterator[tuple[tuple, Any]]:
    """Yield ``(path, leaf)`` pairs for every leaf in a nested value.

    Paths are tuples of object keys (``str``) and the marker ``"[]"`` for
    array nesting (array positions are deliberately *not* part of the path:
    PostgreSQL's ``jsonb_path_ops`` hashes key chains, not positions).  This
    is the decomposition both GIN modes build on.
    """
    tag = type_of(value)
    if tag is TypeTag.OBJECT:
        if not value:
            yield _prefix, {}
        for key, item in value.items():
            yield from iter_paths(item, _prefix + (key,))
    elif tag is TypeTag.ARRAY:
        if not value:
            yield _prefix, []
        for item in value:
            yield from iter_paths(item, _prefix + ("[]",))
    else:
        yield _prefix, value


def iter_keys_and_values(value: Any) -> Iterator[tuple[str, Any]]:
    """Yield the ``jsonb_ops`` decomposition: every key and every scalar
    value as independent index items (slide 82: "independent index items for
    each key and value in the data").

    Items are tagged ``("K", key)`` and ``("V", scalar)`` so that a key named
    ``"42"`` never collides with the value ``"42"``.
    """
    tag = type_of(value)
    if tag is TypeTag.OBJECT:
        for key, item in value.items():
            yield "K", key
            yield from iter_keys_and_values(item)
    elif tag is TypeTag.ARRAY:
        for item in value:
            yield from iter_keys_and_values(item)
    else:
        yield "V", value


def canonical_json(value: Any) -> str:
    """Deterministic JSON serialization (sorted keys, minimal separators).

    Used for hashing, checkpoint files and the WAL, so two equal values
    always serialize identically.
    """
    return json.dumps(normalize(value), sort_keys=True, separators=(",", ":"))


def _canonical_for_hash(value: Any) -> Any:
    """Map compare-equal values to one representative (1.0 → 1) so that
    ``compare(a, b) == 0`` implies ``hash_value(a) == hash_value(b)``."""
    tag = type_of(value)
    if tag is TypeTag.NUMBER:
        if isinstance(value, float) and value.is_integer():
            return int(value)
        return value
    if tag is TypeTag.ARRAY:
        return [_canonical_for_hash(item) for item in value]
    if tag is TypeTag.OBJECT:
        return {key: _canonical_for_hash(item) for key, item in value.items()}
    return value


def hash_value(value: Any) -> int:
    """Stable 64-bit hash of any model value.

    Unlike Python's :func:`hash`, this is stable across processes (no string
    hash randomization), which the hash indexes and the ``jsonb_path_ops``
    GIN mode rely on for reproducible benchmarks.  Compare-equal values hash
    equally (1 and 1.0 produce the same digest).
    """
    digest = hashlib.blake2b(
        canonical_json(_canonical_for_hash(value)).encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big")


def deep_get(value: Any, path: tuple) -> Any:
    """Navigate *path* (a tuple of ``str`` keys and ``int`` positions)
    through nested objects/arrays; missing steps yield ``None`` (the AQL
    convention) rather than raising."""
    current = value
    for step in path:
        tag = type_of(current)
        if isinstance(step, str):
            if tag is not TypeTag.OBJECT or step not in current:
                return None
            current = current[step]
        elif isinstance(step, int):
            if tag is not TypeTag.ARRAY:
                return None
            if not -len(current) <= step < len(current):
                return None
            current = current[step]
        else:
            raise TypeMismatchError(
                f"path steps must be str or int, got {type(step).__name__!r}"
            )
    return current


def deep_merge(base: Any, patch: Any) -> Any:
    """Recursive object merge used by document ``UPDATE`` (RFC 7396 flavour:
    object fields merge recursively, any other type replaces, and an explicit
    ``None`` in the patch overwrites)."""
    if type_of(base) is TypeTag.OBJECT and type_of(patch) is TypeTag.OBJECT:
        merged = dict(base)
        for key, value in patch.items():
            if key in merged:
                merged[key] = deep_merge(merged[key], value)
            else:
                merged[key] = normalize(value)
        return merged
    return normalize(patch)
