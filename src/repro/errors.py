"""Exception hierarchy for the ``repro`` multi-model database engine.

Every error raised by the public API derives from :class:`ReproError`, so
callers can catch one base class.  The sub-hierarchy mirrors the subsystems
described in DESIGN.md: data-model errors, catalog errors, query-language
errors, transaction errors, storage errors and benchmark errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the engine."""


# ---------------------------------------------------------------------------
# Data model
# ---------------------------------------------------------------------------


class DataModelError(ReproError):
    """A value violates the unified data-model rules."""


class TypeMismatchError(DataModelError):
    """An operation was applied to values of incompatible types."""


class PathError(DataModelError):
    """A document path expression could not be resolved or parsed."""


# ---------------------------------------------------------------------------
# Catalog / schema
# ---------------------------------------------------------------------------


class CatalogError(ReproError):
    """Catalog-level problem (unknown or duplicate namespace object)."""


class UnknownCollectionError(CatalogError):
    """The named collection/table/graph/bucket does not exist."""


class DuplicateCollectionError(CatalogError):
    """A namespace object with that name already exists."""


class SchemaError(ReproError):
    """A schema definition or schema check failed."""


class ConstraintViolationError(SchemaError):
    """A row/document violates a declared constraint."""


class PrimaryKeyError(ConstraintViolationError):
    """Primary-key violation: missing, duplicate, or wrongly typed key."""


# ---------------------------------------------------------------------------
# Query language
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for MMQL query problems."""


class LexError(QueryError):
    """The query text could not be tokenized."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(QueryError):
    """The token stream is not a valid MMQL query."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class BindError(QueryError):
    """A variable or bind parameter is undefined or redefined."""


class PlanError(QueryError):
    """The logical plan could not be built or optimized."""


class ExecutionError(QueryError):
    """A runtime failure while executing a query plan."""


class FunctionError(ExecutionError):
    """A built-in function received bad arguments."""


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------


class TransactionError(ReproError):
    """Base class for transaction failures."""


class SerializationError(TransactionError):
    """Write-write conflict detected under snapshot isolation."""


class DeadlockError(TransactionError):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured budget."""


class InvalidTransactionStateError(TransactionError):
    """Operation on a transaction that is not active (committed/aborted)."""


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class PageError(StorageError):
    """Invalid page access (bad page id, overflow, corrupt slot)."""


class WalError(StorageError):
    """The write-ahead log is corrupt or out of sequence."""


class RecoveryError(StorageError):
    """Crash recovery could not be completed."""


# ---------------------------------------------------------------------------
# Indexes
# ---------------------------------------------------------------------------


class IndexError_(ReproError):
    """Base class for index subsystem failures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class UnknownIndexError(IndexError_):
    """The named index does not exist."""


class UnsupportedIndexOperationError(IndexError_):
    """The index type cannot answer the requested operation
    (e.g. a range scan against a hash index, per slide 79)."""


# ---------------------------------------------------------------------------
# Benchmark / workload
# ---------------------------------------------------------------------------


class BenchmarkError(ReproError):
    """A benchmark workload was misconfigured."""
