"""Exception hierarchy for the ``repro`` multi-model database engine.

Every error raised by the public API derives from :class:`ReproError`, so
callers can catch one base class.  The sub-hierarchy mirrors the subsystems
described in DESIGN.md: data-model errors, catalog errors, query-language
errors, transaction errors, storage errors and benchmark errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the engine."""


# ---------------------------------------------------------------------------
# Data model
# ---------------------------------------------------------------------------


class DataModelError(ReproError):
    """A value violates the unified data-model rules."""


class TypeMismatchError(DataModelError):
    """An operation was applied to values of incompatible types."""


class PathError(DataModelError):
    """A document path expression could not be resolved or parsed."""


# ---------------------------------------------------------------------------
# Catalog / schema
# ---------------------------------------------------------------------------


class CatalogError(ReproError):
    """Catalog-level problem (unknown or duplicate namespace object)."""


class UnknownCollectionError(CatalogError):
    """The named collection/table/graph/bucket does not exist."""


class DuplicateCollectionError(CatalogError):
    """A namespace object with that name already exists."""


class SchemaError(ReproError):
    """A schema definition or schema check failed."""


class ConstraintViolationError(SchemaError):
    """A row/document violates a declared constraint."""


class PrimaryKeyError(ConstraintViolationError):
    """Primary-key violation: missing, duplicate, or wrongly typed key."""


# ---------------------------------------------------------------------------
# Query language
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for MMQL query problems."""


class LexError(QueryError):
    """The query text could not be tokenized."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(QueryError):
    """The token stream is not a valid MMQL query."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class BindError(QueryError):
    """A variable or bind parameter is undefined or redefined."""


class PlanError(QueryError):
    """The logical plan could not be built or optimized."""


class ExecutionError(QueryError):
    """A runtime failure while executing a query plan."""


class FunctionError(ExecutionError):
    """A built-in function received bad arguments."""


class QueryTimeoutError(QueryError):
    """The query exceeded its wall-clock budget (graceful degradation:
    the engine gives up deterministically instead of starving the rest of
    the workload)."""

    def __init__(self, message: str, elapsed: float = 0.0, limit: float = 0.0):
        super().__init__(message)
        self.elapsed = elapsed
        self.limit = limit


class ResourceExhaustedError(QueryError):
    """The query exceeded a resource budget (currently: max result rows)."""

    def __init__(self, message: str, rows: int = 0, limit: int = 0):
        super().__init__(message)
        self.rows = rows
        self.limit = limit


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------


class TransactionError(ReproError):
    """Base class for transaction failures."""


class SerializationError(TransactionError):
    """Write-write conflict detected under snapshot isolation."""


class DeadlockError(TransactionError):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured budget."""


class InvalidTransactionStateError(TransactionError):
    """Operation on a transaction that is not active (committed/aborted)."""


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-layer failures."""


class PageError(StorageError):
    """Invalid page access (bad page id, overflow, corrupt slot)."""


class WalError(StorageError):
    """The write-ahead log is corrupt or out of sequence."""


class RecoveryError(StorageError):
    """Crash recovery could not be completed."""


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


class InjectedFaultError(ReproError):
    """A failpoint fired with the ``error`` effect.

    Raised by armed failpoint sites that are asked to produce a *recoverable*
    fault (as opposed to a simulated process crash); callers exercising
    retry/degradation paths catch this.
    """


class SimulatedCrash(Exception):
    """A failpoint fired with the ``crash`` effect: the process is presumed
    dead from this point on.

    Deliberately **not** a :class:`ReproError`: nothing inside the engine may
    catch and survive it — only the torture harness (which then discards all
    in-memory state and recovers from the on-disk WAL/checkpoint) handles it.
    """

    def __init__(self, site: str):
        super().__init__(f"simulated process crash at failpoint {site!r}")
        self.site = site


# ---------------------------------------------------------------------------
# Indexes
# ---------------------------------------------------------------------------


class IndexError_(ReproError):
    """Base class for index subsystem failures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class UnknownIndexError(IndexError_):
    """The named index does not exist."""


class UnsupportedIndexOperationError(IndexError_):
    """The index type cannot answer the requested operation
    (e.g. a range scan against a hash index, per slide 79)."""


# ---------------------------------------------------------------------------
# Benchmark / workload
# ---------------------------------------------------------------------------


class BenchmarkError(ReproError):
    """A benchmark workload was misconfigured."""
