"""Exception hierarchy for the ``repro`` multi-model database engine.

Every error raised by the public API derives from :class:`ReproError`, so
callers can catch one base class.  The sub-hierarchy mirrors the subsystems
described in DESIGN.md: data-model errors, catalog errors, query-language
errors, transaction errors, storage errors, server errors and benchmark
errors.

**Wire codes.**  Every class carries a stable ``code`` string (a class
attribute, also exposed per-instance).  Codes are the contract the network
layer ships across the wire: the server serializes ``(code, message,
details)`` and the client re-raises the *same* class by looking the code up
with :func:`error_for_code`.  Codes are append-only — renaming one is a
protocol break, so don't.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for every error raised by the engine."""

    #: Stable machine-readable identifier; subclasses override.  Instances
    #: read it through the class, so ``error.code`` always works.
    code = "REPRO_ERROR"


# ---------------------------------------------------------------------------
# Data model
# ---------------------------------------------------------------------------


class DataModelError(ReproError):
    """A value violates the unified data-model rules."""

    code = "DATA_MODEL"


class TypeMismatchError(DataModelError):
    """An operation was applied to values of incompatible types."""

    code = "TYPE_MISMATCH"


class PathError(DataModelError):
    """A document path expression could not be resolved or parsed."""

    code = "PATH"


# ---------------------------------------------------------------------------
# Catalog / schema
# ---------------------------------------------------------------------------


class CatalogError(ReproError):
    """Catalog-level problem (unknown or duplicate namespace object)."""

    code = "CATALOG"


class UnknownCollectionError(CatalogError):
    """The named collection/table/graph/bucket does not exist."""

    code = "UNKNOWN_COLLECTION"


class DuplicateCollectionError(CatalogError):
    """A namespace object with that name already exists."""

    code = "DUPLICATE_COLLECTION"


class SchemaError(ReproError):
    """A schema definition or schema check failed."""

    code = "SCHEMA"


class ConstraintViolationError(SchemaError):
    """A row/document violates a declared constraint."""

    code = "CONSTRAINT_VIOLATION"


class PrimaryKeyError(ConstraintViolationError):
    """Primary-key violation: missing, duplicate, or wrongly typed key."""

    code = "PRIMARY_KEY"


# ---------------------------------------------------------------------------
# Query language
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for MMQL query problems."""

    code = "QUERY"


class LexError(QueryError):
    """The query text could not be tokenized."""

    code = "LEX"

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(QueryError):
    """The token stream is not a valid MMQL query."""

    code = "PARSE"

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class BindError(QueryError):
    """A variable or bind parameter is undefined or redefined."""

    code = "BIND"


class PlanError(QueryError):
    """The logical plan could not be built or optimized."""

    code = "PLAN"


class ExecutionError(QueryError):
    """A runtime failure while executing a query plan."""

    code = "EXECUTION"


class FunctionError(ExecutionError):
    """A built-in function received bad arguments."""

    code = "FUNCTION"


class QueryTimeoutError(QueryError):
    """The query exceeded its wall-clock budget (graceful degradation:
    the engine gives up deterministically instead of starving the rest of
    the workload)."""

    code = "QUERY_TIMEOUT"

    def __init__(self, message: str, elapsed: float = 0.0, limit: float = 0.0):
        super().__init__(message)
        self.elapsed = elapsed
        self.limit = limit


class ResourceExhaustedError(QueryError):
    """The query exceeded a resource budget (currently: max result rows)."""

    code = "RESOURCE_EXHAUSTED"

    def __init__(self, message: str, rows: int = 0, limit: int = 0):
        super().__init__(message)
        self.rows = rows
        self.limit = limit


# ---------------------------------------------------------------------------
# Transactions
# ---------------------------------------------------------------------------


class TransactionError(ReproError):
    """Base class for transaction failures."""

    code = "TXN"


class SerializationError(TransactionError):
    """Write-write conflict detected under snapshot isolation."""

    code = "TXN_SERIALIZATION"


class DeadlockError(TransactionError):
    """The lock manager chose this transaction as a deadlock victim."""

    code = "TXN_DEADLOCK"


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured budget."""

    code = "TXN_LOCK_TIMEOUT"


class InvalidTransactionStateError(TransactionError):
    """Operation on a transaction that is not active (committed/aborted)."""

    code = "TXN_INVALID_STATE"


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-layer failures."""

    code = "STORAGE"


class PageError(StorageError):
    """Invalid page access (bad page id, overflow, corrupt slot)."""

    code = "STORAGE_PAGE"


class WalError(StorageError):
    """The write-ahead log is corrupt or out of sequence."""

    code = "STORAGE_WAL"


class RecoveryError(StorageError):
    """Crash recovery could not be completed."""

    code = "STORAGE_RECOVERY"


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


class InjectedFaultError(ReproError):
    """A failpoint fired with the ``error`` effect.

    Raised by armed failpoint sites that are asked to produce a *recoverable*
    fault (as opposed to a simulated process crash); callers exercising
    retry/degradation paths catch this.
    """

    code = "FAULT_INJECTED"


class SimulatedCrash(Exception):
    """A failpoint fired with the ``crash`` effect: the process is presumed
    dead from this point on.

    Deliberately **not** a :class:`ReproError`: nothing inside the engine may
    catch and survive it — only the torture harness (which then discards all
    in-memory state and recovers from the on-disk WAL/checkpoint) handles it.
    """

    def __init__(self, site: str):
        super().__init__(f"simulated process crash at failpoint {site!r}")
        self.site = site


# ---------------------------------------------------------------------------
# Indexes
# ---------------------------------------------------------------------------


class IndexError_(ReproError):
    """Base class for index subsystem failures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """

    code = "INDEX"


class UnknownIndexError(IndexError_):
    """The named index does not exist."""

    code = "INDEX_UNKNOWN"


class UnsupportedIndexOperationError(IndexError_):
    """The index type cannot answer the requested operation
    (e.g. a range scan against a hash index, per slide 79)."""

    code = "INDEX_UNSUPPORTED_OP"


# ---------------------------------------------------------------------------
# Server / wire protocol
# ---------------------------------------------------------------------------


class ServerError(ReproError):
    """Base class for network-service failures.  Also what the client
    raises for a server-side error whose code it does not recognize."""

    code = "SERVER"


class ProtocolError(ServerError):
    """A wire frame was malformed: bad length prefix, payload that is not a
    JSON object, an oversized frame, or a truncated stream."""

    code = "SERVER_PROTOCOL"


class ServerOverloadedError(ServerError):
    """Admission control rejected the request: the server is at its session
    limit or its in-flight + queued query budget.  Clients should back off
    and retry; the request was **not** executed."""

    code = "SERVER_OVERLOADED"


class ServerShutdownError(ServerError):
    """The server is draining for shutdown and no longer accepts new work
    (in-flight queries are allowed to finish)."""

    code = "SERVER_SHUTDOWN"


class SessionStateError(ServerError):
    """The request is invalid in this session's current state (e.g.
    ``begin`` while a transaction is already active, or ``commit``
    without one)."""

    code = "SERVER_SESSION_STATE"


class CursorNotFoundError(ServerError):
    """``cursor_next``/``cursor_close`` named a cursor this session does
    not hold — it was never opened here, already exhausted, explicitly
    closed, or reaped after sitting idle past the server's
    ``cursor_idle_timeout``."""

    code = "CURSOR_NOT_FOUND"


class CursorLimitError(ServerOverloadedError):
    """``query_open`` refused because the session already holds
    ``max_cursors_per_session`` open cursors.  Close or drain one first;
    like every overload rejection, the query was **not** executed."""

    code = "CURSOR_LIMIT"


# ---------------------------------------------------------------------------
# Replication / failover
# ---------------------------------------------------------------------------


class ReplicationError(ServerError):
    """Base class for replication failures (subscription, shipping,
    apply, or a semi-sync acknowledgement that never arrived)."""

    code = "REPLICATION"


class NotPrimaryError(ReplicationError):
    """A write (or transaction) was sent to a **replica**.  Replicas apply
    the primary's WAL stream and serve reads only; the client should
    re-route the statement to the current primary.  ``details`` may carry
    the primary address the replica is following."""

    code = "NOT_PRIMARY"

    def __init__(self, message: str, primary: Optional[str] = None):
        super().__init__(message)
        self.primary = primary


class FailoverInProgressError(ReplicationError):
    """The replica-set router is mid-failover: the old primary is gone and
    a replacement has not been promoted yet.  Non-transactional work is
    retried transparently; transactional work gets this error because the
    server-side transaction died with the old primary and silently
    retargeting would lie about it."""

    code = "FAILOVER_IN_PROGRESS"


# ---------------------------------------------------------------------------
# Cluster / sharding
# ---------------------------------------------------------------------------


class ClusterError(ServerError):
    """Base class for sharded-cluster failures (coordinator planning,
    scatter-gather execution, shard routing, topology)."""

    code = "CLUSTER"


class ShardMapStaleError(ClusterError):
    """The client presented a shard-map version that does not match the
    topology this shard was configured with.  The client must refetch the
    map (``shard_map`` op) and retry; ``details`` carries the server's
    ``version`` so the client can tell *who* is behind."""

    code = "SHARD_MAP_STALE"

    def __init__(self, message: str, version: Optional[int] = None):
        super().__init__(message)
        self.version = version


class ShardUnavailableError(ClusterError):
    """A shard (including all of its replicas) could not be reached while
    executing a scattered statement.  The statement's result is undefined
    for reads and per-shard for DML; the coordinator surfaces this instead
    of returning a silently partial answer."""

    code = "SHARD_UNAVAILABLE"

    def __init__(self, message: str, shard: Optional[int] = None):
        super().__init__(message)
        self.shard = shard


class ClusterUnsupportedError(ClusterError):
    """The statement is valid MMQL but the coordinator cannot run it
    against a sharded topology (e.g. interactive multi-statement
    transactions, which would need distributed commit)."""

    code = "CLUSTER_UNSUPPORTED"


# ---------------------------------------------------------------------------
# Benchmark / workload
# ---------------------------------------------------------------------------


class BenchmarkError(ReproError):
    """A benchmark workload was misconfigured."""

    code = "BENCHMARK"


# ---------------------------------------------------------------------------
# Code registry — the wire contract
# ---------------------------------------------------------------------------

#: Serializable instance attributes worth shipping in an error's
#: ``details`` dict (and restoring on the reconstructed instance).
_DETAIL_TYPES = (str, int, float, bool, type(None))


def _subclasses(cls: type) -> list[type]:
    found = [cls]
    for sub in cls.__subclasses__():
        found.extend(_subclasses(sub))
    return found


def code_registry() -> dict[str, type]:
    """{code: class} for every :class:`ReproError` subclass currently
    imported.  Walked dynamically so subsystem-local errors (e.g.
    ``repro.fault.retry.RetryExhaustedError``) participate once their
    module loads."""
    registry: dict[str, type] = {}
    for cls in _subclasses(ReproError):
        registry.setdefault(cls.__dict__.get("code", cls.code), cls)
    return registry


def code_of(error: BaseException) -> str:
    """The wire code for any exception (``INTERNAL`` for non-engine ones)."""
    return getattr(error, "code", "INTERNAL")


def error_details(error: BaseException) -> dict:
    """JSON-safe instance attributes (``line``, ``elapsed``, …) to ship
    alongside the code and message."""
    return {
        key: value
        for key, value in vars(error).items()
        if not key.startswith("_") and isinstance(value, _DETAIL_TYPES)
    }


def error_for_code(
    code: str, message: str, details: Optional[dict] = None
) -> ReproError:
    """Reconstruct a typed engine error from its wire form.

    The instance is built without calling the subclass ``__init__`` (several
    have decorated messages that would double-apply), so the message arrives
    exactly as the server rendered it.  Unknown codes degrade to
    :class:`ServerError` carrying the original code as an instance
    attribute — never a raise-time failure.
    """
    cls = code_registry().get(code)
    if cls is None:
        error = ServerError(message)
        error.code = code  # preserve the foreign code for callers
    else:
        error = cls.__new__(cls)
        Exception.__init__(error, message)
    for key, value in (details or {}).items():
        try:
            setattr(error, key, value)
        except Exception:
            pass
    return error
