"""Context-var span tracer: nested wall-time spans with parent/child
attribution and **distributed trace identity**.

``with span("query.parse"):`` opens a span under whatever span is current
in this execution context (:mod:`contextvars`, so concurrent queries on
different threads/tasks never cross-attribute). Finished root spans land
in the global :data:`TRACER` ring; the shell's ``.trace on`` prints the
tree after every query.

Every active span carries a W3C-traceparent-style identity: a 32-hex
``trace_id`` shared by the whole request tree and a 16-hex ``span_id`` of
its own. Identity crosses two boundaries the plain context-var mechanism
cannot:

* **processes** — a remote peer's ``(trace_id, parent_span_id)`` is
  adopted with :func:`adopt`; spans opened inside continue the remote
  trace instead of starting a fresh one. An adopted remote parent also
  *forces* span creation even when tracing is globally disabled, so a
  server records spans exactly for the requests that asked for them.
* **threads** — :func:`capture` snapshots the current span and remote
  parent so a thread-pool worker can re-activate them (``with
  handoff:``). Without the explicit handoff, work bridged onto an
  executor thread starts from an empty context and its spans are
  orphaned.

Tracing is **off** by default and the disabled path allocates nothing:
:func:`span` returns a shared no-op context manager without creating a
``Span`` (unless a remote parent forces the request to be traced).
"""

from __future__ import annotations

import contextvars
import random
import re
import time
from collections import deque
from typing import Optional

__all__ = [
    "ENABLED",
    "enable",
    "disable",
    "is_enabled",
    "Span",
    "SpanContext",
    "span",
    "forced_span",
    "current_span",
    "current_context",
    "current_correlation",
    "adopt",
    "capture",
    "TraceHandoff",
    "new_trace_id",
    "new_span_id",
    "format_traceparent",
    "parse_traceparent",
    "Tracer",
    "TRACER",
    "last_trace",
    "format_span",
    "span_summary",
    "format_summary",
]

ENABLED = False

_current: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_span", default=None
)

#: Trace identity adopted from a remote peer (set via :func:`adopt`); the
#: next root span continues this trace instead of starting its own.
_remote_parent: contextvars.ContextVar[Optional["SpanContext"]] = (
    contextvars.ContextVar("repro_obs_remote_parent", default=None)
)

#: ID source — speed over cryptographic strength: ids only need to be
#: unique enough to correlate, and uuid4's per-call urandom syscall would
#: be the most expensive part of opening a span.
_ids = random.Random()

_TRACEPARENT = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$"
)


def enable() -> None:
    global ENABLED
    ENABLED = True


def disable() -> None:
    global ENABLED
    ENABLED = False


def is_enabled() -> bool:
    return ENABLED


def new_trace_id() -> str:
    """A fresh 32-hex (128-bit) trace id."""
    return f"{_ids.getrandbits(128):032x}"


def new_span_id() -> str:
    """A fresh 16-hex (64-bit) span id."""
    return f"{_ids.getrandbits(64):016x}"


class SpanContext:
    """The portable identity of a span: what crosses the wire (and the
    thread pool) so a child opened elsewhere lands in the same trace."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SpanContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
        )

    def __repr__(self) -> str:
        return f"<SpanContext {self.trace_id}/{self.span_id}>"


def format_traceparent(context: SpanContext) -> str:
    """W3C ``traceparent`` header for *context* (version 00, sampled)."""
    return f"00-{context.trace_id}-{context.span_id}-01"


def parse_traceparent(text: str) -> Optional[SpanContext]:
    """Parse a W3C ``traceparent`` header; None when malformed."""
    match = _TRACEPARENT.match(text.strip().lower()) if isinstance(text, str) else None
    if match is None:
        return None
    return SpanContext(match.group(1), match.group(2))


class Span:
    """One timed region. ``children`` are spans opened while this one was
    current; ``duration`` is wall seconds (0.0 while still open)."""

    __slots__ = ("name", "attrs", "start", "end", "children", "parent",
                 "trace_id", "span_id", "parent_span_id")

    def __init__(self, name: str, attrs: Optional[dict] = None,
                 parent: Optional["Span"] = None,
                 remote_parent: Optional[SpanContext] = None):
        self.name = name
        self.attrs = attrs or {}
        self.parent = parent
        self.span_id = new_span_id()
        if parent is not None:
            self.trace_id = parent.trace_id
            self.parent_span_id = parent.span_id
        elif remote_parent is not None:
            self.trace_id = remote_parent.trace_id
            self.parent_span_id = remote_parent.span_id
        else:
            self.trace_id = new_trace_id()
            self.parent_span_id = None
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    def set(self, **attrs) -> None:
        """Attach attributes after the span opened (row counts etc.)."""
        self.attrs.update(attrs)

    def __repr__(self) -> str:
        return f"<Span {self.name} {self.duration * 1000:.3f}ms>"


class Tracer:
    """Ring of recently finished *root* spans."""

    def __init__(self, keep: int = 32):
        self.roots: deque[Span] = deque(maxlen=keep)

    def record(self, root: Span) -> None:
        self.roots.append(root)

    def clear(self) -> None:
        self.roots.clear()


TRACER = Tracer()


class _ActiveSpan:
    """Context manager that opens/closes one span."""

    __slots__ = ("_span", "_token")

    def __init__(self, name: str, attrs: dict):
        self._span = Span(
            name,
            attrs,
            parent=_current.get(),
            remote_parent=_remote_parent.get(),
        )
        self._token = None

    def __enter__(self) -> Span:
        self._token = _current.set(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        here = self._span
        here.end = time.perf_counter()
        _current.reset(self._token)
        if here.parent is None:
            TRACER.record(here)
        else:
            here.parent.children.append(here)


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return None

    def set(self, **attrs) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, **attrs):
    """Open a nested span (or a shared no-op when tracing is disabled).

    A remote parent adopted via :func:`adopt` forces the span on even
    with tracing globally disabled — a request that arrived carrying
    trace context is, by definition, one somebody wants traced."""
    if not ENABLED and _remote_parent.get() is None:
        return _NOOP
    return _ActiveSpan(name, attrs)


def forced_span(name: str, **attrs):
    """Open a real span regardless of the global flag (client-side trace
    stitching uses this to trace one request on demand)."""
    return _ActiveSpan(name, attrs)


def current_span() -> Optional[Span]:
    return _current.get()


def current_context() -> Optional[SpanContext]:
    """The identity a child opened *now* would join: the current span's
    context, else the adopted remote parent, else None."""
    here = _current.get()
    if here is not None:
        return here.context
    return _remote_parent.get()


def current_correlation() -> dict:
    """Correlation ids for log/event records: ``trace_id`` plus any
    ``session_id``/``request_id`` attributes found walking up the current
    span chain. Empty when nothing is active."""
    here = _current.get()
    out: dict = {}
    if here is None:
        remote = _remote_parent.get()
        if remote is not None:
            out["trace_id"] = remote.trace_id
        return out
    out["trace_id"] = here.trace_id
    node: Optional[Span] = here
    while node is not None:
        for key in ("session_id", "request_id"):
            if key not in out and key in node.attrs:
                out[key] = node.attrs[key]
        node = node.parent
    return out


class adopt:
    """``with adopt(context):`` — continue a remote peer's trace.  Spans
    opened inside (with no local parent) join ``context.trace_id`` as
    children of ``context.span_id``, and are created even when tracing is
    globally disabled.  ``adopt(None)`` is a no-op wrapper."""

    __slots__ = ("_context", "_token")

    def __init__(self, context: Optional[SpanContext]):
        self._context = context
        self._token = None

    def __enter__(self) -> Optional[SpanContext]:
        if self._context is not None:
            self._token = _remote_parent.set(self._context)
        return self._context

    def __exit__(self, *exc_info) -> None:
        if self._token is not None:
            _remote_parent.reset(self._token)
            self._token = None


class TraceHandoff:
    """Snapshot of the active trace context, for explicit cross-thread
    propagation (:func:`capture` on the submitting side, ``with handoff:``
    on the worker). Context-vars are per-thread, so without this a
    thread-pool worker's spans would be orphan roots."""

    __slots__ = ("_span", "_remote", "_span_token", "_remote_token")

    def __init__(self, span_: Optional[Span], remote: Optional[SpanContext]):
        self._span = span_
        self._remote = remote
        self._span_token = None
        self._remote_token = None

    def __enter__(self) -> "TraceHandoff":
        self._span_token = _current.set(self._span)
        if self._remote is not None:
            self._remote_token = _remote_parent.set(self._remote)
        return self

    def __exit__(self, *exc_info) -> None:
        _current.reset(self._span_token)
        self._span_token = None
        if self._remote_token is not None:
            _remote_parent.reset(self._remote_token)
            self._remote_token = None

    def run(self, fn, *args, **kwargs):
        """Run ``fn`` under the captured context (worker-thread side)."""
        with self:
            return fn(*args, **kwargs)


def capture() -> TraceHandoff:
    """Snapshot the current span + remote parent for another thread."""
    return TraceHandoff(_current.get(), _remote_parent.get())


def last_trace() -> Optional[Span]:
    """The most recently completed root span, if any."""
    return TRACER.roots[-1] if TRACER.roots else None


def format_span(root: Span, indent: int = 0) -> str:
    """Indented tree: name, wall-time, and attributes per span."""
    pad = "  " * indent
    attrs = ""
    if root.attrs:
        attrs = " " + " ".join(f"{key}={value!r}" for key, value in root.attrs.items())
    lines = [f"{pad}{root.name}  {root.duration * 1000:.3f} ms{attrs}"]
    for child in root.children:
        lines.append(format_span(child, indent + 1))
    return "\n".join(lines)


def span_summary(root: Span) -> dict:
    """JSON-safe tree of one finished span: what the server returns over
    the wire so the client can stitch a cross-process trace."""
    return {
        "name": root.name,
        "trace_id": root.trace_id,
        "span_id": root.span_id,
        "parent_span_id": root.parent_span_id,
        "duration_ms": round(root.duration * 1000, 4),
        "attrs": dict(root.attrs),
        "children": [span_summary(child) for child in root.children],
    }


def format_summary(node: dict, indent: int = 0) -> str:
    """Indented tree over :func:`span_summary` dicts (local or remote)."""
    pad = "  " * indent
    attrs = node.get("attrs") or {}
    attr_text = (
        " " + " ".join(f"{key}={value!r}" for key, value in attrs.items())
        if attrs
        else ""
    )
    lines = [f"{pad}{node.get('name')}  {node.get('duration_ms', 0.0):.3f} ms{attr_text}"]
    for child in node.get("children") or []:
        lines.append(format_summary(child, indent + 1))
    return "\n".join(lines)
