"""Context-var span tracer: nested wall-time spans with parent/child
attribution.

``with span("query.parse"):`` opens a span under whatever span is current
in this execution context (:mod:`contextvars`, so concurrent queries on
different threads/tasks never cross-attribute). Finished root spans land
in the global :data:`TRACER` ring; the shell's ``.trace on`` prints the
tree after every query.

Tracing is **off** by default and the disabled path allocates nothing:
:func:`span` returns a shared no-op context manager without creating a
``Span``.
"""

from __future__ import annotations

import contextvars
import time
from collections import deque
from typing import Optional

__all__ = [
    "ENABLED",
    "enable",
    "disable",
    "is_enabled",
    "Span",
    "span",
    "current_span",
    "Tracer",
    "TRACER",
    "last_trace",
    "format_span",
]

ENABLED = False

_current: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_span", default=None
)


def enable() -> None:
    global ENABLED
    ENABLED = True


def disable() -> None:
    global ENABLED
    ENABLED = False


def is_enabled() -> bool:
    return ENABLED


class Span:
    """One timed region. ``children`` are spans opened while this one was
    current; ``duration`` is wall seconds (0.0 while still open)."""

    __slots__ = ("name", "attrs", "start", "end", "children", "parent")

    def __init__(self, name: str, attrs: Optional[dict] = None,
                 parent: Optional["Span"] = None):
        self.name = name
        self.attrs = attrs or {}
        self.parent = parent
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def set(self, **attrs) -> None:
        """Attach attributes after the span opened (row counts etc.)."""
        self.attrs.update(attrs)

    def __repr__(self) -> str:
        return f"<Span {self.name} {self.duration * 1000:.3f}ms>"


class Tracer:
    """Ring of recently finished *root* spans."""

    def __init__(self, keep: int = 32):
        self.roots: deque[Span] = deque(maxlen=keep)

    def record(self, root: Span) -> None:
        self.roots.append(root)

    def clear(self) -> None:
        self.roots.clear()


TRACER = Tracer()


class _ActiveSpan:
    """Context manager that opens/closes one span."""

    __slots__ = ("_span", "_token")

    def __init__(self, name: str, attrs: dict):
        self._span = Span(name, attrs, parent=_current.get())
        self._token = None

    def __enter__(self) -> Span:
        self._token = _current.set(self._span)
        return self._span

    def __exit__(self, *exc_info) -> None:
        here = self._span
        here.end = time.perf_counter()
        _current.reset(self._token)
        if here.parent is None:
            TRACER.record(here)
        else:
            here.parent.children.append(here)


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return None

    def set(self, **attrs) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, **attrs):
    """Open a nested span (or a shared no-op when tracing is disabled)."""
    if not ENABLED:
        return _NOOP
    return _ActiveSpan(name, attrs)


def current_span() -> Optional[Span]:
    return _current.get()


def last_trace() -> Optional[Span]:
    """The most recently completed root span, if any."""
    return TRACER.roots[-1] if TRACER.roots else None


def format_span(root: Span, indent: int = 0) -> str:
    """Indented tree: name, wall-time, and attributes per span."""
    pad = "  " * indent
    attrs = ""
    if root.attrs:
        attrs = " " + " ".join(f"{key}={value!r}" for key, value in root.attrs.items())
    lines = [f"{pad}{root.name}  {root.duration * 1000:.3f} ms{attrs}"]
    for child in root.children:
        lines.append(format_span(child, indent + 1))
    return "\n".join(lines)
