"""Live telemetry endpoint: a dependency-free asyncio HTTP server.

Serves the observability surface of a running process over plain
HTTP/1.1 so a server is inspectable with ``curl`` or scraped by
Prometheus without going through the wire protocol (or the shell):

* ``GET /metrics``  — Prometheus text exposition of the metrics registry
  (``text/plain; version=0.0.4; charset=utf-8``);
* ``GET /healthz``  — liveness JSON: ``{"ok": true, ...}`` plus whatever
  the host's health provider reports (uptime, draining, sessions);
* ``GET /stats``    — the host's stats document plus a full JSON metrics
  snapshot;
* ``GET /events``   — the structured event log's recent entries
  (``?n=50`` limits, ``?kind=slow_query`` filters).

The implementation is deliberately minimal: one request per connection
(``Connection: close``), GET only, no TLS — it binds to loopback by
default and exists for scrapes and health probes, not as a public API.
:class:`repro.server.server.ReproServer` starts one alongside its wire
port when constructed with ``telemetry_port=``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Optional
from urllib.parse import parse_qs, urlsplit

from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs.export import prometheus_text

__all__ = ["PROMETHEUS_CONTENT_TYPE", "TelemetryEndpoint"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_MAX_REQUEST_BYTES = 16 * 1024


class TelemetryEndpoint:
    """One HTTP listener exposing metrics/health/stats/events.

    ``stats_provider`` / ``health_provider`` are zero-argument callables
    returning JSON-safe dicts (the wire server passes its own); both are
    optional so the endpoint also works standalone in embedded processes.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[Any] = None,
        stats_provider: Optional[Callable[[], dict]] = None,
        health_provider: Optional[Callable[[], dict]] = None,
    ):
        self.host = host
        self.port = port
        self.registry = registry if registry is not None else obs_metrics.REGISTRY
        self.stats_provider = stats_provider
        self.health_provider = health_provider
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    async def start(self) -> tuple[str, int]:
        """Bind and serve; ``port=0`` picks a free port, returned here."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------- serving --

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line or len(request_line) > _MAX_REQUEST_BYTES:
                return
            # Drain headers up to the blank line; the routes take no body.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                if len(line) > _MAX_REQUEST_BYTES:
                    return
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                await self._respond(writer, 400, "text/plain", b"bad request\n")
                return
            method, target = parts[0], parts[1]
            if method != "GET":
                await self._respond(
                    writer, 405, "text/plain", b"method not allowed\n"
                )
                return
            status, content_type, body = self._route(target)
            await self._respond(writer, status, content_type, body)
            if obs_metrics.ENABLED:
                obs_metrics.counter(
                    "telemetry_requests_total",
                    path=urlsplit(target).path or "/",
                ).inc()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _route(self, target: str) -> tuple[int, str, bytes]:
        split = urlsplit(target)
        path = split.path or "/"
        query = parse_qs(split.query)
        if path == "/metrics":
            text = prometheus_text(self.registry)
            return 200, PROMETHEUS_CONTENT_TYPE, (text + "\n").encode("utf-8")
        if path == "/healthz":
            payload: dict = {"ok": True}
            if self.health_provider is not None:
                try:
                    payload.update(self.health_provider())
                except Exception as error:
                    payload = {"ok": False, "error": str(error)}
            status = 200 if payload.get("ok") else 503
            return status, "application/json", _json_bytes(payload)
        if path == "/stats":
            payload = {"metrics": self.registry.snapshot()}
            if self.stats_provider is not None:
                try:
                    payload["server"] = self.stats_provider()
                except Exception as error:
                    payload["server"] = {"error": str(error)}
            return 200, "application/json", _json_bytes(payload)
        if path == "/events":
            limit = _int_param(query, "n")
            kind = (query.get("kind") or [None])[0]
            entries = obs_events.tail(limit, kind=kind)
            return 200, "application/json", _json_bytes({"events": entries})
        return 404, "text/plain", b"not found: /metrics /healthz /stats /events\n"

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, content_type: str, body: bytes
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 503: "Service Unavailable"}
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


def _json_bytes(payload: dict) -> bytes:
    return (json.dumps(payload, default=str, sort_keys=True) + "\n").encode("utf-8")


def _int_param(query: dict, name: str) -> Optional[int]:
    values = query.get(name)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        return None
