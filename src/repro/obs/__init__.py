"""Engine-wide observability: metrics registry, span tracing, exporters,
slow-query log, and store instrumentation.

Entry points:

* :mod:`repro.obs.metrics` — counters/gauges/histograms in the global
  :data:`~repro.obs.metrics.REGISTRY`; ``metrics.disable()`` turns every
  instrumentation site in the engine into a near-zero-cost no-op.
* :mod:`repro.obs.tracing` — nested wall-time spans (off by default;
  the shell's ``.trace on`` prints trees after each query).
* :mod:`repro.obs.export` — Prometheus text and JSON exposition.
* :mod:`repro.obs.slowlog` — bounded ring of queries over a threshold.
* :mod:`repro.obs.instrument` — per-model store method wrapping.
* :mod:`repro.obs.events` — structured JSON-lines event log with
  trace/session/request correlation ids.
* :mod:`repro.obs.telemetry` — asyncio HTTP endpoint serving
  ``/metrics`` (Prometheus), ``/healthz``, ``/stats`` and ``/events``.

Distributed tracing (trace ids, remote-parent adoption, explicit
cross-thread handoff, span summaries for the wire) lives in
:mod:`repro.obs.tracing`; see ``docs/OBSERVABILITY.md`` for the full
tour.
"""

from repro.obs import events, export, instrument, metrics, slowlog, tracing
from repro.obs.events import EVENTS, EventLog, emit
from repro.obs.export import json_dump, prometheus_text
from repro.obs.instrument import instrument_store
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    time_block,
    timed_call,
)
from repro.obs.tracing import (
    Span,
    SpanContext,
    Tracer,
    format_span,
    format_summary,
    last_trace,
    span,
    span_summary,
)

__all__ = [
    "metrics",
    "tracing",
    "export",
    "slowlog",
    "instrument",
    "events",
    "EVENTS",
    "EventLog",
    "emit",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "time_block",
    "timed_call",
    "Span",
    "SpanContext",
    "Tracer",
    "span",
    "span_summary",
    "last_trace",
    "format_span",
    "format_summary",
    "prometheus_text",
    "json_dump",
    "instrument_store",
]
