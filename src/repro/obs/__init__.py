"""Engine-wide observability: metrics registry, span tracing, exporters,
slow-query log, and store instrumentation.

Entry points:

* :mod:`repro.obs.metrics` — counters/gauges/histograms in the global
  :data:`~repro.obs.metrics.REGISTRY`; ``metrics.disable()`` turns every
  instrumentation site in the engine into a near-zero-cost no-op.
* :mod:`repro.obs.tracing` — nested wall-time spans (off by default;
  the shell's ``.trace on`` prints trees after each query).
* :mod:`repro.obs.export` — Prometheus text and JSON exposition.
* :mod:`repro.obs.slowlog` — bounded ring of queries over a threshold.
* :mod:`repro.obs.instrument` — per-model store method wrapping.

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from repro.obs import export, instrument, metrics, slowlog, tracing
from repro.obs.export import json_dump, prometheus_text
from repro.obs.instrument import instrument_store
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    time_block,
    timed_call,
)
from repro.obs.tracing import Span, Tracer, format_span, last_trace, span

__all__ = [
    "metrics",
    "tracing",
    "export",
    "slowlog",
    "instrument",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "histogram",
    "time_block",
    "timed_call",
    "Span",
    "Tracer",
    "span",
    "last_trace",
    "format_span",
    "prometheus_text",
    "json_dump",
    "instrument_store",
]
