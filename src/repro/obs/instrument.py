"""Per-model store instrumentation.

:func:`instrument_store` wraps the public data methods of a model store
(document collection, relational table, KV bucket, property graph, …) so
every call lands in the registry as

* ``model_ops_total{model=<kind>, op=<method>}`` — call counter,
* ``model_op_seconds{model=<kind>, op=<method>}`` — latency histogram.

:class:`repro.core.database.MultiModelDB` applies it at registration time
for every catalog object, which is how the per-model paths of the engine
become attributable without touching any store class. Wrappers check
:data:`repro.obs.metrics.ENABLED` at call time, so disabling
observability disables the cost too (one flag test + passthrough call).

Methods that return lazy iterators (``rows``, ``all``, ``items``) are
timed on call — i.e. the counter counts scans started, and the histogram
sees iterator-construction time only; the per-row cost of scans is
attributed by the query layer's operator probes instead.
"""

from __future__ import annotations

import functools
import time
from typing import Any

from repro.obs import metrics

__all__ = ["instrument_store", "INSTRUMENTED_METHODS"]

#: Public data methods wrapped when present on a store. Conservative by
#: design: lifecycle/internal helpers (``truncate``, ``catch_up``,
#: underscore methods) stay unwrapped, and so do single-record point
#: reads (``get``, ``vertex``, ``contains``) — they run once per *row*
#: on query hot paths, where even a disabled wrapper's extra call frame
#: would be measurable; scans, traversals and writes carry the signal.
INSTRUMENTED_METHODS = (
    # generic keyed stores
    "insert",
    "update",
    "delete",
    "replace",
    "put",
    "all",
    "rows",
    "items",
    "scan_cursor",
    "find_by_example",
    # graph
    "add_vertex",
    "add_edge",
    "vertices",
    "edges",
    "traverse",
    "traverse_with_edges",
    "shortest_path",
    # rdf / xml / spatial
    "add",
    "triples",
    "uris",
    "search",
)


def _wrap(kind: str, op_name: str, func) -> Any:
    calls = metrics.counter("model_ops_total", model=kind, op=op_name)
    seconds = metrics.histogram("model_op_seconds", model=kind, op=op_name)

    @functools.wraps(func)
    def wrapper(*args, **kwargs):
        if not metrics.ENABLED:
            return func(*args, **kwargs)
        start = time.perf_counter()
        try:
            return func(*args, **kwargs)
        finally:
            seconds.observe(time.perf_counter() - start)
            calls.inc()

    wrapper.__obs_instrumented__ = True
    return wrapper


def instrument_store(kind: str, store: Any) -> Any:
    """Wrap *store*'s public data methods with metrics; returns the store.

    Idempotent: already-wrapped methods are left alone, so re-registering
    or double-instrumenting cannot stack wrappers.
    """
    for name in INSTRUMENTED_METHODS:
        func = getattr(store, name, None)
        if func is None or not callable(func):
            continue
        if getattr(func, "__obs_instrumented__", False):
            continue
        setattr(store, name, _wrap(kind, name, func))
    return store
