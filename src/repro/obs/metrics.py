"""Dependency-free metrics primitives: counters, gauges, histograms.

The whole engine reports into one process-wide :class:`MetricsRegistry`
(:data:`REGISTRY`) so that query, storage, index and transaction counters
land in a single place — the prerequisite for attributing cost across the
relational/document/graph/KV/XML paths of a multi-model engine.

Design constraints:

* **Near-zero cost when disabled.** Every instrumentation site guards on
  the module-level :data:`ENABLED` flag (one attribute load + truth test)
  and performs no string formatting, no timestamping and no allocation on
  the disabled path.
* **Stable handles.** ``registry.counter(name, **labels)`` is
  get-or-create: modules grab their handles once at import time and
  :meth:`MetricsRegistry.reset` zeroes values without invalidating them.
* **Bounded memory.** Histograms keep running count/sum/min/max exactly
  and a fixed-size ring of recent samples for the p50/p95/p99 quantiles.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "ENABLED",
    "enable",
    "disable",
    "is_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "timed_call",
    "time_block",
]

#: Global kill switch. Instrumentation sites check ``metrics.ENABLED``
#: before touching any metric object.
ENABLED = True


def enable() -> None:
    """Turn instrumentation on (the default)."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn instrumentation off; all guarded sites become no-ops."""
    global ENABLED
    ENABLED = False


def is_enabled() -> bool:
    return ENABLED


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"<Counter {self.name}{dict(self.labels)} = {self.value}>"


class Gauge:
    """Value that can go up and down (active transactions, memtable size)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"<Gauge {self.name}{dict(self.labels)} = {self.value}>"


class Histogram:
    """Streaming distribution: exact count/sum/min/max plus a bounded ring
    of recent samples from which p50/p95/p99 are computed on demand.

    The ring (default 4096 samples) keeps memory constant under any load;
    quantiles therefore describe *recent* behaviour, which is what a
    slow-query investigation wants anyway.
    """

    __slots__ = ("name", "labels", "count", "sum", "min", "max",
                 "_samples", "_capacity", "_cursor")

    kind = "histogram"

    def __init__(self, name: str, labels: tuple = (), capacity: int = 4096):
        self.name = name
        self.labels = labels
        self._capacity = max(int(capacity), 1)
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._samples: list = []
        self._cursor = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < self._capacity:
            self._samples.append(value)
        else:
            # Overwrite oldest: a ring of the most recent `capacity` samples.
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % self._capacity

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the retained samples
        (``q`` in [0, 1]); 0.0 when nothing has been observed."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1 - fraction) + ordered[upper] * fraction

    def percentiles(self) -> dict:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return (
            f"<Histogram {self.name}{dict(self.labels)} "
            f"count={self.count} mean={self.mean:.6f}>"
        )


class MetricsRegistry:
    """Process-wide catalog of metrics, keyed by (name, sorted labels)."""

    def __init__(self):
        self._metrics: dict[tuple, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, factory: Callable, name: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = factory(name, key[1])
                    self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    def collect(self) -> Iterator[Any]:
        """All metrics, sorted by (name, labels) for stable output."""
        return iter(sorted(self._metrics.values(), key=lambda m: (m.name, m.labels)))

    def snapshot(self) -> dict:
        """Plain-dict dump: {name: [{labels, ...fields}]} — JSON-friendly."""
        out: dict[str, list] = {}
        for metric in self.collect():
            entry: dict[str, Any] = {"labels": dict(metric.labels)}
            if metric.kind == "histogram":
                entry.update(
                    count=metric.count,
                    sum=metric.sum,
                    min=metric.min,
                    max=metric.max,
                    mean=metric.mean,
                    **metric.percentiles(),
                )
            else:
                entry["value"] = metric.value
            entry["kind"] = metric.kind
            out.setdefault(metric.name, []).append(entry)
        return out

    def total(self, name: str) -> float:
        """Sum of a metric's value (counters/gauges) or count (histograms)
        across all label sets; 0 when the metric has never been touched."""
        total = 0
        for metric in self._metrics.values():
            if metric.name != name:
                continue
            total += metric.count if metric.kind == "histogram" else metric.value
        return total

    def reset(self) -> None:
        """Zero every metric, keeping the objects (module-level handles
        stay valid)."""
        for metric in self._metrics.values():
            metric.reset()

    def __len__(self) -> int:
        return len(self._metrics)


#: The default, engine-wide registry.
REGISTRY = MetricsRegistry()


def counter(name: str, **labels) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels) -> Histogram:
    return REGISTRY.histogram(name, **labels)


def timed_call(fn: Callable, *args, metric: Optional[Histogram] = None, **kwargs):
    """Run ``fn(*args, **kwargs)``; returns ``(result, seconds)``.

    Always measures (callers need the duration regardless); observes into
    *metric* only when instrumentation is enabled.
    """
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    elapsed = time.perf_counter() - start
    if ENABLED and metric is not None:
        metric.observe(elapsed)
    return result, elapsed


class time_block:
    """``with time_block(hist): …`` — observe the block's wall time.

    Exposes ``.seconds`` after exit so callers can reuse the measurement.
    """

    __slots__ = ("metric", "seconds", "_start")

    def __init__(self, metric: Optional[Histogram] = None):
        self.metric = metric
        self.seconds = 0.0

    def __enter__(self) -> "time_block":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start
        if ENABLED and self.metric is not None:
            self.metric.observe(self.seconds)
