"""Dependency-free metrics primitives: counters, gauges, histograms.

The whole engine reports into one process-wide :class:`MetricsRegistry`
(:data:`REGISTRY`) so that query, storage, index and transaction counters
land in a single place — the prerequisite for attributing cost across the
relational/document/graph/KV/XML paths of a multi-model engine.

Design constraints:

* **Near-zero cost when disabled.** Every instrumentation site guards on
  the module-level :data:`ENABLED` flag (one attribute load + truth test)
  and performs no string formatting, no timestamping and no allocation on
  the disabled path.
* **Stable handles.** ``registry.counter(name, **labels)`` is
  get-or-create: modules grab their handles once at import time and
  :meth:`MetricsRegistry.reset` zeroes values without invalidating them.
* **Bounded memory.** Histograms keep running count/sum/min/max exactly,
  fixed Prometheus-style latency buckets, and a fixed-size ring of recent
  samples for the p50/p95/p99 quantiles.  The registry additionally caps
  **label cardinality**: at most :attr:`MetricsRegistry.max_label_sets`
  distinct label combinations per metric name — creation beyond the cap
  folds into one ``overflow="true"`` series and bumps
  ``obs_labels_dropped_total``, so a site that (mis)labels by session or
  cursor id cannot grow the registry without bound.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "ENABLED",
    "enable",
    "disable",
    "is_enabled",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "describe",
    "timed_call",
    "time_block",
]

#: Global kill switch. Instrumentation sites check ``metrics.ENABLED``
#: before touching any metric object.
ENABLED = True


def enable() -> None:
    """Turn instrumentation on (the default)."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn instrumentation off; all guarded sites become no-ops."""
    global ENABLED
    ENABLED = False


def is_enabled() -> bool:
    return ENABLED


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"<Counter {self.name}{dict(self.labels)} = {self.value}>"


class Gauge:
    """Value that can go up and down (active transactions, memtable size)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: tuple = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"<Gauge {self.name}{dict(self.labels)} = {self.value}>"


#: Default histogram bucket upper bounds (seconds) — latency-oriented,
#: 500 µs to 10 s; every histogram also gets an implicit ``+Inf`` bucket.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """Streaming distribution: exact count/sum/min/max, fixed cumulative
    buckets for Prometheus exposition, plus a bounded ring of recent
    samples from which p50/p95/p99 are computed on demand.

    The ring (default 4096 samples) keeps memory constant under any load;
    quantiles therefore describe *recent* behaviour, which is what a
    slow-query investigation wants anyway.
    """

    __slots__ = ("name", "labels", "count", "sum", "min", "max",
                 "_samples", "_capacity", "_cursor", "buckets",
                 "bucket_counts")

    kind = "histogram"

    def __init__(self, name: str, labels: tuple = (), capacity: int = 4096,
                 buckets: tuple = DEFAULT_BUCKETS):
        self.name = name
        self.labels = labels
        self._capacity = max(int(capacity), 1)
        self.buckets = tuple(sorted(buckets))
        self.reset()

    def reset(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None
        self._samples: list = []
        self._cursor = 0
        #: Per-bucket (non-cumulative) hit counts; the last slot is +Inf.
        self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        if len(self._samples) < self._capacity:
            self._samples.append(value)
        else:
            # Overwrite oldest: a ring of the most recent `capacity` samples.
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % self._capacity

    def cumulative_buckets(self) -> list[tuple[str, int]]:
        """``(le, cumulative count)`` pairs ending with ``("+Inf", count)``
        — exactly the series a Prometheus histogram exposes."""
        out: list[tuple[str, int]] = []
        running = 0
        for bound, hits in zip(self.buckets, self.bucket_counts):
            running += hits
            out.append((f"{bound:g}", running))
        out.append(("+Inf", self.count))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile over the retained samples
        (``q`` in [0, 1]); 0.0 when nothing has been observed."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1 - fraction) + ordered[upper] * fraction

    def percentiles(self) -> dict:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return (
            f"<Histogram {self.name}{dict(self.labels)} "
            f"count={self.count} mean={self.mean:.6f}>"
        )


#: Default per-name label-set cap (see :class:`MetricsRegistry`).
DEFAULT_MAX_LABEL_SETS = 64

#: Label set every over-the-cap creation folds into.
_OVERFLOW_LABELS = (("overflow", "true"),)


class MetricsRegistry:
    """Process-wide catalog of metrics, keyed by (name, sorted labels).

    ``max_label_sets`` bounds how many *distinct labeled series* one
    metric name may create (``None`` disables the cap).  The cap guards
    against unbounded-cardinality labels (session ids, cursor ids, raw
    query text): the first creation past it returns a shared
    ``{overflow="true"}`` series for that name instead, and each such
    fold increments ``obs_labels_dropped_total`` — so misuse degrades to
    one coarse series plus an alarm, never to unbounded registry growth.
    """

    def __init__(self, max_label_sets: Optional[int] = DEFAULT_MAX_LABEL_SETS):
        self._metrics: dict[tuple, Any] = {}
        self._lock = threading.Lock()
        self._label_set_counts: dict[str, int] = {}
        self._help: dict[str, str] = {}
        self.max_label_sets = max_label_sets

    def _get_or_create(self, factory: Callable, name: str, labels: dict):
        key = (name, tuple(sorted(labels.items())))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    if (
                        labels
                        and self.max_label_sets is not None
                        and self._label_set_counts.get(name, 0)
                        >= self.max_label_sets
                    ):
                        return self._overflow_locked(factory, name)
                    metric = factory(name, key[1])
                    self._metrics[key] = metric
                    if labels:
                        self._label_set_counts[name] = (
                            self._label_set_counts.get(name, 0) + 1
                        )
        return metric

    def _overflow_locked(self, factory: Callable, name: str):
        """Cap hit (lock held): count the drop and return the shared
        overflow series for *name*."""
        dropped = self._metrics.get(("obs_labels_dropped_total", ()))
        if dropped is None:
            dropped = Counter("obs_labels_dropped_total", ())
            self._metrics[("obs_labels_dropped_total", ())] = dropped
        dropped.inc()
        key = (name, _OVERFLOW_LABELS)
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, _OVERFLOW_LABELS)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    # -- help text -----------------------------------------------------------

    def describe(self, name: str, help_text: str) -> None:
        """Register a ``# HELP`` line for *name* (exposition only)."""
        self._help[name] = help_text

    def help_for(self, name: str) -> Optional[str]:
        return self._help.get(name)

    def collect(self) -> Iterator[Any]:
        """All metrics, sorted by (name, labels) for stable output."""
        return iter(sorted(self._metrics.values(), key=lambda m: (m.name, m.labels)))

    def snapshot(self) -> dict:
        """Plain-dict dump: {name: [{labels, ...fields}]} — JSON-friendly."""
        out: dict[str, list] = {}
        for metric in self.collect():
            entry: dict[str, Any] = {"labels": dict(metric.labels)}
            if metric.kind == "histogram":
                entry.update(
                    count=metric.count,
                    sum=metric.sum,
                    min=metric.min,
                    max=metric.max,
                    mean=metric.mean,
                    **metric.percentiles(),
                )
            else:
                entry["value"] = metric.value
            entry["kind"] = metric.kind
            out.setdefault(metric.name, []).append(entry)
        return out

    def total(self, name: str) -> float:
        """Sum of a metric's value (counters/gauges) or count (histograms)
        across all label sets; 0 when the metric has never been touched."""
        total = 0
        for metric in self._metrics.values():
            if metric.name != name:
                continue
            total += metric.count if metric.kind == "histogram" else metric.value
        return total

    def reset(self) -> None:
        """Zero every metric, keeping the objects (module-level handles
        stay valid)."""
        for metric in self._metrics.values():
            metric.reset()

    def __len__(self) -> int:
        return len(self._metrics)


#: The default, engine-wide registry.
REGISTRY = MetricsRegistry()


def counter(name: str, **labels) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels) -> Histogram:
    return REGISTRY.histogram(name, **labels)


def describe(name: str, help_text: str) -> None:
    """Register a ``# HELP`` line for *name* in the default registry."""
    REGISTRY.describe(name, help_text)


def timed_call(fn: Callable, *args, metric: Optional[Histogram] = None, **kwargs):
    """Run ``fn(*args, **kwargs)``; returns ``(result, seconds)``.

    Always measures (callers need the duration regardless); observes into
    *metric* only when instrumentation is enabled.
    """
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    elapsed = time.perf_counter() - start
    if ENABLED and metric is not None:
        metric.observe(elapsed)
    return result, elapsed


class time_block:
    """``with time_block(hist): …`` — observe the block's wall time.

    Exposes ``.seconds`` after exit so callers can reuse the measurement.
    """

    __slots__ = ("metric", "seconds", "_start")

    def __init__(self, metric: Optional[Histogram] = None):
        self.metric = metric
        self.seconds = 0.0

    def __enter__(self) -> "time_block":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start
        if ENABLED and self.metric is not None:
            self.metric.observe(self.seconds)
