"""Exporters: Prometheus text exposition and JSON dump of the registry.

Both are pure functions over a :class:`repro.obs.metrics.MetricsRegistry`
so they can be pointed at any registry (tests use private ones) and wired
to any transport — the shell's ``.metrics`` command, an HTTP endpoint, or
a file.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = ["prometheus_text", "json_dump"]


def _label_text(labels: tuple, extra: Optional[tuple] = None) -> str:
    pairs = list(labels)
    if extra:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + inner + "}"


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """Prometheus-style text exposition of every metric in *registry*.

    Histograms are rendered as ``_count``/``_sum`` plus ``quantile`` series
    (summary flavour — the engine computes quantiles, not buckets).
    """
    registry = registry if registry is not None else REGISTRY
    lines: list[str] = []
    seen_types: set[str] = set()
    for metric in registry.collect():
        if metric.kind == "histogram":
            if metric.name not in seen_types:
                lines.append(f"# TYPE {metric.name} summary")
                seen_types.add(metric.name)
            for quantile, value in (
                ("0.5", metric.quantile(0.50)),
                ("0.95", metric.quantile(0.95)),
                ("0.99", metric.quantile(0.99)),
            ):
                lines.append(
                    f"{metric.name}"
                    f"{_label_text(metric.labels, ('quantile', quantile))} "
                    f"{value:.9g}"
                )
            lines.append(
                f"{metric.name}_count{_label_text(metric.labels)} {metric.count}"
            )
            lines.append(
                f"{metric.name}_sum{_label_text(metric.labels)} {metric.sum:.9g}"
            )
        else:
            if metric.name not in seen_types:
                lines.append(f"# TYPE {metric.name} {metric.kind}")
                seen_types.add(metric.name)
            lines.append(f"{metric.name}{_label_text(metric.labels)} {metric.value}")
    return "\n".join(lines)


def json_dump(registry: Optional[MetricsRegistry] = None, indent: int = 2) -> str:
    """The registry snapshot as a JSON document."""
    registry = registry if registry is not None else REGISTRY
    return json.dumps(registry.snapshot(), indent=indent, default=str, sort_keys=True)
