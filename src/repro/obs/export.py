"""Exporters: Prometheus text exposition and JSON dump of the registry.

Both are pure functions over a :class:`repro.obs.metrics.MetricsRegistry`
so they can be pointed at any registry (tests use private ones) and wired
to any transport — the shell's ``.metrics`` command, the HTTP telemetry
endpoint (:mod:`repro.obs.telemetry`), or a file.

The Prometheus output follows the text exposition format 0.0.4:

* one ``# HELP`` and ``# TYPE`` pair per metric name (help text comes
  from :meth:`~repro.obs.metrics.MetricsRegistry.describe`, with a
  generated fallback);
* label values escaped (backslash, double-quote, newline);
* histograms exposed as *cumulative* ``_bucket{le="…"}`` series ending
  at ``le="+Inf"`` (equal to ``_count``), plus ``_sum`` and ``_count``.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = ["prometheus_text", "json_dump", "escape_label_value"]


def escape_label_value(value) -> str:
    """Escape a label value per the exposition format: ``\\`` → ``\\\\``,
    ``"`` → ``\\"``, newline → ``\\n``."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_text(labels: tuple, extra: Optional[tuple] = None) -> str:
    pairs = list(labels)
    if extra:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in pairs
    )
    return "{" + inner + "}"


def prometheus_text(registry: Optional[MetricsRegistry] = None) -> str:
    """Prometheus text exposition (format 0.0.4) of every metric in
    *registry*."""
    registry = registry if registry is not None else REGISTRY
    lines: list[str] = []
    described: set[str] = set()

    def _header(metric) -> None:
        if metric.name in described:
            return
        described.add(metric.name)
        help_text = None
        help_for = getattr(registry, "help_for", None)
        if help_for is not None:
            help_text = help_for(metric.name)
        if help_text is None:
            help_text = f"repro engine metric {metric.name}"
        lines.append(f"# HELP {metric.name} {help_text}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")

    for metric in registry.collect():
        _header(metric)
        if metric.kind == "histogram":
            for le, cumulative in metric.cumulative_buckets():
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_label_text(metric.labels, ('le', le))} {cumulative}"
                )
            lines.append(
                f"{metric.name}_sum{_label_text(metric.labels)} {metric.sum:.9g}"
            )
            lines.append(
                f"{metric.name}_count{_label_text(metric.labels)} {metric.count}"
            )
        else:
            lines.append(f"{metric.name}{_label_text(metric.labels)} {metric.value}")
    return "\n".join(lines)


def json_dump(registry: Optional[MetricsRegistry] = None, indent: int = 2) -> str:
    """The registry snapshot as a JSON document."""
    registry = registry if registry is not None else REGISTRY
    return json.dumps(registry.snapshot(), indent=indent, default=str, sort_keys=True)
