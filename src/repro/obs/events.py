"""Structured event log: notable engine events as JSON-lines records.

Metrics answer "how much"; the event log answers "what happened, to which
request".  Low-frequency but high-signal occurrences — slow queries,
admission rejections, graceful-drain phases, cursor reaping, fault
injections, client reconnects — are emitted here as flat dicts, each
stamped with a wall-clock timestamp and whatever correlation ids the
ambient trace context carries (``trace_id``, ``session_id``,
``request_id`` — see :func:`repro.obs.tracing.current_correlation`), so
one ``grep trace_id=…`` joins the event stream to a stitched trace.

Events land in a bounded in-memory ring (the shell's ``.events``, the
server's ``events`` wire op and the ``/events`` telemetry route read it)
and, when a sink file is attached, are appended to it as one JSON object
per line — the interchange format every log shipper understands.

Emission is cheap but not free (a dict + a clock read), so sites guard on
:data:`ENABLED` exactly like the metrics sites; the log is **on** by
default because every event type is rare by construction.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import IO, Optional

from repro.obs import tracing

__all__ = [
    "ENABLED",
    "enable",
    "disable",
    "is_enabled",
    "EventLog",
    "EVENTS",
    "emit",
    "tail",
    "clear",
    "attach_file",
    "detach_file",
]

#: Kill switch, mirroring ``metrics.ENABLED`` / ``tracing.ENABLED``.
ENABLED = True


def enable() -> None:
    global ENABLED
    ENABLED = True


def disable() -> None:
    global ENABLED
    ENABLED = False


def is_enabled() -> bool:
    return ENABLED


class EventLog:
    """Bounded ring of event dicts plus an optional JSON-lines file sink.

    Thread-safe: events are emitted from the server's event loop, its
    executor workers, and client threads alike."""

    def __init__(self, capacity: int = 512):
        self._ring: deque = deque(maxlen=max(int(capacity), 1))
        self._lock = threading.Lock()
        self._sink: Optional[IO] = None
        self._sink_path: Optional[str] = None
        self.emitted = 0
        self.dropped_writes = 0

    # -- sink ---------------------------------------------------------------

    def attach_file(self, path: str) -> None:
        """Append events to *path* as JSON lines (in addition to the ring)."""
        with self._lock:
            self._close_sink()
            self._sink = open(path, "a", encoding="utf-8")
            self._sink_path = path

    def detach_file(self) -> Optional[str]:
        """Stop writing to the sink file; returns its path (or None)."""
        with self._lock:
            path = self._sink_path
            self._close_sink()
            return path

    def _close_sink(self) -> None:
        if self._sink is not None:
            try:
                self._sink.close()
            except OSError:
                pass
        self._sink = None
        self._sink_path = None

    @property
    def sink_path(self) -> Optional[str]:
        return self._sink_path

    # -- emission -----------------------------------------------------------

    def emit(self, kind: str, **fields) -> dict:
        """Record one event; correlation ids are filled from the ambient
        trace context unless the caller passed them explicitly."""
        event: dict = {"ts": round(time.time(), 6), "kind": kind}
        for key, value in tracing.current_correlation().items():
            event.setdefault(key, value)
        event.update(fields)
        with self._lock:
            self._ring.append(event)
            self.emitted += 1
            if self._sink is not None:
                try:
                    self._sink.write(
                        json.dumps(event, default=str, separators=(",", ":"))
                        + "\n"
                    )
                    self._sink.flush()
                except (OSError, ValueError):
                    # A full/broken/closed sink must never take the engine
                    # down; the ring still has the event.
                    self.dropped_writes += 1
        return event

    # -- reading ------------------------------------------------------------

    def tail(self, n: Optional[int] = None, kind: Optional[str] = None) -> list[dict]:
        """The most recent *n* events (all, when None), oldest first;
        optionally filtered by ``kind``."""
        with self._lock:
            events = list(self._ring)
        if kind is not None:
            events = [event for event in events if event.get("kind") == kind]
        if n is not None:
            events = events[-max(int(n), 0):]
        return events

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


#: The process-wide event log (mirrors ``metrics.REGISTRY``).
EVENTS = EventLog()


def emit(kind: str, **fields) -> Optional[dict]:
    """Emit into the global log (no-op returning None when disabled)."""
    if not ENABLED:
        return None
    return EVENTS.emit(kind, **fields)


def tail(n: Optional[int] = None, kind: Optional[str] = None) -> list[dict]:
    return EVENTS.tail(n, kind)


def clear() -> None:
    EVENTS.clear()


def attach_file(path: str) -> None:
    EVENTS.attach_file(path)


def detach_file() -> Optional[str]:
    return EVENTS.detach_file()
