"""Slow-query log: queries slower than a configurable threshold are kept
in a bounded ring for post-hoc inspection (shell command ``.slowlog``).

Disabled by default (``threshold = None``); recording is guarded by the
caller (:mod:`repro.query.engine`) so the fast path pays one attribute
check when the log is off.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Optional

__all__ = [
    "THRESHOLD",
    "set_threshold",
    "get_threshold",
    "record",
    "entries",
    "clear",
]

#: Seconds; ``None`` disables the log entirely.
THRESHOLD: Optional[float] = None

_ENTRIES: deque = deque(maxlen=128)


def set_threshold(seconds: Optional[float]) -> None:
    """Set the slow-query threshold in seconds (``None`` turns the log off)."""
    global THRESHOLD
    if seconds is not None and seconds < 0:
        raise ValueError("slow-query threshold must be >= 0")
    THRESHOLD = seconds


def get_threshold() -> Optional[float]:
    return THRESHOLD


def record(text: str, seconds: float, rows: int = 0) -> bool:
    """Record *text* if it crossed the threshold; returns True when kept."""
    if THRESHOLD is None or seconds < THRESHOLD:
        return False
    _ENTRIES.append(
        {
            "query": " ".join(text.split())[:500],
            "seconds": seconds,
            "rows": rows,
            "wall_time": time.time(),
        }
    )
    return True


def entries() -> list[dict]:
    """Slow queries recorded so far, oldest first."""
    return list(_ENTRIES)


def clear() -> None:
    _ENTRIES.clear()
