"""Slow-query log: queries slower than a configurable threshold are kept
in a bounded ring for post-hoc inspection (shell command ``.slowlog``,
wire op ``slowlog``).

Disabled by default (``threshold = None``); recording is guarded by the
caller (:mod:`repro.query.engine`) so the fast path pays one attribute
check when the log is off.

Entries carry the **correlation ids** of the request that produced them
(``trace_id``, ``session_id``, ``request_id`` — filled from the ambient
trace context when not passed explicitly), so a slow remote query links
straight back to its stitched client/server trace, and each recorded
entry is mirrored into the structured event log as a ``slow_query``
event.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Optional

from repro.obs import events as obs_events
from repro.obs import tracing

__all__ = [
    "THRESHOLD",
    "set_threshold",
    "get_threshold",
    "record",
    "entries",
    "clear",
]

#: Seconds; ``None`` disables the log entirely.
THRESHOLD: Optional[float] = None

_ENTRIES: deque = deque(maxlen=128)


def set_threshold(seconds: Optional[float]) -> None:
    """Set the slow-query threshold in seconds (``None`` turns the log off)."""
    global THRESHOLD
    if seconds is not None and seconds < 0:
        raise ValueError("slow-query threshold must be >= 0")
    THRESHOLD = seconds


def get_threshold() -> Optional[float]:
    return THRESHOLD


def record(
    text: str,
    seconds: float,
    rows: int = 0,
    phases: Optional[dict] = None,
    **correlation,
) -> bool:
    """Record *text* if it crossed the threshold; returns True when kept.

    ``phases`` maps phase name → seconds (queue/execute/serialize on the
    server, parse/optimize/execute in the engine); ``correlation`` may
    pass ``trace_id``/``session_id``/``request_id`` explicitly — anything
    not passed is filled from the ambient trace context.
    """
    if THRESHOLD is None or seconds < THRESHOLD:
        return False
    for key, value in tracing.current_correlation().items():
        correlation.setdefault(key, value)
    entry = {
        "query": " ".join(text.split())[:500],
        "seconds": seconds,
        "rows": rows,
        "wall_time": time.time(),
    }
    if phases:
        entry["phases"] = dict(phases)
    entry.update(correlation)
    _ENTRIES.append(entry)
    obs_events.emit(
        "slow_query",
        query=entry["query"],
        seconds=round(seconds, 6),
        rows=rows,
        **correlation,
    )
    return True


def entries() -> list[dict]:
    """Slow queries recorded so far, oldest first."""
    return list(_ENTRIES)


def clear() -> None:
    _ENTRIES.clear()
