"""Network fault shim: wire-frame send/receive with injectable failures.

The wire protocol (:mod:`repro.server.protocol`) routes every frame
boundary — client socket writes/reads and server stream writes/reads —
through these helpers, so an armed failpoint can make a *specific* frame
suffer a realistic network failure:

===============  ===========================================================
effect           behaviour at a frame boundary
===============  ===========================================================
drop_conn        sever the connection (RST-style) — the peer sees a reset
delay            stall the frame for ``DELAY_SECONDS`` before delivering it
truncate_frame   deliver a prefix of the frame, then sever the connection
                 (the peer sees EOF mid-frame → ``ProtocolError``)
duplicate_frame  deliver the frame twice (a retransmission bug / replayed
                 packet — receivers must be idempotent)
partition        refuse to touch the wire at all (host unreachable); keeps
                 refusing for as long as the trigger keeps firing
error            sever the connection, like ``drop_conn``
crash            raise :class:`SimulatedCrash` (torture-harness territory)
===============  ===========================================================

Read-side sites cannot truncate or duplicate what the peer sent, so
``truncate_frame``/``duplicate_frame`` degrade to ``drop_conn`` there.
Every helper falls through to the plain operation when the failpoint is
disarmed; sites additionally guard on ``fp.armed`` so the common path
costs one attribute load.
"""

from __future__ import annotations

import asyncio
import errno
import socket
import time
from typing import Optional

from repro.errors import SimulatedCrash
from repro.fault.registry import Failpoint

__all__ = [
    "DELAY_SECONDS",
    "send_bytes",
    "recv_gate",
    "send_bytes_async",
    "recv_gate_async",
]

#: How long the ``delay`` effect stalls a frame.  Short enough that armed
#: test suites stay fast, long enough to reorder against concurrent
#: traffic and to trip tight heartbeat timeouts when armed ``every:1``.
DELAY_SECONDS = 0.05


def _reset_error(site: str) -> ConnectionResetError:
    return ConnectionResetError(
        errno.ECONNRESET, f"Connection reset by peer (injected at {site})"
    )


def _partition_error(site: str) -> OSError:
    return OSError(
        errno.EHOSTUNREACH, f"No route to host (injected partition at {site})"
    )


# ---------------------------------------------------------------------------
# Blocking (client-side) paths
# ---------------------------------------------------------------------------


def send_bytes(sock: socket.socket, data: bytes,
               fp: Optional[Failpoint] = None) -> None:
    """``sock.sendall(data)`` with the armed effect of *fp* applied."""
    if fp is not None and fp.armed:
        effect = fp.fires()
        if effect == "crash":
            raise SimulatedCrash(fp.name)
        if effect == "partition":
            raise _partition_error(fp.name)
        if effect in ("drop_conn", "error"):
            try:
                sock.close()
            except OSError:
                pass
            raise _reset_error(fp.name)
        if effect == "truncate_frame":
            try:
                sock.sendall(data[: max(1, len(data) // 2)])
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
            raise _reset_error(fp.name)
        if effect == "delay":
            time.sleep(DELAY_SECONDS)
        elif effect == "duplicate_frame":
            sock.sendall(data)  # once here, once below
        # any other effect (torn/bitflip/enospc) degrades to drop_conn:
        elif effect is not None:
            try:
                sock.close()
            except OSError:
                pass
            raise _reset_error(fp.name)
    sock.sendall(data)


def recv_gate(sock: socket.socket, fp: Optional[Failpoint] = None) -> None:
    """Gate before a blocking frame read; read-side effects sever or stall
    the connection (one cannot truncate what the peer already sent)."""
    if fp is None or not fp.armed:
        return
    effect = fp.fires()
    if effect is None:
        return
    if effect == "crash":
        raise SimulatedCrash(fp.name)
    if effect == "partition":
        raise _partition_error(fp.name)
    if effect == "delay":
        time.sleep(DELAY_SECONDS)
        return
    try:
        sock.close()
    except OSError:
        pass
    raise _reset_error(fp.name)


# ---------------------------------------------------------------------------
# Async (server-side) paths
# ---------------------------------------------------------------------------


async def send_bytes_async(writer: asyncio.StreamWriter, data: bytes,
                           fp: Optional[Failpoint] = None) -> None:
    """``writer.write(data); await drain()`` with the armed effect applied."""
    if fp is not None and fp.armed:
        effect = fp.fires()
        if effect == "crash":
            raise SimulatedCrash(fp.name)
        if effect == "partition":
            raise _partition_error(fp.name)
        if effect in ("drop_conn", "error"):
            _abort_writer(writer)
            raise _reset_error(fp.name)
        if effect == "truncate_frame":
            writer.write(data[: max(1, len(data) // 2)])
            try:
                await writer.drain()
            except OSError:
                pass
            _close_writer(writer)
            raise _reset_error(fp.name)
        if effect == "delay":
            await asyncio.sleep(DELAY_SECONDS)
        elif effect == "duplicate_frame":
            writer.write(data)
        elif effect is not None:
            _abort_writer(writer)
            raise _reset_error(fp.name)
    writer.write(data)
    await writer.drain()


async def recv_gate_async(fp: Optional[Failpoint] = None) -> None:
    """Gate before an async frame read (the stream itself is severed by the
    caller catching the raised error)."""
    if fp is None or not fp.armed:
        return
    effect = fp.fires()
    if effect is None:
        return
    if effect == "crash":
        raise SimulatedCrash(fp.name)
    if effect == "partition":
        raise _partition_error(fp.name)
    if effect == "delay":
        await asyncio.sleep(DELAY_SECONDS)
        return
    raise _reset_error(fp.name)


def _abort_writer(writer: asyncio.StreamWriter) -> None:
    """RST-style teardown: unread buffered data is discarded, like a real
    connection reset (``close()`` would flush, which a reset does not)."""
    transport = writer.transport
    try:
        if transport is not None:
            transport.abort()
        else:
            writer.close()
    except Exception:
        pass


def _close_writer(writer: asyncio.StreamWriter) -> None:
    try:
        writer.close()
    except Exception:
        pass
