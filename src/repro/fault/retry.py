"""Retry with exponential backoff, for transient (often injected) faults.

A deliberately small helper: the polyglot workload uses it to model the
application-level retry loop a client would wrap around a store that can
suffer transient failures.  The sleep function is injectable so tests and
benchmarks never actually wait.

Two guardrails keep the loop honest under real contention:

* **Full jitter** (``jitter=True``) draws each delay uniformly from
  ``[0, base_delay * 2**attempt]`` instead of sleeping the deterministic
  cap — the AWS "full jitter" scheme that de-synchronizes a thundering
  herd of clients all retrying the same failed primary.  The RNG is
  seeded (``seed``) so a failing run is still reproducible.
* **``max_elapsed``** bounds the *total* wall-clock spent, attempts and
  sleeps included.  Without it, generous attempt counts can blow through
  query guardrail timeouts; with it, the loop gives up as soon as the
  next backoff sleep would cross the deadline.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Optional

from repro.errors import InjectedFaultError
from repro.obs import metrics as obs_metrics

__all__ = ["RetryExhaustedError", "retry_with_backoff"]


class RetryExhaustedError(InjectedFaultError):
    """Every attempt failed; carries the last underlying error."""

    code = "FAULT_RETRY_EXHAUSTED"

    def __init__(self, attempts: int, last_error: BaseException,
                 elapsed: float = 0.0):
        super().__init__(
            f"gave up after {attempts} attempt(s): {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error
        self.elapsed = elapsed


def retry_with_backoff(
    work: Callable[[int], Any],
    attempts: int = 3,
    retry_on: tuple = (InjectedFaultError, OSError),
    base_delay: float = 0.01,
    max_delay: float = 1.0,
    sleep: Optional[Callable[[float], None]] = time.sleep,
    jitter: bool = False,
    max_elapsed: Optional[float] = None,
    seed: Optional[int] = None,
    clock: Callable[[], float] = time.monotonic,
) -> Any:
    """Call ``work(attempt)`` (0-based attempt index) until it succeeds.

    Retries on *retry_on* exceptions with exponential backoff
    (``base_delay * 2**attempt``, capped at *max_delay*); any other
    exception propagates immediately.  With ``jitter=True`` each delay is
    instead drawn uniformly from ``[0, cap]`` (full jitter; deterministic
    under *seed*).  ``max_elapsed`` is a wall-clock deadline measured by
    *clock* from the first attempt: when a retry (including its backoff
    sleep) would start past the deadline, the loop gives up early.  After
    *attempts* failures — or a blown deadline — raises
    :class:`RetryExhaustedError` chaining the last error.  Passing the
    attempt index lets callers regenerate per-attempt state (e.g. a fresh
    idempotency key).  ``sleep=None`` disables the delay entirely.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    rng = random.Random(0 if seed is None else seed) if jitter else None
    started = clock()
    last_error: Optional[BaseException] = None
    made = 0
    for attempt in range(attempts):
        if attempt:
            delay = min(base_delay * (2 ** (attempt - 1)), max_delay)
            if rng is not None:
                delay = rng.uniform(0.0, delay)
            if max_elapsed is not None and (clock() - started) + delay > max_elapsed:
                break
            if sleep is not None and delay > 0.0:
                sleep(delay)
        made += 1
        try:
            result = work(attempt)
        except retry_on as error:
            last_error = error
            if obs_metrics.ENABLED and attempt + 1 < attempts:
                obs_metrics.counter("fault_retries_total").inc()
            continue
        return result
    raise RetryExhaustedError(made, last_error, elapsed=clock() - started)
