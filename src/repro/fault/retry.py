"""Retry with exponential backoff, for transient (often injected) faults.

A deliberately small helper: the polyglot workload uses it to model the
application-level retry loop a client would wrap around a store that can
suffer transient failures.  The sleep function is injectable so tests and
benchmarks never actually wait.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from repro.errors import InjectedFaultError
from repro.obs import metrics as obs_metrics

__all__ = ["RetryExhaustedError", "retry_with_backoff"]


class RetryExhaustedError(InjectedFaultError):
    """Every attempt failed; carries the last underlying error."""

    code = "FAULT_RETRY_EXHAUSTED"

    def __init__(self, attempts: int, last_error: BaseException):
        super().__init__(
            f"gave up after {attempts} attempt(s): {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


def retry_with_backoff(
    work: Callable[[int], Any],
    attempts: int = 3,
    retry_on: tuple = (InjectedFaultError, OSError),
    base_delay: float = 0.01,
    max_delay: float = 1.0,
    sleep: Optional[Callable[[float], None]] = time.sleep,
) -> Any:
    """Call ``work(attempt)`` (0-based attempt index) until it succeeds.

    Retries on *retry_on* exceptions with exponential backoff
    (``base_delay * 2**attempt``, capped at *max_delay*); any other
    exception propagates immediately.  After *attempts* failures raises
    :class:`RetryExhaustedError` chaining the last one.  Passing the attempt
    index lets callers regenerate per-attempt state (e.g. a fresh
    idempotency key).  ``sleep=None`` disables the delay entirely.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    last_error: Optional[BaseException] = None
    for attempt in range(attempts):
        if attempt and sleep is not None:
            sleep(min(base_delay * (2 ** (attempt - 1)), max_delay))
        try:
            result = work(attempt)
        except retry_on as error:
            last_error = error
            if obs_metrics.ENABLED and attempt + 1 < attempts:
                obs_metrics.counter("fault_retries_total").inc()
            continue
        return result
    raise RetryExhaustedError(attempts, last_error)
