"""Network chaos harness: replication + failover under injected faults.

The crash-torture harness (:mod:`repro.fault.harness`) proves one node's
durability.  This harness proves the *topology's*: it stands up a real
primary with N real read replicas (every node a full :class:`ReproServer`
on a loopback port), drives a seeded mixed workload through the
:class:`~repro.replication.router.ReplicaSet` router, injects network
faults at the wire-frame failpoints (``server.frame_write``,
``server.frame_read``, ``client.frame_write``, ``client.frame_read``)
with the effects from :data:`repro.fault.registry.NET_EFFECTS`, then
**kills the primary without warning** mid-stream and lets the router fail
over.  After the dust settles it checks four invariants:

1. **Committed writes survive** — every write the router confirmed before
   or after the kill is present on the post-failover primary.
2. **No duplicate apply** — no replica's applier ever noted divergence
   (a duplicated or re-delivered frame must be absorbed by the
   ``received_lsn`` filter, never applied twice).
3. **Read equivalence** — once caught up (``repl_wait`` to the new
   primary's watermark), every surviving replica's full table scan equals
   the primary's.
4. **Failover happened** — the router promoted a replica and kept
   serving; the workload saw typed errors only, never a hang.

Every run is reproducible from its seed: the workload, the fault
schedule, and the kill point all derive from one ``random.Random(seed)``.
Chaos events are recorded on the report (and can be dumped as JSON for CI
artifacts via :func:`ChaosReport.dump`).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import FailoverInProgressError, ReplicationError
from repro.fault.registry import FAILPOINTS
from repro.obs import events as obs_events

__all__ = ["ChaosReport", "chaos_run"]

#: Wire-level failpoint sites the scheduler may arm.
_NET_SITES = (
    "server.frame_write",
    "server.frame_read",
    "client.frame_write",
    "client.frame_read",
)

#: Effects safe to sprinkle while the workload runs.  ``partition`` is
#: excluded from the random schedule — an unhealable total partition
#: starves the run; the dedicated tests cover it deterministically.
_SCHEDULED_EFFECTS = ("drop_conn", "delay", "truncate_frame", "duplicate_frame")


@dataclass
class ChaosReport:
    """Outcome of one chaos run (one seed, one topology)."""

    seed: int
    replicas: int
    writes_attempted: int = 0
    writes_confirmed: int = 0
    reads_served: int = 0
    faults_armed: list = field(default_factory=list)
    failovers: int = 0
    killed_primary: Optional[str] = None
    promoted: Optional[str] = None
    events: list = field(default_factory=list)
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def note(self, kind: str, **detail) -> None:
        self.events.append({"ts": round(time.time(), 3), "kind": kind, **detail})

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"[{status}] seed={self.seed} replicas={self.replicas} "
            f"writes={self.writes_confirmed}/{self.writes_attempted} "
            f"reads={self.reads_served} faults={len(self.faults_armed)} "
            f"failovers={self.failovers} errors={self.errors or '-'}"
        )

    def dump(self, path: str) -> None:
        """Write the chaos event log (this run's schedule + the engine's
        own observability events) as JSON — the CI artifact on failure."""
        payload = {
            "seed": self.seed,
            "summary": self.summary(),
            "errors": self.errors,
            "faults_armed": self.faults_armed,
            "chaos_events": self.events,
            "engine_events": obs_events.tail(500),
        }
        with open(path, "w", encoding="utf-8") as sink:
            json.dump(payload, sink, indent=2, default=str)


def _make_db():
    from repro import MultiModelDB

    db = MultiModelDB()
    db.create_collection("kv")
    return db


def _disarm_net_sites() -> None:
    for site in _NET_SITES:
        FAILPOINTS.disarm(site)


def chaos_run(
    seed: int,
    replicas: int = 2,
    writes: int = 60,
    fault_rounds: int = 4,
    kill_primary: bool = True,
    ship_interval: float = 0.01,
    heartbeat_interval: float = 0.1,
    settle_timeout: float = 10.0,
) -> ChaosReport:
    """One chaos run: topology up, seeded workload + fault schedule,
    primary kill, failover, invariant checks.  Returns the report; it is
    the caller's job to assert :attr:`ChaosReport.ok`.

    The primary runs **semi-sync** (``ack_replication=1``): a write is
    "confirmed" only once at least one replica acknowledged it, which is
    the precondition for the committed-survive invariant — promotion
    picks the most-caught-up replica, and the acknowledged prefix is by
    construction at or below its watermark."""
    from repro.replication import ReplicaSet
    from repro.server.server import ReproServer

    rng = random.Random(seed)
    report = ChaosReport(seed=seed, replicas=replicas)
    servers: list = []
    router = None
    confirmed: dict = {}  # key -> value the router confirmed written

    #: Typed outcomes the workload absorbs and reports instead of dying:
    #: a refused semi-sync write or a mid-failover statement is the
    #: system being honest, not the harness failing.
    tolerated = (ReplicationError, FailoverInProgressError)

    def upsert(key: str, value: int) -> None:
        report.writes_attempted += 1
        router.query(
            "UPSERT {_key: @k} INSERT {_key: @k, v: @v} "
            "UPDATE {v: @v} INTO kv",
            {"k": key, "v": value},
        )
        confirmed[key] = value
        report.writes_confirmed += 1

    def read(level: str) -> None:
        rows = router.query(
            "FOR d IN kv RETURN d", consistency=level
        ).rows
        report.reads_served += 1
        # A read may trail the confirmed map (bounded waits only for the
        # router's last-seen LSN), but it must never invent keys.
        extra = {row["_key"] for row in rows} - set(confirmed)
        if extra:
            report.errors.append(
                f"{level} read returned keys never written: {sorted(extra)}"
            )

    try:
        primary = ReproServer(
            _make_db(), port=0,
            ship_interval=ship_interval,
            heartbeat_interval=heartbeat_interval,
            ack_replication=1,
            ack_timeout=settle_timeout,
        )
        primary.start_in_thread()
        servers.append(primary)
        for _ in range(replicas):
            node = ReproServer(
                _make_db(), port=0,
                replica_of=f"127.0.0.1:{primary.port}",
                ship_interval=ship_interval,
                heartbeat_interval=heartbeat_interval,
                ack_replication=1,  # applies if this node gets promoted
                ack_timeout=settle_timeout,
            )
            node.start_in_thread()
            servers.append(node)
        report.note(
            "topology_up",
            primary=primary.port,
            replicas=[node.port for node in servers[1:]],
        )
        router = ReplicaSet(
            ("127.0.0.1", primary.port),
            [("127.0.0.1", node.port) for node in servers[1:]],
            retries=5,
            retry_seed=seed,
            retry_max_elapsed=5.0,
        )

        # Semi-sync gates writes on replica acks, so the workload waits
        # for every replica to subscribe before the first statement.
        deadline = time.monotonic() + settle_timeout
        while time.monotonic() < deadline:
            status = router._client(router.primary_address)._call("repl_status")
            if len(status.get("subscribers") or ()) >= replicas:
                break
            time.sleep(0.02)
        else:
            report.errors.append(
                f"replicas never subscribed within {settle_timeout}s"
            )
            return report

        # -- phase 1: clean base load ------------------------------------
        base = writes // 3
        for index in range(base):
            upsert(f"k{rng.randint(0, 19)}", index)

        # -- phase 2: writes and reads under network fire ----------------
        mid = writes - base
        fault_at = sorted(
            rng.sample(range(mid), min(fault_rounds, mid))
        )
        for index in range(mid):
            if fault_at and index == fault_at[0]:
                fault_at.pop(0)
                site = rng.choice(_NET_SITES)
                effect = rng.choice(_SCHEDULED_EFFECTS)
                trigger = f"prob:{rng.choice((0.02, 0.05, 0.1))}"
                FAILPOINTS.arm(site, trigger, effect, seed=rng.randint(0, 2**31))
                report.faults_armed.append(
                    {"site": site, "trigger": trigger, "effect": effect}
                )
                report.note("fault_armed", site=site, trigger=trigger,
                            effect=effect)
            try:
                upsert(f"k{rng.randint(0, 19)}", base + index)
            except tolerated as error:
                report.note("write_refused", error=type(error).__name__)
            if rng.random() < 0.3:
                try:
                    read(rng.choice(("eventual", "bounded")))
                except tolerated as error:
                    report.note("read_refused", error=type(error).__name__)

        # The streaming layer survived the fire; disarm so the kill and
        # the settle phase measure failover, not residual packet loss.
        _disarm_net_sites()
        report.note("faults_disarmed")

        # -- phase 3: kill the current primary mid-stream ----------------
        if kill_primary:
            # Chaos in phase 2 may already have moved the crown; kill
            # whoever wears it *now* — that is the interesting victim.
            current = router.primary_address
            victim = next(
                (s for s in servers if s.port == current[1]), primary
            )
            report.killed_primary = f"127.0.0.1:{victim.port}"
            failovers_before = router.failovers
            victim.kill()
            report.note("primary_killed", address=report.killed_primary)
            for index in range(writes // 3):
                key, value = f"p{rng.randint(0, 9)}", index
                for attempt in range(8):
                    try:
                        upsert(key, value)
                        break
                    except tolerated as error:
                        report.note(
                            "write_refused", error=type(error).__name__,
                            attempt=attempt,
                        )
                        time.sleep(0.1)
                else:
                    report.errors.append(
                        f"write of {key!r} never succeeded after failover"
                    )
                    break
            report.failovers = router.failovers
            report.promoted = "%s:%s" % router.primary_address
            if router.failovers <= failovers_before:
                report.errors.append(
                    "primary was killed but the router never failed over"
                )
            if router.primary_address == current:
                report.errors.append(
                    "router still points at the killed primary"
                )

        # -- phase 4: settle and check invariants ------------------------
        primary_addr = router.primary_address
        primary_client = router._client(primary_addr)
        head = primary_client._call("repl_status")
        head_lsn = head.get("last_lsn", 0)
        truth = {
            row["_key"]: row["v"]
            for row in router.query(
                "FOR d IN kv RETURN d", consistency="strong"
            ).rows
        }
        missing = {
            key: value for key, value in confirmed.items()
            if truth.get(key) != value
        }
        if missing:
            report.errors.append(
                f"confirmed writes lost after failover: {missing!r}"
            )
        for addr in router.replica_addresses:
            label = f"{addr[0]}:{addr[1]}"
            if label == report.killed_primary:
                continue  # a corpse readopted via a stale NOT_PRIMARY hint
            client = router._client(addr)
            try:
                waited = client._call(
                    "repl_wait", lsn=head_lsn, timeout=settle_timeout
                )
                status = client._call("repl_status")
            except Exception as error:
                report.errors.append(
                    f"replica {label} unreachable at settle: "
                    f"{type(error).__name__}"
                )
                continue
            if status.get("diverged"):
                report.errors.append(
                    f"replica {label} noted apply divergence "
                    "(duplicate or misaligned record)"
                )
            if not waited.get("reached"):
                report.errors.append(
                    f"replica {label} never caught up to lsn {head_lsn} "
                    f"within {settle_timeout}s "
                    f"(applied {waited.get('applied_lsn')})"
                )
                continue
            replica_state = {
                row["_key"]: row["v"]
                for row in client.query("FOR d IN kv RETURN d").rows
            }
            if replica_state != truth:
                report.errors.append(
                    f"replica {label} state diverges from primary after "
                    f"catch-up: {len(replica_state)} rows vs {len(truth)}"
                )
        report.note("settled", primary=f"{primary_addr[0]}:{primary_addr[1]}",
                    rows=len(truth), last_lsn=head_lsn)
    except Exception as error:  # harness bug or unplanned explosion
        report.errors.append(
            f"chaos run blew up: {type(error).__name__}: {error}"
        )
    finally:
        _disarm_net_sites()
        if router is not None:
            router.close()
        for server in servers:
            try:
                if server._kill:
                    continue
                server.stop(timeout=5.0)
            except Exception:
                pass
    return report
