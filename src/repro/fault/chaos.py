"""Network chaos harness: replication + failover under injected faults.

The crash-torture harness (:mod:`repro.fault.harness`) proves one node's
durability.  This harness proves the *topology's*: it stands up a real
primary with N real read replicas (every node a full :class:`ReproServer`
on a loopback port), drives a seeded mixed workload through the
:class:`~repro.replication.router.ReplicaSet` router, injects network
faults at the wire-frame failpoints (``server.frame_write``,
``server.frame_read``, ``client.frame_write``, ``client.frame_read``)
with the effects from :data:`repro.fault.registry.NET_EFFECTS`, then
**kills the primary without warning** mid-stream and lets the router fail
over.  After the dust settles it checks four invariants:

1. **Committed writes survive** — every write the router confirmed before
   or after the kill is present on the post-failover primary.
2. **No duplicate apply** — no replica's applier ever noted divergence
   (a duplicated or re-delivered frame must be absorbed by the
   ``received_lsn`` filter, never applied twice).
3. **Read equivalence** — once caught up (``repl_wait`` to the new
   primary's watermark), every surviving replica's full table scan equals
   the primary's.
4. **Failover happened** — the router promoted a replica and kept
   serving; the workload saw typed errors only, never a hang.

Every run is reproducible from its seed: the workload, the fault
schedule, and the kill point all derive from one ``random.Random(seed)``.
Chaos events are recorded on the report (and can be dumped as JSON for CI
artifacts via :func:`ChaosReport.dump`).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import FailoverInProgressError, ReplicationError
from repro.fault.registry import FAILPOINTS
from repro.obs import events as obs_events

__all__ = ["ChaosReport", "ClusterChaosReport", "chaos_run", "cluster_chaos_run"]

#: Wire-level failpoint sites the scheduler may arm.
_NET_SITES = (
    "server.frame_write",
    "server.frame_read",
    "client.frame_write",
    "client.frame_read",
)

#: Effects safe to sprinkle while the workload runs.  ``partition`` is
#: excluded from the random schedule — an unhealable total partition
#: starves the run; the dedicated tests cover it deterministically.
_SCHEDULED_EFFECTS = ("drop_conn", "delay", "truncate_frame", "duplicate_frame")


@dataclass
class ChaosReport:
    """Outcome of one chaos run (one seed, one topology)."""

    seed: int
    replicas: int
    writes_attempted: int = 0
    writes_confirmed: int = 0
    reads_served: int = 0
    faults_armed: list = field(default_factory=list)
    failovers: int = 0
    killed_primary: Optional[str] = None
    promoted: Optional[str] = None
    events: list = field(default_factory=list)
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def note(self, kind: str, **detail) -> None:
        self.events.append({"ts": round(time.time(), 3), "kind": kind, **detail})

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"[{status}] seed={self.seed} replicas={self.replicas} "
            f"writes={self.writes_confirmed}/{self.writes_attempted} "
            f"reads={self.reads_served} faults={len(self.faults_armed)} "
            f"failovers={self.failovers} errors={self.errors or '-'}"
        )

    def dump(self, path: str) -> None:
        """Write the chaos event log (this run's schedule + the engine's
        own observability events) as JSON — the CI artifact on failure."""
        payload = {
            "seed": self.seed,
            "summary": self.summary(),
            "errors": self.errors,
            "faults_armed": self.faults_armed,
            "chaos_events": self.events,
            "engine_events": obs_events.tail(500),
        }
        with open(path, "w", encoding="utf-8") as sink:
            json.dump(payload, sink, indent=2, default=str)


def _make_db():
    from repro import MultiModelDB

    db = MultiModelDB()
    db.create_collection("kv")
    return db


@dataclass
class ClusterChaosReport(ChaosReport):
    """Outcome of one *cluster* chaos run (shard kill under scatter)."""

    shards: int = 0
    killed_shard: Optional[int] = None
    writes_refused: int = 0
    reads_refused: int = 0

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"[{status}] seed={self.seed} shards={self.shards} "
            f"replicas={self.replicas} "
            f"writes={self.writes_confirmed}/{self.writes_attempted} "
            f"(refused {self.writes_refused}) reads={self.reads_served} "
            f"(refused {self.reads_refused}) faults={len(self.faults_armed)} "
            f"killed_shard={self.killed_shard} errors={self.errors or '-'}"
        )


def _disarm_net_sites() -> None:
    for site in _NET_SITES:
        FAILPOINTS.disarm(site)


def chaos_run(
    seed: int,
    replicas: int = 2,
    writes: int = 60,
    fault_rounds: int = 4,
    kill_primary: bool = True,
    ship_interval: float = 0.01,
    heartbeat_interval: float = 0.1,
    settle_timeout: float = 10.0,
) -> ChaosReport:
    """One chaos run: topology up, seeded workload + fault schedule,
    primary kill, failover, invariant checks.  Returns the report; it is
    the caller's job to assert :attr:`ChaosReport.ok`.

    The primary runs **semi-sync** (``ack_replication=1``): a write is
    "confirmed" only once at least one replica acknowledged it, which is
    the precondition for the committed-survive invariant — promotion
    picks the most-caught-up replica, and the acknowledged prefix is by
    construction at or below its watermark."""
    from repro.replication import ReplicaSet
    from repro.server.server import ReproServer

    rng = random.Random(seed)
    report = ChaosReport(seed=seed, replicas=replicas)
    servers: list = []
    router = None
    confirmed: dict = {}  # key -> value the router confirmed written

    #: Typed outcomes the workload absorbs and reports instead of dying:
    #: a refused semi-sync write or a mid-failover statement is the
    #: system being honest, not the harness failing.
    tolerated = (ReplicationError, FailoverInProgressError)

    def upsert(key: str, value: int) -> None:
        report.writes_attempted += 1
        router.query(
            "UPSERT {_key: @k} INSERT {_key: @k, v: @v} "
            "UPDATE {v: @v} INTO kv",
            {"k": key, "v": value},
        )
        confirmed[key] = value
        report.writes_confirmed += 1

    def read(level: str) -> None:
        rows = router.query(
            "FOR d IN kv RETURN d", consistency=level
        ).rows
        report.reads_served += 1
        # A read may trail the confirmed map (bounded waits only for the
        # router's last-seen LSN), but it must never invent keys.
        extra = {row["_key"] for row in rows} - set(confirmed)
        if extra:
            report.errors.append(
                f"{level} read returned keys never written: {sorted(extra)}"
            )

    try:
        primary = ReproServer(
            _make_db(), port=0,
            ship_interval=ship_interval,
            heartbeat_interval=heartbeat_interval,
            ack_replication=1,
            ack_timeout=settle_timeout,
        )
        primary.start_in_thread()
        servers.append(primary)
        for _ in range(replicas):
            node = ReproServer(
                _make_db(), port=0,
                replica_of=f"127.0.0.1:{primary.port}",
                ship_interval=ship_interval,
                heartbeat_interval=heartbeat_interval,
                ack_replication=1,  # applies if this node gets promoted
                ack_timeout=settle_timeout,
            )
            node.start_in_thread()
            servers.append(node)
        report.note(
            "topology_up",
            primary=primary.port,
            replicas=[node.port for node in servers[1:]],
        )
        router = ReplicaSet(
            ("127.0.0.1", primary.port),
            [("127.0.0.1", node.port) for node in servers[1:]],
            retries=5,
            retry_seed=seed,
            retry_max_elapsed=5.0,
        )

        # Semi-sync gates writes on replica acks, so the workload waits
        # for every replica to subscribe before the first statement.
        deadline = time.monotonic() + settle_timeout
        while time.monotonic() < deadline:
            status = router._client(router.primary_address)._call("repl_status")
            if len(status.get("subscribers") or ()) >= replicas:
                break
            time.sleep(0.02)
        else:
            report.errors.append(
                f"replicas never subscribed within {settle_timeout}s"
            )
            return report

        # -- phase 1: clean base load ------------------------------------
        base = writes // 3
        for index in range(base):
            upsert(f"k{rng.randint(0, 19)}", index)

        # -- phase 2: writes and reads under network fire ----------------
        mid = writes - base
        fault_at = sorted(
            rng.sample(range(mid), min(fault_rounds, mid))
        )
        for index in range(mid):
            if fault_at and index == fault_at[0]:
                fault_at.pop(0)
                site = rng.choice(_NET_SITES)
                effect = rng.choice(_SCHEDULED_EFFECTS)
                trigger = f"prob:{rng.choice((0.02, 0.05, 0.1))}"
                FAILPOINTS.arm(site, trigger, effect, seed=rng.randint(0, 2**31))
                report.faults_armed.append(
                    {"site": site, "trigger": trigger, "effect": effect}
                )
                report.note("fault_armed", site=site, trigger=trigger,
                            effect=effect)
            try:
                upsert(f"k{rng.randint(0, 19)}", base + index)
            except tolerated as error:
                report.note("write_refused", error=type(error).__name__)
            if rng.random() < 0.3:
                try:
                    read(rng.choice(("eventual", "bounded")))
                except tolerated as error:
                    report.note("read_refused", error=type(error).__name__)

        # The streaming layer survived the fire; disarm so the kill and
        # the settle phase measure failover, not residual packet loss.
        _disarm_net_sites()
        report.note("faults_disarmed")

        # -- phase 3: kill the current primary mid-stream ----------------
        if kill_primary:
            # Chaos in phase 2 may already have moved the crown; kill
            # whoever wears it *now* — that is the interesting victim.
            current = router.primary_address
            victim = next(
                (s for s in servers if s.port == current[1]), primary
            )
            report.killed_primary = f"127.0.0.1:{victim.port}"
            failovers_before = router.failovers
            victim.kill()
            report.note("primary_killed", address=report.killed_primary)
            for index in range(writes // 3):
                key, value = f"p{rng.randint(0, 9)}", index
                for attempt in range(8):
                    try:
                        upsert(key, value)
                        break
                    except tolerated as error:
                        report.note(
                            "write_refused", error=type(error).__name__,
                            attempt=attempt,
                        )
                        time.sleep(0.1)
                else:
                    report.errors.append(
                        f"write of {key!r} never succeeded after failover"
                    )
                    break
            report.failovers = router.failovers
            report.promoted = "%s:%s" % router.primary_address
            if router.failovers <= failovers_before:
                report.errors.append(
                    "primary was killed but the router never failed over"
                )
            if router.primary_address == current:
                report.errors.append(
                    "router still points at the killed primary"
                )

        # -- phase 4: settle and check invariants ------------------------
        primary_addr = router.primary_address
        primary_client = router._client(primary_addr)
        head = primary_client._call("repl_status")
        head_lsn = head.get("last_lsn", 0)
        truth = {
            row["_key"]: row["v"]
            for row in router.query(
                "FOR d IN kv RETURN d", consistency="strong"
            ).rows
        }
        missing = {
            key: value for key, value in confirmed.items()
            if truth.get(key) != value
        }
        if missing:
            report.errors.append(
                f"confirmed writes lost after failover: {missing!r}"
            )
        for addr in router.replica_addresses:
            label = f"{addr[0]}:{addr[1]}"
            if label == report.killed_primary:
                continue  # a corpse readopted via a stale NOT_PRIMARY hint
            client = router._client(addr)
            try:
                waited = client._call(
                    "repl_wait", lsn=head_lsn, timeout=settle_timeout
                )
                status = client._call("repl_status")
            except Exception as error:
                report.errors.append(
                    f"replica {label} unreachable at settle: "
                    f"{type(error).__name__}"
                )
                continue
            if status.get("diverged"):
                report.errors.append(
                    f"replica {label} noted apply divergence "
                    "(duplicate or misaligned record)"
                )
            if not waited.get("reached"):
                report.errors.append(
                    f"replica {label} never caught up to lsn {head_lsn} "
                    f"within {settle_timeout}s "
                    f"(applied {waited.get('applied_lsn')})"
                )
                continue
            replica_state = {
                row["_key"]: row["v"]
                for row in client.query("FOR d IN kv RETURN d").rows
            }
            if replica_state != truth:
                report.errors.append(
                    f"replica {label} state diverges from primary after "
                    f"catch-up: {len(replica_state)} rows vs {len(truth)}"
                )
        report.note("settled", primary=f"{primary_addr[0]}:{primary_addr[1]}",
                    rows=len(truth), last_lsn=head_lsn)
    except Exception as error:  # harness bug or unplanned explosion
        report.errors.append(
            f"chaos run blew up: {type(error).__name__}: {error}"
        )
    finally:
        _disarm_net_sites()
        if router is not None:
            router.close()
        for server in servers:
            try:
                if server._kill:
                    continue
                server.stop(timeout=5.0)
            except Exception:
                pass
    return report


def cluster_chaos_run(
    seed: int,
    shards: int = 3,
    writes: int = 60,
    fault_rounds: int = 3,
    kill_shard: bool = True,
    replica_for: Optional[int] = None,
    ship_interval: float = 0.01,
    heartbeat_interval: float = 0.1,
    settle_timeout: float = 10.0,
) -> ClusterChaosReport:
    """One *cluster* chaos run: N shard servers, a seeded routed-write +
    scatter-read workload through :class:`~repro.cluster.ClusterClient`
    under network fire, then **one shard killed without warning**.

    The workload collection is hash-partitioned **by ``_key``**, so every
    UPSERT routes to exactly one shard — a write either commits whole on
    its owner or fails whole, which is what makes the invariants sharp:

    1. **No silent partial results** — once a shard is down, a scatter
       read raises a typed error (:class:`ShardUnavailableError` /
       :class:`FailoverInProgressError`); it never returns the surviving
       shards' rows as if they were the whole answer.
    2. **Surviving shards keep serving** — writes owned by live shards
       succeed; only writes owned by the dead shard are refused.
    3. **State = confirmed writes** — each surviving shard holds exactly
       the confirmed values it owns, and never a key that was never
       written.
    4. **Replica failover under the coordinator** — with ``replica_for``
       set, the killed shard is the replicated one: its replica set
       promotes, and scatter reads recover without a map change.
    """
    from repro.client.client import ReproClient
    from repro.cluster.client import ClusterClient
    from repro.cluster.shardmap import ShardMap, StorePlacement
    from repro.errors import (
        ClusterError,
        ShardUnavailableError,
    )
    from repro.server.server import ReproServer

    rng = random.Random(seed)
    report = ClusterChaosReport(
        seed=seed,
        replicas=1 if replica_for is not None else 0,
        shards=shards,
    )
    servers: list = []
    replica_server = None
    client = None
    confirmed: dict = {}   # key -> value the coordinator confirmed written
    attempted: set = set()  # every key ever sent, confirmed or not

    tolerated = (
        ShardUnavailableError,
        ClusterError,
        FailoverInProgressError,
        ReplicationError,
    )

    def upsert(key: str, value: int) -> None:
        report.writes_attempted += 1
        attempted.add(key)
        try:
            client.query(
                "UPSERT {_key: @k} INSERT {_key: @k, v: @v} "
                "UPDATE {v: @v} INTO kv",
                {"k": key, "v": value},
            )
        except tolerated:
            # The write may or may not have applied before the fault; we
            # no longer know this key's value, so it leaves the oracle.
            confirmed.pop(key, None)
            report.writes_refused += 1
            raise
        confirmed[key] = value
        report.writes_confirmed += 1

    def scatter_read() -> list:
        rows = client.query("FOR d IN kv RETURN d").rows
        report.reads_served += 1
        extra = {row["_key"] for row in rows} - attempted
        if extra:
            report.errors.append(
                f"scatter read returned keys never written: {sorted(extra)}"
            )
        return rows

    try:
        for shard_id in range(shards):
            options = {}
            if replica_for == shard_id:
                # Semi-sync on the replicated shard: a confirmed write is
                # on the replica by construction, so promotion loses
                # nothing the oracle remembers.
                options = {"ack_replication": 1, "ack_timeout": settle_timeout}
            server = ReproServer(
                _make_db(), port=0, shard_id=shard_id,
                ship_interval=ship_interval,
                heartbeat_interval=heartbeat_interval,
                **options,
            )
            server.start_in_thread()
            servers.append(server)
        replicas: dict = {}
        if replica_for is not None:
            replica_server = ReproServer(
                _make_db(), port=0, shard_id=replica_for,
                replica_of=f"127.0.0.1:{servers[replica_for].port}",
                ship_interval=ship_interval,
                heartbeat_interval=heartbeat_interval,
            )
            replica_server.start_in_thread()
            servers.append(replica_server)
            replicas[replica_for] = [
                f"127.0.0.1:{replica_server.port}"
            ]
        shard_map = ShardMap(
            [
                {
                    "shard_id": shard_id,
                    "primary": f"127.0.0.1:{servers[shard_id].port}",
                    "replicas": replicas.get(shard_id, []),
                }
                for shard_id in range(shards)
            ],
            {"kv": StorePlacement("hash", "_key", "_key")},
        )
        for server in servers:
            server.shard_map = shard_map
        report.note(
            "topology_up",
            shards=[server.port for server in servers[:shards]],
            replica=replica_server.port if replica_server else None,
        )
        client = ClusterClient(shard_map)
        client.connect()

        if replica_for is not None:
            # Semi-sync gates the replicated shard's writes on its
            # replica's ack; wait for the subscription before phase 1.
            with ReproClient(
                "127.0.0.1", servers[replica_for].port
            ) as probe:
                deadline = time.monotonic() + settle_timeout
                while time.monotonic() < deadline:
                    status = probe._call("repl_status")
                    if status.get("subscribers"):
                        break
                    time.sleep(0.02)
                else:
                    report.errors.append(
                        f"shard {replica_for}'s replica never subscribed "
                        f"within {settle_timeout}s"
                    )
                    return report

        # -- phase 1: clean base load ------------------------------------
        base = writes // 3
        for index in range(base):
            upsert(f"k{rng.randint(0, 29)}", index)
        scatter_read()

        # -- phase 2: routed writes + scatter reads under network fire ---
        mid = writes - base
        fault_at = sorted(rng.sample(range(mid), min(fault_rounds, mid)))
        for index in range(mid):
            if fault_at and index == fault_at[0]:
                fault_at.pop(0)
                site = rng.choice(_NET_SITES)
                effect = rng.choice(_SCHEDULED_EFFECTS)
                trigger = f"prob:{rng.choice((0.02, 0.05))}"
                FAILPOINTS.arm(site, trigger, effect, seed=rng.randint(0, 2**31))
                report.faults_armed.append(
                    {"site": site, "trigger": trigger, "effect": effect}
                )
                report.note("fault_armed", site=site, trigger=trigger,
                            effect=effect)
            try:
                upsert(f"k{rng.randint(0, 29)}", base + index)
            except tolerated as error:
                report.note("write_refused", error=type(error).__name__)
            if rng.random() < 0.3:
                try:
                    scatter_read()
                except tolerated as error:
                    report.reads_refused += 1
                    report.note("read_refused", error=type(error).__name__)

        _disarm_net_sites()
        report.note("faults_disarmed")

        # -- phase 3: kill one shard's primary mid-stream ----------------
        if kill_shard:
            victim = (
                replica_for if replica_for is not None
                else rng.randrange(shards)
            )
            report.killed_shard = victim
            report.killed_primary = f"127.0.0.1:{servers[victim].port}"
            servers[victim].kill()
            report.note("shard_killed", shard=victim,
                        address=report.killed_primary)

            dead = {victim} if replica_for is None else set()
            for index in range(writes // 3):
                key = f"p{rng.randint(0, 19)}"
                owner = shard_map.owner("kv", key)
                if owner in dead:
                    # Invariant 2: the dead shard's keyspace is refused
                    # with a typed error — quickly, not after a hang.
                    try:
                        upsert(key, index)
                    except tolerated as error:
                        report.note("dead_shard_write_refused", key=key,
                                    error=type(error).__name__)
                    else:
                        report.errors.append(
                            f"write of {key!r} (owned by dead shard "
                            f"{owner}) was confirmed"
                        )
                    continue
                for attempt in range(8):
                    try:
                        upsert(key, index)
                        break
                    except tolerated as error:
                        report.note(
                            "write_refused", key=key, attempt=attempt,
                            error=type(error).__name__,
                        )
                        time.sleep(0.1)
                else:
                    report.errors.append(
                        f"write of {key!r} (owned by live shard {owner}) "
                        "never succeeded after the kill"
                    )
                    break

            if replica_for is not None:
                # Invariant 4: the replica set under the coordinator
                # promotes, and scatter reads recover on the same map.
                deadline = time.monotonic() + settle_timeout
                recovered = False
                while time.monotonic() < deadline:
                    try:
                        scatter_read()
                        recovered = True
                        break
                    except tolerated as error:
                        report.reads_refused += 1
                        report.note("read_refused",
                                    error=type(error).__name__)
                        time.sleep(0.2)
                if not recovered:
                    report.errors.append(
                        "scatter reads never recovered after the "
                        "replicated shard's primary was killed"
                    )
                router = client._replica_set(victim)
                report.failovers = router.failovers
                report.promoted = "%s:%s" % router.primary_address
                if not router.failovers:
                    report.errors.append(
                        "shard primary was killed but its replica set "
                        "never failed over"
                    )
            else:
                # Invariant 1: no silent partials — the scatter must
                # raise, not answer with a subset of the shards.
                try:
                    rows = client.query("FOR d IN kv RETURN d").rows
                except tolerated as error:
                    report.reads_refused += 1
                    report.note("post_kill_read_refused",
                                error=type(error).__name__)
                else:
                    report.errors.append(
                        "scatter read over a dead shard returned "
                        f"{len(rows)} rows instead of a typed error"
                    )

        # -- phase 4: settle and check invariant 3 -----------------------
        for shard_id in range(shards):
            if shard_id == report.killed_shard and replica_for is None:
                continue
            expected = {
                key: value for key, value in confirmed.items()
                if shard_map.owner("kv", key) == shard_id
            }
            try:
                if shard_id == report.killed_shard:
                    # Read through the promoted replica.
                    rows = client._replica_set(shard_id).query(
                        "FOR d IN kv RETURN d"
                    ).fetch_all()
                else:
                    with ReproClient(
                        "127.0.0.1", servers[shard_id].port
                    ) as direct:
                        rows = direct.query("FOR d IN kv RETURN d").rows
            except Exception as error:
                report.errors.append(
                    f"shard {shard_id} unreachable at settle: "
                    f"{type(error).__name__}"
                )
                continue
            state = {row["_key"]: row["v"] for row in rows}
            lost = {
                key: value for key, value in expected.items()
                if state.get(key) != value
            }
            if lost:
                report.errors.append(
                    f"shard {shard_id} lost confirmed writes: {lost!r}"
                )
            misrouted = {
                key for key in state
                if shard_map.owner("kv", key) != shard_id
            }
            if misrouted:
                report.errors.append(
                    f"shard {shard_id} holds keys it does not own: "
                    f"{sorted(misrouted)}"
                )
            invented = set(state) - attempted
            if invented:
                report.errors.append(
                    f"shard {shard_id} holds keys never written: "
                    f"{sorted(invented)}"
                )
            report.note("shard_settled", shard=shard_id, rows=len(state),
                        expected=len(expected))
    except Exception as error:  # harness bug or unplanned explosion
        report.errors.append(
            f"cluster chaos run blew up: {type(error).__name__}: {error}"
        )
    finally:
        _disarm_net_sites()
        if client is not None:
            client.close()
        for server in servers:
            try:
                if server._kill:
                    continue
                server.stop(timeout=5.0)
            except Exception:
                pass
    return report
