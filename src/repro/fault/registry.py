"""Failpoint registry: named fault-injection sites with deterministic triggers.

The tutorial's pitch for multi-model engines is that *one* system implements
fault tolerance for every data model — which is only credible if the one
recovery path is exercised under injected failures.  This module makes
failure a first-class input: engine code declares **sites** (cheap,
always-present hooks on the durability and commit paths), and tests, the
torture harness or the shell **arm** a site with a trigger and an effect.

Design (modelled on FreeBSD failpoints / TiKV ``fail-rs``, without the FFI):

* **Sites are static.**  Modules declare them at import time with
  :meth:`FailpointRegistry.register`, so the harness can enumerate every
  site in the engine without executing anything.
* **Disarmed sites are near-free.**  ``register`` returns a handle whose
  ``armed`` attribute the site guards on — one attribute load per hit,
  exactly like the metrics ``ENABLED`` flag.
* **Triggers are deterministic.**  ``once``, ``after:K`` (fire on the K-th
  hit), ``every:N`` and ``prob:P`` (seeded RNG) — a failing torture run is
  reproducible from ``(site, trigger, seed)`` alone.
* **Effects are interpreted by the site.**  Plain code sites raise
  (``crash`` → :class:`SimulatedCrash`, ``error`` →
  :class:`InjectedFaultError`); the I/O shim (:mod:`repro.fault.io`)
  additionally understands ``torn``, ``bitflip`` and ``enospc``.

Every fire is counted in ``fault_injections_total{site=…, effect=…}``.
"""

from __future__ import annotations

import random
import threading
from typing import Iterator, Optional

from repro.errors import InjectedFaultError, SimulatedCrash
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics

__all__ = [
    "EFFECTS",
    "IO_EFFECTS",
    "NET_EFFECTS",
    "Failpoint",
    "FailpointRegistry",
    "FAILPOINTS",
    "register",
    "arm",
    "disarm",
    "disarm_all",
]

#: Effects a failpoint can be armed with.  ``crash``/``error`` work at any
#: site; the I/O effects only make sense at sites routed through
#: :mod:`repro.fault.io` and the network effects at sites routed through
#: :mod:`repro.fault.net` (elsewhere they degrade to ``error``).
IO_EFFECTS = ("torn", "bitflip", "enospc")

#: Network-layer effects, interpreted by the wire-frame shim
#: (:mod:`repro.fault.net`): sever the connection, stall it, deliver a
#: truncated or duplicated frame, or behave like a network partition.
NET_EFFECTS = ("drop_conn", "delay", "truncate_frame", "duplicate_frame",
               "partition")

EFFECTS = ("crash", "error") + IO_EFFECTS + NET_EFFECTS


class Failpoint:
    """One named injection site.

    The hot-path contract: sites guard on ``fp.armed`` (a plain attribute)
    and only call :meth:`fires` / :meth:`check` when it is True, so a
    disarmed site costs one attribute load.
    """

    __slots__ = (
        "name",
        "description",
        "armed",
        "mode",
        "param",
        "effect",
        "seed",
        "hits",
        "fires_count",
        "_rng",
    )

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.armed = False
        self.mode = "off"
        self.param = 0.0
        self.effect = "crash"
        self.seed: Optional[int] = None
        self.hits = 0
        self.fires_count = 0
        self._rng: Optional[random.Random] = None

    # -- arming ------------------------------------------------------------

    def arm(self, trigger: str, effect: str = "crash", seed: Optional[int] = None) -> None:
        """Arm with a trigger spec: ``once`` | ``after:K`` | ``every:N`` |
        ``prob:P``.  ``seed`` makes ``prob`` deterministic (defaults to 0)."""
        mode, _, raw = trigger.partition(":")
        mode = mode.strip().lower()
        if mode == "once":
            param = 1.0
        elif mode in ("after", "every"):
            try:
                param = float(int(raw))
            except ValueError:
                raise ValueError(f"trigger {trigger!r}: expected an integer after ':'")
            if param < 1:
                raise ValueError(f"trigger {trigger!r}: count must be >= 1")
        elif mode == "prob":
            try:
                param = float(raw)
            except ValueError:
                raise ValueError(f"trigger {trigger!r}: expected a float after ':'")
            if not 0.0 <= param <= 1.0:
                raise ValueError(f"trigger {trigger!r}: probability must be in [0, 1]")
        else:
            raise ValueError(
                f"unknown trigger {trigger!r} (use once, after:K, every:N, prob:P)"
            )
        if effect not in EFFECTS:
            raise ValueError(f"unknown effect {effect!r} (use one of {', '.join(EFFECTS)})")
        self.mode = mode
        self.param = param
        self.effect = effect
        self.seed = seed
        self._rng = random.Random(0 if seed is None else seed)
        self.hits = 0
        self.fires_count = 0
        self.armed = True

    def disarm(self) -> None:
        self.armed = False
        self.mode = "off"

    # -- evaluation --------------------------------------------------------

    def fires(self) -> Optional[str]:
        """Record one hit; returns the armed effect when the trigger fires,
        else None.  Call only when ``armed`` (sites guard on it)."""
        if not self.armed:
            return None
        self.hits += 1
        mode = self.mode
        if mode == "once":
            fire = self.hits == 1
            if fire:
                self.armed = False  # one-shot: disarm after firing
        elif mode == "after":
            fire = self.hits == int(self.param)
            if fire:
                self.armed = False
        elif mode == "every":
            fire = self.hits % int(self.param) == 0
        else:  # prob
            fire = self._rng.random() < self.param
        if not fire:
            return None
        self.fires_count += 1
        if obs_metrics.ENABLED:
            obs_metrics.counter(
                "fault_injections_total", site=self.name, effect=self.effect
            ).inc()
        obs_events.emit(
            "fault_injected",
            site=self.name,
            effect=self.effect,
            hit=self.hits,
            fire=self.fires_count,
        )
        return self.effect

    def check(self) -> None:
        """Plain-code site hook: raise the armed exception effect when the
        trigger fires.  Non-exception effects (``torn``/``bitflip``/…)
        degrade to :class:`InjectedFaultError` outside the I/O shim."""
        if not self.armed:
            return
        effect = self.fires()
        if effect is None:
            return
        if effect == "crash":
            raise SimulatedCrash(self.name)
        raise InjectedFaultError(
            f"injected {effect!r} fault at failpoint {self.name!r}"
        )

    def state(self) -> dict:
        """Introspection dict (the shell's ``.faults`` listing)."""
        if self.armed or self.mode != "off":
            trigger = self.mode
            if self.mode in ("after", "every"):
                trigger = f"{self.mode}:{int(self.param)}"
            elif self.mode == "prob":
                trigger = f"prob:{self.param:g}"
        else:
            trigger = "off"
        return {
            "site": self.name,
            "description": self.description,
            "armed": self.armed,
            "trigger": trigger if self.armed else "off",
            "effect": self.effect if self.armed else None,
            "seed": self.seed if self.armed else None,
            "hits": self.hits,
            "fires": self.fires_count,
        }


class FailpointRegistry:
    """Process-wide catalog of failpoints, keyed by site name."""

    def __init__(self):
        self._sites: dict[str, Failpoint] = {}
        self._lock = threading.Lock()

    def register(self, name: str, description: str = "") -> Failpoint:
        """Get-or-create the site (idempotent: modules call this at import
        time; the first registration's description wins)."""
        site = self._sites.get(name)
        if site is None:
            with self._lock:
                site = self._sites.get(name)
                if site is None:
                    site = Failpoint(name, description)
                    self._sites[name] = site
        return site

    def get(self, name: str) -> Failpoint:
        site = self._sites.get(name)
        if site is None:
            raise KeyError(f"no failpoint named {name!r}")
        return site

    def arm(
        self,
        name: str,
        trigger: str,
        effect: str = "crash",
        seed: Optional[int] = None,
    ) -> Failpoint:
        site = self.get(name)
        site.arm(trigger, effect, seed)
        return site

    def disarm(self, name: str) -> None:
        self.get(name).disarm()

    def disarm_all(self) -> None:
        for site in self._sites.values():
            site.disarm()

    def names(self, prefix: str = "") -> list[str]:
        return sorted(
            name for name in self._sites if name.startswith(prefix)
        )

    def states(self) -> list[dict]:
        return [self._sites[name].state() for name in self.names()]

    def armed(self) -> list[str]:
        return [name for name in self.names() if self._sites[name].armed]

    def __iter__(self) -> Iterator[Failpoint]:
        return iter(self._sites.values())

    def __len__(self) -> int:
        return len(self._sites)


#: The engine-wide registry: every site in the process registers here.
FAILPOINTS = FailpointRegistry()


def register(name: str, description: str = "") -> Failpoint:
    return FAILPOINTS.register(name, description)


def arm(name: str, trigger: str, effect: str = "crash", seed: Optional[int] = None) -> Failpoint:
    return FAILPOINTS.arm(name, trigger, effect, seed)


def disarm(name: str) -> None:
    FAILPOINTS.disarm(name)


def disarm_all() -> None:
    FAILPOINTS.disarm_all()
