"""Fault injection: failpoints, faulty I/O, retries, and the torture harness.

Public surface:

* :mod:`repro.fault.registry` — named failpoint sites with deterministic
  triggers (``once`` / ``after:K`` / ``every:N`` / ``prob:P``) and effects
  (``crash`` / ``error`` / ``torn`` / ``bitflip`` / ``enospc``);
* :mod:`repro.fault.io` — write/flush/fsync/rename shims the WAL and
  checkpoint writer route through, so injected faults hit real byte sinks;
* :mod:`repro.fault.retry` — retry-with-backoff for transient faults;
* :mod:`repro.fault.harness` — the crash-recovery torture driver.

See ``docs/ROBUSTNESS.md`` for the site catalog and the fault matrix.
"""

from repro.errors import InjectedFaultError, SimulatedCrash
from repro.fault.registry import (
    EFFECTS,
    FAILPOINTS,
    Failpoint,
    FailpointRegistry,
    arm,
    disarm,
    disarm_all,
    register,
)
from repro.fault.retry import RetryExhaustedError, retry_with_backoff

__all__ = [
    "EFFECTS",
    "FAILPOINTS",
    "Failpoint",
    "FailpointRegistry",
    "InjectedFaultError",
    "RetryExhaustedError",
    "SimulatedCrash",
    "arm",
    "disarm",
    "disarm_all",
    "register",
    "retry_with_backoff",
]
