"""Crash-recovery torture harness.

The driver runs a seeded, randomized multi-namespace transactional workload
against the real engine stack (central log → WAL shadow → row view), with
one failpoint site armed to crash partway through.  When the simulated
crash fires, every in-memory object is discarded — exactly the substitution
documented in DESIGN.md §2 — and the engine is recovered from the on-disk
WAL (and, independently, from checkpoint + WAL tail).  Three invariants are
then checked:

1. **Committed data survives** — every write whose COMMIT returned before
   the crash is present after recovery.
2. **Uncommitted tails vanish** — a transaction whose COMMIT never returned
   is either fully absent or (when its COMMIT record reached the WAL before
   the crash) fully present: never partial.
3. **Checkpoint + WAL-tail replay ≡ full WAL replay** — the accelerated
   recovery path reconstructs exactly the same state.

Every run is reproducible from ``(site, trigger, effect, seed)``.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SerializationError, SimulatedCrash
from repro.fault.registry import FAILPOINTS
from repro.obs import metrics as obs_metrics
from repro.storage.checkpoint import recover_from_checkpoint, write_checkpoint
from repro.storage.log import CentralLog, LogOp
from repro.storage.views import RowView
from repro.storage.wal import WriteAheadLog, replay_into
from repro.txn.manager import TransactionManager

# Importing these modules is what registers their failpoint sites, so
# enumerate-and-torture sees the whole durability surface even if the
# caller never touched the engine before.
import repro.polyglot.integrator  # noqa: F401  (polyglot sites)

__all__ = ["TortureReport", "torture_run", "torture_all_sites", "DEFAULT_SITE_PREFIXES"]

#: The sites whose crash-recovery behaviour the harness can meaningfully
#: exercise (polyglot sites model a *different* failure — cross-store
#: inconsistency — and have their own workload).
DEFAULT_SITE_PREFIXES = ("wal.", "log.", "txn.", "checkpoint.")

_NAMESPACES = ("rel:customers", "doc:orders", "kv:cart")

_TORTURE_RUNS = obs_metrics.counter("torture_runs_total")


@dataclass
class TortureReport:
    """Outcome of one torture run (one site, one seed)."""

    site: str
    seed: int
    trigger: str
    effect: str
    crashed: bool = False
    ops_attempted: int = 0
    committed_txns: int = 0
    aborted_txns: int = 0
    checkpoint_lsn: Optional[int] = None
    recovered_records: int = 0
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def summary(self) -> str:
        status = "ok" if self.ok else "FAIL"
        crash = "crashed" if self.crashed else "no-crash"
        return (
            f"[{status}] site={self.site} seed={self.seed} "
            f"trigger={self.trigger} effect={self.effect} {crash} "
            f"committed={self.committed_txns} errors={self.errors or '-'}"
        )


def _recovered_state(wal_path: str) -> dict:
    """Full-WAL redo recovery → {namespace: {key: value}}."""
    log = CentralLog()
    replay_into(wal_path, log)
    rows = RowView(log, subscribe=False)
    rows.catch_up()
    return _view_state(rows)


def _checkpoint_state(checkpoint_path: str, wal_path: str) -> dict:
    """Checkpoint + WAL-tail recovery → {namespace: {key: value}}."""
    log = CentralLog()
    recover_from_checkpoint(checkpoint_path, wal_path, log)
    rows = RowView(log, subscribe=False)
    rows.catch_up()
    return _view_state(rows)


def _view_state(rows: RowView) -> dict:
    state = {}
    for namespace in rows.namespaces():
        pairs = dict(rows.scan(namespace))
        if pairs:
            state[namespace] = pairs
    return state


def _apply_writes(state: dict, writes: list) -> dict:
    """Oracle + one transaction's writes, applied atomically."""
    merged = {namespace: dict(pairs) for namespace, pairs in state.items()}
    for namespace, key, value, is_delete in writes:
        bucket = merged.setdefault(namespace, {})
        if is_delete:
            bucket.pop(key, None)
        else:
            bucket[key] = value
    return {namespace: pairs for namespace, pairs in merged.items() if pairs}


def torture_run(
    site: str,
    seed: int,
    wal_path: str,
    checkpoint_path: Optional[str] = None,
    ops: int = 40,
    trigger: Optional[str] = None,
    effect: str = "crash",
) -> TortureReport:
    """One torture run: arm *site*, run the workload, crash, recover, check.

    ``trigger`` defaults to ``after:K`` with K drawn from the seed, so
    different seeds crash at different depths of the workload.  A run in
    which the failpoint never fires (K beyond the site's hit count) is
    still verified — it degenerates to a clean-shutdown recovery check.
    """
    rng = random.Random(seed)
    if trigger is None:
        trigger = f"after:{rng.randint(1, 12)}"
    report = TortureReport(site=site, seed=seed, trigger=trigger, effect=effect)
    if obs_metrics.ENABLED:
        _TORTURE_RUNS.inc()

    # -- build the engine stack ------------------------------------------
    log = CentralLog()
    rows = RowView(log)
    manager = TransactionManager(log)
    wal = WriteAheadLog(wal_path, sync=True)
    log.subscribe(wal.log_entry)

    oracle: dict = {}  # committed state the recovery must reproduce
    inflight: Optional[list] = None  # writes of the txn crashed mid-commit
    checkpoint_at = ops // 2 if checkpoint_path else None

    FAILPOINTS.arm(site, trigger, effect, seed=seed)
    try:
        for namespace in _NAMESPACES:
            log.append(0, LogOp.CREATE_NAMESPACE, namespace)
        for index in range(ops):
            report.ops_attempted = index + 1
            if checkpoint_at is not None and index == checkpoint_at:
                report.checkpoint_lsn = write_checkpoint(
                    checkpoint_path, rows, log, manager
                )
            txn = manager.begin()
            writes = []
            for _ in range(rng.randint(1, 3)):
                namespace = rng.choice(_NAMESPACES)
                key = f"k{rng.randint(1, 12)}"
                if rng.random() < 0.15 and oracle.get(namespace, {}).get(key):
                    manager.delete(txn, namespace, key)
                    writes.append((namespace, key, None, True))
                else:
                    value = {"v": index, "by": txn.txn_id}
                    manager.write(txn, namespace, key, value)
                    writes.append((namespace, key, value, False))
            if rng.random() < 0.1:
                manager.abort(txn)
                report.aborted_txns += 1
                continue
            if index % 7 == 6:
                wal.flush()  # exercise the explicit-flush fsync site too
            inflight = writes
            try:
                manager.commit(txn)
            except SerializationError:
                report.aborted_txns += 1
                inflight = None
                continue
            oracle = _apply_writes(oracle, writes)
            inflight = None
            report.committed_txns += 1
        # Clean end of workload: close the WAL like a well-behaved process.
        wal.close()
    except SimulatedCrash:
        report.crashed = True
        # Process presumed dead: drop every in-memory object unclosed.
    finally:
        FAILPOINTS.disarm(site)
    del log, rows, manager, wal

    # -- recover and check invariants ------------------------------------
    recovered = _recovered_state(wal_path)
    report.recovered_records = sum(len(pairs) for pairs in recovered.values())
    acceptable = [oracle]
    if inflight is not None:
        # The crash interrupted one commit: if its COMMIT record reached
        # the WAL the transaction is durable, otherwise it must vanish —
        # either way, atomically.
        acceptable.append(_apply_writes(oracle, inflight))
    if recovered not in acceptable:
        report.errors.append(
            "recovered state matches neither the committed oracle nor "
            "oracle+in-flight transaction (atomicity violation): "
            f"recovered={recovered!r} oracle={oracle!r} inflight={inflight!r}"
        )

    if checkpoint_path is not None:
        via_checkpoint = _checkpoint_state(checkpoint_path, wal_path)
        if via_checkpoint != recovered:
            report.errors.append(
                "checkpoint + WAL-tail recovery diverges from full WAL "
                f"replay: checkpoint={via_checkpoint!r} full={recovered!r}"
            )
    return report


def torture_all_sites(
    base_dir: str,
    seed: int = 0,
    ops: int = 40,
    effects: tuple = ("crash", "torn"),
    prefixes: tuple = DEFAULT_SITE_PREFIXES,
) -> list[TortureReport]:
    """Torture every registered durability failpoint site under every
    *effect*; returns one report per (site, effect) pair.

    Sites are enumerated from the global registry, so a newly added
    failpoint is automatically covered the moment its module is imported.
    """
    reports = []
    run = 0
    for name in FAILPOINTS.names():
        if not name.startswith(prefixes):
            continue
        for effect in effects:
            if effect == "torn" and ".write" not in name:
                # Torn writes only exist at byte-sink sites; elsewhere the
                # effect would degrade to a recoverable error, which is not
                # a crash-recovery scenario.
                continue
            run += 1
            wal_path = os.path.join(base_dir, f"torture-{run}.wal")
            checkpoint_path = os.path.join(base_dir, f"torture-{run}.ckpt")
            # Sites hit at most once per run (the single checkpoint, the
            # clean close) need ``once`` to fire at all; per-record sites
            # get a seed-varied depth.
            if name.startswith(("checkpoint.", "wal.close")):
                trigger = "once"  # hit at most once per run
            elif name == "wal.flush.fsync":
                trigger = "after:2"  # hit once every few iterations
            else:
                trigger = None  # seed-varied depth
            reports.append(
                torture_run(
                    name,
                    seed + run,
                    wal_path,
                    checkpoint_path,
                    ops=ops,
                    trigger=trigger,
                    effect=effect,
                )
            )
    return reports
