"""Faulty I/O shim: write/flush/fsync/rename with injectable failures.

The WAL and checkpoint writer route their file operations through these
helpers so that an armed failpoint can make a *specific* I/O call suffer a
realistic failure:

========  =====================================================================
effect    behaviour at a ``write`` site
========  =====================================================================
crash     flush what was written so far, then raise :class:`SimulatedCrash`
torn      write a prefix of the data (a torn/partial line), flush, then crash
bitflip   silently corrupt one character before writing (latent corruption)
enospc    raise ``OSError(ENOSPC)`` without writing (disk full)
error     raise ``OSError(EIO)`` without writing (generic I/O error)
========  =====================================================================

At ``flush``/``fsync`` sites, ``error``/``enospc`` raise the matching
``OSError`` (a failed fsync — the durability lie every storage engine must
assume possible) and ``crash`` raises after the sync completes.  At
``rename`` sites, ``crash`` raises *before* the rename (the atomic publish
never happens) and ``error`` raises an ``OSError`` instead of renaming.

Each helper falls through to the plain operation when the failpoint is
disarmed; sites additionally guard on ``fp.armed`` so the common path costs
one attribute load.
"""

from __future__ import annotations

import errno
import os
from typing import IO, Optional

from repro.errors import SimulatedCrash
from repro.fault.registry import Failpoint

__all__ = ["write", "flush", "fsync", "rename", "dir_fsync", "corrupt_text"]


def corrupt_text(data: str) -> str:
    """Flip one character near the middle of *data*, never producing a
    newline (the corruption must stay inside the record's line)."""
    if not data:
        return data
    position = len(data) // 2
    original = data[position]
    flipped = chr(ord(original) ^ 1)
    if flipped in ("\n", "\r"):
        flipped = chr(ord(original) ^ 2)
    return data[:position] + flipped + data[position + 1:]


def _io_error(effect: str, site: str) -> OSError:
    if effect == "enospc":
        return OSError(errno.ENOSPC, f"No space left on device (injected at {site})")
    return OSError(errno.EIO, f"Input/output error (injected at {site})")


def write(handle: IO[str], data: str, fp: Optional[Failpoint] = None) -> None:
    """Write *data* to *handle*, applying the armed effect of *fp*."""
    if fp is not None and fp.armed:
        effect = fp.fires()
        if effect == "crash":
            handle.flush()
            raise SimulatedCrash(fp.name)
        if effect == "torn":
            handle.write(data[: max(1, len(data) // 2)])
            handle.flush()
            raise SimulatedCrash(fp.name)
        if effect == "bitflip":
            data = corrupt_text(data)
        elif effect in ("enospc", "error"):
            raise _io_error(effect, fp.name)
    handle.write(data)


def flush(handle: IO[str], fp: Optional[Failpoint] = None) -> None:
    if fp is not None and fp.armed:
        effect = fp.fires()
        if effect in ("enospc", "error", "torn", "bitflip"):
            raise _io_error(effect, fp.name)
        if effect == "crash":
            handle.flush()
            raise SimulatedCrash(fp.name)
    handle.flush()


def fsync(handle: IO[str], fp: Optional[Failpoint] = None) -> None:
    """``flush`` + ``os.fsync`` with injectable failed-fsync semantics."""
    if fp is not None and fp.armed:
        effect = fp.fires()
        if effect in ("enospc", "error", "torn", "bitflip"):
            # The failed fsync: data may or may not be durable, the caller
            # only knows the guarantee was NOT given.
            raise _io_error(effect, fp.name)
        if effect == "crash":
            handle.flush()
            os.fsync(handle.fileno())
            raise SimulatedCrash(fp.name)
    handle.flush()
    os.fsync(handle.fileno())


def rename(source: str, destination: str, fp: Optional[Failpoint] = None) -> None:
    """Atomic publish (``os.replace``) with injectable failure *before* the
    rename — after a crash here, the destination is untouched."""
    if fp is not None and fp.armed:
        effect = fp.fires()
        if effect == "crash":
            raise SimulatedCrash(fp.name)
        if effect in ("enospc", "error", "torn", "bitflip"):
            raise _io_error(effect, fp.name)
    os.replace(source, destination)


def dir_fsync(path: str, fp: Optional[Failpoint] = None) -> None:
    """fsync the *directory* containing a just-renamed file so the rename
    itself is durable.  Best-effort on platforms without O_DIRECTORY."""
    if fp is not None and fp.armed:
        effect = fp.fires()
        if effect == "crash":
            raise SimulatedCrash(fp.name)
        if effect in ("enospc", "error", "torn", "bitflip"):
            raise _io_error(effect, fp.name)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds: nothing more we can do
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
