"""repro — a multi-model database engine.

Reproduction of Jiaheng Lu & Irena Holubová, "Multi-model Data Management:
What's New and What's Next?" (EDBT 2017).  One integrated backend supports
relational, document, key/value, graph, XML and RDF data, queried together
through the MMQL unified language, with cross-model transactions, the full
index taxonomy, model evolution, a polyglot-persistence baseline, and the
UniBench benchmark.  See DESIGN.md for the system inventory.
"""

from repro.core.database import MultiModelDB
from repro.core.context import EngineContext
from repro.errors import ReproError
from repro.relational.schema import Column, ColumnType, TableSchema
from repro.txn.manager import IsolationLevel


def _detect_version() -> str:
    """Single-source the version: installed package metadata first, then the
    checked-out ``pyproject.toml`` (the PYTHONPATH=src development mode).

    ``python -m repro --version``, the server handshake and the client both
    report this value, so an embedded engine and a served one can never
    disagree about what build they are.
    """
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        pass
    try:
        import pathlib
        import re

        pyproject = pathlib.Path(__file__).resolve().parents[2] / "pyproject.toml"
        match = re.search(
            r'^version\s*=\s*"([^"]+)"',
            pyproject.read_text(encoding="utf-8"),
            re.MULTILINE,
        )
        if match:
            return match.group(1)
    except Exception:
        pass
    return "0.0.0+unknown"


__version__ = _detect_version()

__all__ = [
    "MultiModelDB",
    "EngineContext",
    "ReproError",
    "Column",
    "ColumnType",
    "TableSchema",
    "IsolationLevel",
    "__version__",
]
