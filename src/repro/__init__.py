"""repro — a multi-model database engine.

Reproduction of Jiaheng Lu & Irena Holubová, "Multi-model Data Management:
What's New and What's Next?" (EDBT 2017).  One integrated backend supports
relational, document, key/value, graph, XML and RDF data, queried together
through the MMQL unified language, with cross-model transactions, the full
index taxonomy, model evolution, a polyglot-persistence baseline, and the
UniBench benchmark.  See DESIGN.md for the system inventory.
"""

from repro.core.database import MultiModelDB
from repro.core.context import EngineContext
from repro.errors import ReproError
from repro.relational.schema import Column, ColumnType, TableSchema
from repro.txn.manager import IsolationLevel

__version__ = "1.0.0"

__all__ = [
    "MultiModelDB",
    "EngineContext",
    "ReproError",
    "Column",
    "ColumnType",
    "TableSchema",
    "IsolationLevel",
    "__version__",
]
