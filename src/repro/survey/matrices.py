"""The tutorial's classification tables as structured data (E2-E6).

Slides 32/39/47/53/59/61/67 classify multi-model DBMSs by their primary
model and compare them on formats, storage strategy, query languages,
indices, scale-out, flexible schema, data combination and cloud support.
This module encodes every row verbatim and renders the tables, so the
benchmark target ``bench_survey_tables.py`` regenerates the paper's tables
exactly and tests can assert individual cells.

``Y``/``N``/``-`` values follow the slides (``-`` = not stated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "SystemEntry",
    "CLASSIFICATION",
    "FEATURE_MATRICES",
    "systems_in_category",
    "lookup",
    "render_classification",
    "render_matrix",
    "render_all",
]


@dataclass(frozen=True)
class SystemEntry:
    """One row of a feature matrix."""

    name: str
    formats: str
    storage: str
    query_languages: str
    indices: str
    scale_out: str
    flexible_schema: str
    combine_data: str
    cloud: str


#: Slide 32 — "Classification and Timeline".
CLASSIFICATION: dict[str, list[str]] = {
    "relational": [
        "PostgreSQL", "SQL Server", "IBM DB2", "Oracle DB", "Oracle MySQL", "Sinew",
    ],
    "column": ["Cassandra", "CrateDB", "DynamoDB", "HPE Vertica"],
    "keyvalue": ["Riak", "c-treeACE", "Oracle NoSQL DB"],
    "document": ["ArangoDB", "Couchbase", "MarkLogic"],
    "graph": ["OrientDB"],
    "object": ["InterSystems Caché"],
    "special": ["NuoDB", "Redis", "Aerospike", "SAP HANA DB", "Octopus DB"],
}


FEATURE_MATRICES: dict[str, list[SystemEntry]] = {
    # Slide 39 — relational multi-model DBMSs.
    "relational": [
        SystemEntry(
            "PostgreSQL",
            "relational, key/value, JSON, XML",
            "relational tables - text or binary format + indices",
            "SQL ext.",
            "inverted",
            "N", "Y", "Y", "N",
        ),
        SystemEntry(
            "SQL Server",
            "relational, XML, JSON, ...",
            "text, relational tables",
            "SQL ext.",
            "B-tree, full-text",
            "Y", "Y", "Y", "N",
        ),
        SystemEntry(
            "IBM DB2",
            "relational, XML, RDF",
            "native XML type / relations for RDF",
            "Extended SQL / XML / SPARQL 1.0/1.1",
            "XML paths / B+ tree, fulltext",
            "Y", "Y", "Y", "N",
        ),
        SystemEntry(
            "Oracle DB",
            "relational, XML, JSON",
            "relational, native XML",
            "SQL/XML, JSON SQL ext.",
            "bitmap, B+ tree, function-based, XMLIndex",
            "Y", "N", "Y", "Y",
        ),
        SystemEntry(
            "Oracle MySQL",
            "relational, key/value",
            "relational",
            "SQL, memcached API",
            "B-tree",
            "Y", "N", "Y", "Y",
        ),
        SystemEntry(
            "Sinew",
            "relational, key/value, nested document, ...",
            "logically a universal relation, physically partially materialized",
            "SQL",
            "-",
            "-", "Y", "Y", "N",
        ),
    ],
    # Slide 47 — column multi-model DBMSs.
    "column": [
        SystemEntry(
            "Cassandra",
            "text, user-defined type",
            "sparse tables",
            "SQL-like CQL",
            "inverted, B+ tree",
            "Y", "N", "Y", "Y",
        ),
        SystemEntry(
            "CrateDB",
            "relational, JSON, BLOB, arrays",
            "columnar store based on Lucene and Elasticsearch",
            "SQL",
            "Lucene",
            "Y", "Y", "Y", "N",
        ),
        SystemEntry(
            "DynamoDB",
            "key/value, document (JSON)",
            "column store",
            "simple API (get / put / update) + simple queries over indices",
            "hashing",
            "Y", "Y", "Y", "Y",
        ),
        SystemEntry(
            "HPE Vertica",
            "JSON, CSV",
            "flex tables + map",
            "SQL-like for materialized data",
            "",
            "Y", "Y", "Y", "N",
        ),
    ],
    # Slide 53 — key/value multi-model DBMSs.
    "keyvalue": [
        SystemEntry(
            "Riak",
            "key/value, XML, JSON",
            "key/value pairs in buckets",
            "Solr",
            "Solr",
            "Y", "N", "Y", "N",
        ),
        SystemEntry(
            "c-treeACE",
            "key/value + SQL API",
            "record-oriented ISAM",
            "SQL",
            "ISAM",
            "Y", "Y", "-", "N",
        ),
        SystemEntry(
            "Oracle NoSQL DB",
            "key/value, (hierarchical) table API",
            "key/value",
            "SQL",
            "B-tree",
            "Y", "N", "Y", "N",
        ),
    ],
    # Slide 59 — document multi-model DBMSs.
    "document": [
        SystemEntry(
            "ArangoDB",
            "key/value, document, graph",
            "document store allowing references",
            "SQL-like AQL",
            "mainly hash (eventually unique or sparse)",
            "Y", "Y", "Y", "N",
        ),
        SystemEntry(
            "Couchbase",
            "key/value, document, distributed cache",
            "document store + append-only write",
            "SQL-based N1QL",
            "B+tree, B+trie",
            "Y", "Y", "Y", "N",
        ),
        SystemEntry(
            "MarkLogic",
            "XML, JSON, RDF, binary, text, ...",
            "storing like hierarchical XML data",
            "XPath, XQuery, SQL-like",
            "inverted + native XML",
            "Y", "Y", "Y", "N",
        ),
    ],
    # Slide 61 — graph multi-model DBMSs.
    "graph": [
        SystemEntry(
            "OrientDB",
            "graph, document, key/value, object",
            "key/value pairs + object-oriented links",
            "Gremlin, SQL ext.",
            "SB-tree, ext. hashing, Lucene",
            "Y", "Y", "Y", "N",
        ),
    ],
    # Slide 67 — object multi-model DBMSs.
    "object": [
        SystemEntry(
            "Caché",
            "object, SQL or multi-dimensional, document (JSON, XML) API",
            "multi-dimensional arrays",
            "SQL with object extensions",
            "bitmap, bitslice, standard",
            "Y", "Y", "-", "N",
        ),
    ],
}

_HEADERS = [
    "System",
    "Formats",
    "Storage strategy",
    "Query languages",
    "Indices",
    "Scale out",
    "Flex. schema",
    "Comb. data",
    "Cloud",
]


def systems_in_category(category: str) -> list[str]:
    """Names in one slide-32 category."""
    return list(CLASSIFICATION[category])


def lookup(system: str) -> Optional[SystemEntry]:
    """Find a system's feature row across all matrices."""
    for entries in FEATURE_MATRICES.values():
        for entry in entries:
            if entry.name.lower() == system.lower():
                return entry
    return None


def _row_of(entry: SystemEntry) -> list[str]:
    return [
        entry.name,
        entry.formats,
        entry.storage,
        entry.query_languages,
        entry.indices,
        entry.scale_out,
        entry.flexible_schema,
        entry.combine_data,
        entry.cloud,
    ]


def render_matrix(category: str, width: int = 28) -> str:
    """One feature matrix as aligned text (long cells wrap by truncation
    with an ellipsis so the table stays a table)."""
    entries = FEATURE_MATRICES[category]

    def clip(text: str) -> str:
        return text if len(text) <= width else text[: width - 1] + "…"

    rows = [[clip(cell) for cell in _HEADERS]]
    rows += [[clip(cell) for cell in _row_of(entry)] for entry in entries]
    widths = [max(len(row[i]) for row in rows) for i in range(len(_HEADERS))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


def render_classification() -> str:
    """Slide 32's classification table as text."""
    lines = [f"{'Category':<12} | Systems", "-" * 60]
    for category, systems in CLASSIFICATION.items():
        lines.append(f"{category:<12} | {', '.join(systems)}")
    return "\n".join(lines)


def render_all() -> str:
    """Every table, in slide order."""
    parts = ["Classification and Timeline (slide 32)", render_classification()]
    slide_of = {
        "relational": 39,
        "column": 47,
        "keyvalue": 53,
        "document": 59,
        "graph": 61,
        "object": 67,
    }
    for category, slide in slide_of.items():
        parts.append("")
        parts.append(f"{category.title()} multi-model DBMSs (slide {slide})")
        parts.append(render_matrix(category))
    return "\n".join(parts)
