"""The tutorial's DBMS classification tables as data (E2-E6)."""

from repro.survey.matrices import (
    CLASSIFICATION,
    FEATURE_MATRICES,
    SystemEntry,
    lookup,
    render_all,
    render_classification,
    render_matrix,
    systems_in_category,
)

__all__ = [
    "CLASSIFICATION",
    "FEATURE_MATRICES",
    "SystemEntry",
    "lookup",
    "render_all",
    "render_classification",
    "render_matrix",
    "systems_in_category",
]
