"""``ReproClient`` — synchronous wire client for a :class:`ReproServer`.

A deliberately small, dependency-free client: one TCP socket, one
outstanding request at a time (calls are serialized under an internal
lock, so a client instance may be shared across threads — though one
client *per* thread is the idiomatic pattern, giving each thread its own
session and transaction state).

Reconnection uses the engine's canonical retry helper
(:func:`repro.fault.retry.retry_with_backoff`): transport failures on an
idle session are retried transparently with exponential backoff, each
attempt re-dialing the server.  Inside a transaction nothing is retried —
the server aborted the transaction the moment the connection died, so the
only honest outcome is an error the application can see.  Retried queries
are at-least-once: a response lost in flight re-executes the statement.

Queries **stream** by default: :meth:`ReproClient.query` opens a
server-side cursor (``query_open``) and returns a :class:`ResultCursor`
that fetches further chunks (``cursor_next``) as it is iterated — the
server never materializes more than one chunk per stream, so a result
larger than the 32 MiB frame cap flows through in many small frames.
``.rows`` / ``fetch_all()`` drain the cursor for eager callers, so the
one-shot idiom is unchanged:

    with ReproClient(port=port) as client:
        rows = client.query(
            "FOR c IN customers FILTER c.credit_limit > @m RETURN c.name",
            {"m": 5000},
        ).rows

Cursor fetches are **never retried**: a cursor is session state, and a
reconnect lands in a fresh session without it — a transport failure
mid-stream surfaces as the error it is instead of silently re-running
the query from the top.

**Distributed tracing**: when tracing is on (``tracing.enable()``, the
client's ``trace=True``, or ``query(..., trace=True)`` for one statement)
and the server advertises the ``trace`` feature in its handshake, every
request frame carries ``trace_id``/``parent_span_id``; the server
continues that trace and returns its span tree in the response, which the
client stitches — across *all* fetches of a streamed cursor — into one
:class:`StitchedTrace` available as :attr:`ReproClient.last_trace`.
Against an older server the extra key is simply never sent, so tracing
needs no protocol bump.
"""

from __future__ import annotations

import re
import socket
import threading
import time
from typing import Any, Optional

from repro.errors import CursorNotFoundError, ProtocolError
from repro.fault.retry import retry_with_backoff
from repro.obs import events as obs_events
from repro.obs import tracing
from repro.server import protocol

__all__ = ["ReproClient", "ResultCursor", "StitchedTrace", "DEFAULT_PORT"]

#: Default TCP port for ``repro-shell serve`` / ``connect``.
DEFAULT_PORT = 8845

_UNSET = object()

#: EXPLAIN ANALYZE executes eagerly (probes only mean anything over a
#: completed run), so such statements bypass the streaming path.
_EXPLAIN_ANALYZE = re.compile(r"^\s*EXPLAIN\s+ANALYZE\b", re.IGNORECASE)


class StitchedTrace:
    """One distributed trace as the client observed it: every RPC issued
    under the trace, each carrying the server's span-summary tree for that
    request.  A streamed query accumulates its ``query_open`` and every
    ``cursor_next``/``cursor_close`` here, all sharing one ``trace_id``."""

    __slots__ = ("trace_id", "rpcs")

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        #: Chronological client-side RPC records:
        #: ``{"op", "span_id", "duration_ms", "server": <span summary>|None}``.
        self.rpcs: list[dict] = []

    def record(
        self,
        op: str,
        span_id: str,
        duration_ms: float,
        server: Optional[dict] = None,
    ) -> None:
        self.rpcs.append(
            {
                "op": op,
                "span_id": span_id,
                "duration_ms": duration_ms,
                "server": server,
            }
        )

    @property
    def server_spans(self) -> list[dict]:
        """The server-side span summaries, one per answered RPC."""
        return [rpc["server"] for rpc in self.rpcs if rpc.get("server")]

    def format(self) -> str:
        """Indented client→server→engine tree for terminal display."""
        lines = [f"trace {self.trace_id}"]
        for rpc in self.rpcs:
            lines.append(
                f"  client.{rpc['op']}  {rpc['duration_ms']:.3f} ms "
                f"span={rpc['span_id']}"
            )
            server = rpc.get("server")
            if server:
                lines.append(tracing.format_summary(server, indent=2))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<StitchedTrace {self.trace_id} rpcs={len(self.rpcs)}>"


class ResultCursor:
    """Lazy handle over a server-side streaming result.

    Rows arrive in chunks: iterating fetches the next chunk on demand
    (``cursor_next``), so a huge result never occupies more than one
    chunk of server memory at a time.  :meth:`fetch_all` / ``.rows``
    drain the stream for eager callers — the pre-cursor ``Result``
    idiom (``client.query(...).rows``) works unchanged.  Fetched rows
    are retained, so the cursor is re-iterable and indexable after a
    full drain.

    ``stats`` tracks the server's live execution statistics (updated on
    every fetched chunk); ``analyzed`` carries the EXPLAIN ANALYZE text
    for eager/analyze results and is ``None`` on streams.
    """

    __slots__ = ("_client", "_cursor_id", "_fetched", "stats", "analyzed",
                 "trace")

    def __init__(
        self,
        client: "ReproClient",
        cursor_id: Optional[int],
        rows: list,
        stats: dict,
        analyzed: Optional[str] = None,
        trace: Optional[StitchedTrace] = None,
    ):
        self._client = client
        self._cursor_id = cursor_id  # None once the stream is complete
        self._fetched = list(rows)
        self.stats = stats
        self.analyzed = analyzed
        #: The distributed trace this stream runs under (None untraced);
        #: every further fetch continues it, so a drained stream shows the
        #: whole multi-fetch conversation under one trace_id.
        self.trace = trace

    @property
    def exhausted(self) -> bool:
        """True when every row is client-side (no server cursor open)."""
        return self._cursor_id is None

    def _fetch_more(self) -> None:
        payload = self._client._cursor_call(
            "cursor_next", trace=self.trace, cursor=self._cursor_id
        )
        self._fetched.extend(payload.get("rows", []))
        self.stats = payload.get("stats", self.stats)
        if not payload.get("has_more"):
            self._cursor_id = None

    def fetch_all(self) -> list:
        """Drain the stream; returns the complete row list."""
        while self._cursor_id is not None:
            self._fetch_more()
        return self._fetched

    @property
    def rows(self) -> list:
        """The complete row list (drains the stream on first access)."""
        return self.fetch_all()

    def __iter__(self):
        index = 0
        while True:
            while index < len(self._fetched):
                yield self._fetched[index]
                index += 1
            if self._cursor_id is None:
                return
            self._fetch_more()

    def __len__(self) -> int:
        return len(self.fetch_all())

    def __getitem__(self, item):
        return self.fetch_all()[item]

    def first(self):
        """The first row, or ``None`` on an empty result."""
        for row in self:
            return row
        return None

    def close(self) -> None:
        """Release the server-side cursor without draining it.  A cursor
        the server already dropped (exhausted, reaped, restarted) closes
        cleanly."""
        if self._cursor_id is None:
            return
        cursor_id, self._cursor_id = self._cursor_id, None
        try:
            self._client._cursor_call(
                "cursor_close", trace=self.trace, cursor=cursor_id
            )
        except (CursorNotFoundError, ConnectionError, OSError):
            pass

    def __enter__(self) -> "ResultCursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "complete" if self._cursor_id is None else (
            f"open cursor {self._cursor_id}"
        )
        return f"<ResultCursor {len(self._fetched)} rows fetched, {state}>"


class ReproClient:
    """Synchronous, context-managed client for the repro wire protocol."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        connect_timeout: float = 5.0,
        request_timeout: Optional[float] = 60.0,
        retries: int = 3,
        auto_reconnect: bool = True,
        backoff_base: float = 0.05,
        retry_jitter: bool = True,
        retry_max_elapsed: Optional[float] = None,
        retry_seed: Optional[int] = None,
        sleep=time.sleep,
        trace: Optional[bool] = None,
    ):
        self.host = host
        self.port = port
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.retries = max(int(retries), 1)
        self.auto_reconnect = auto_reconnect
        self.backoff_base = backoff_base
        #: Full-jitter reconnect backoff (decorrelates a thundering herd of
        #: clients re-dialing a restarted server); ``retry_max_elapsed``
        #: bounds total wall-clock spent retrying one call.
        self.retry_jitter = retry_jitter
        self.retry_max_elapsed = retry_max_elapsed
        self.retry_seed = retry_seed
        self._sleep = sleep  # None disables backoff delays (tests)
        self._sock: Optional[socket.socket] = None
        self._lock = threading.RLock()
        self._next_id = 0
        self._in_txn = False
        self.server_info: Optional[dict] = None
        #: Tracing policy: True/False force it on/off for this client;
        #: None (default) follows the global ``tracing`` flag at call time.
        self.trace = trace
        #: The most recently completed :class:`StitchedTrace`, if any.
        self.last_trace: Optional[StitchedTrace] = None
        #: When set (by a cluster coordinator), every query ships this
        #: shard-map version so a re-provisioned shard can answer
        #: SHARD_MAP_STALE instead of serving a stale topology.
        self.shard_map_version: Optional[int] = None

    # ------------------------------------------------------------ lifecycle --

    def connect(self) -> dict:
        """Dial the server and consume the handshake; returns server info.

        Raises the typed error the server greeted us with when admission
        control refuses the session (e.g.
        :class:`repro.errors.ServerOverloadedError`)."""
        with self._lock:
            self._teardown()
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
            sock.settimeout(self.request_timeout)
            try:
                frame = protocol.read_frame(sock)
                if frame is None:
                    raise ProtocolError("server closed the connection before hello")
                if frame.get("ok") is False:
                    protocol.raise_wire_error(frame.get("error"))
                hello = frame.get("hello")
                if not isinstance(hello, dict):
                    raise ProtocolError(f"expected hello frame, got {frame!r}")
                if hello.get("protocol") != protocol.PROTOCOL_VERSION:
                    raise ProtocolError(
                        f"protocol mismatch: server speaks "
                        f"{hello.get('protocol')!r}, client "
                        f"{protocol.PROTOCOL_VERSION!r}"
                    )
            except BaseException:
                sock.close()
                raise
            self._sock = sock
            self._in_txn = False
            self.server_info = hello
            return hello

    def close(self) -> None:
        with self._lock:
            self._teardown()

    def _teardown(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._in_txn = False

    def __enter__(self) -> "ReproClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connected(self) -> bool:
        return self._sock is not None

    @property
    def in_txn(self) -> bool:
        return self._in_txn

    @property
    def session_id(self) -> Optional[int]:
        return (self.server_info or {}).get("session")

    @property
    def server_version(self) -> Optional[str]:
        return (self.server_info or {}).get("version")

    # ------------------------------------------------------------- plumbing --

    def _tracing_wanted(self) -> bool:
        return self.trace if self.trace is not None else tracing.is_enabled()

    def _server_traces(self) -> bool:
        """Did the handshake advertise the ``trace`` feature?  Older
        servers never see the extra frame key."""
        features = (self.server_info or {}).get("features")
        return isinstance(features, (list, tuple)) and "trace" in features

    def _new_trace(self, force: Optional[bool] = None) -> Optional[StitchedTrace]:
        wanted = force if force is not None else self._tracing_wanted()
        if not wanted:
            return None
        return StitchedTrace(tracing.new_trace_id())

    def _roundtrip(
        self, op: str, params: dict, trace: Optional[StitchedTrace] = None
    ) -> Any:
        """One request/response exchange on the current socket."""
        if self._sock is None:
            raise ConnectionError("client is not connected")
        self._next_id += 1
        request_id = self._next_id
        trace_frame = None
        span_id = None
        if trace is not None and self._server_traces():
            # This RPC's own span id becomes the server span's parent, so
            # the two trees stitch at exactly this request.
            span_id = tracing.new_span_id()
            trace_frame = {
                "trace_id": trace.trace_id,
                "parent_span_id": span_id,
            }
        started = time.perf_counter()
        protocol.write_frame(
            self._sock, protocol.request(request_id, op, trace=trace_frame, **params)
        )
        frame = protocol.read_frame(self._sock)
        if frame is None:
            raise ConnectionError("server closed the connection mid-request")
        if frame.get("id") != request_id:
            raise ProtocolError(
                f"response id {frame.get('id')!r} does not match "
                f"request id {request_id}"
            )
        if span_id is not None:
            server_summary = frame.get("trace")
            trace.record(
                op,
                span_id,
                round((time.perf_counter() - started) * 1000, 3),
                server_summary if isinstance(server_summary, dict) else None,
            )
            self.last_trace = trace
        if frame.get("ok") is not True:
            protocol.raise_wire_error(frame.get("error"))
        return frame.get("result")

    def _call(self, op: str, trace: Any = _UNSET, **params: Any) -> Any:
        """Roundtrip with transparent reconnect on transport failure.

        Only reconnects when *not* inside a transaction — a reconnect is a
        brand-new session and silently continuing would lie about the
        transaction the server already rolled back."""
        with self._lock:
            if self._sock is None and not self.auto_reconnect:
                raise ConnectionError("client is not connected")
            if trace is _UNSET:
                # Bare API calls (ping/begin/commit/…) still trace when
                # the policy says so; query() decides for itself.
                trace = self._new_trace()
            can_retry = self.auto_reconnect and not self._in_txn
            if not can_retry:
                try:
                    return self._roundtrip(op, params, trace=trace)
                except (ConnectionError, OSError, socket.timeout):
                    self._teardown()  # the server-side txn is already dead
                    raise

            def attempt(index: int) -> Any:
                if index > 0 or self._sock is None:
                    if index > 0:
                        obs_events.emit(
                            "client_reconnect",
                            host=self.host,
                            port=self.port,
                            attempt=index + 1,
                            op=op,
                        )
                    self.connect()
                try:
                    return self._roundtrip(op, params, trace=trace)
                except (ConnectionError, OSError, socket.timeout, ProtocolError):
                    # ProtocolError counts as transport here: a torn hello,
                    # a truncated frame, or a duplicated response leaves the
                    # stream desynchronized — only a fresh dial recovers it.
                    self._teardown()
                    raise

            return retry_with_backoff(
                attempt,
                attempts=self.retries,
                retry_on=(ConnectionError, OSError, ProtocolError),
                base_delay=self.backoff_base,
                sleep=self._sleep,
                jitter=self.retry_jitter,
                max_elapsed=self.retry_max_elapsed,
                seed=self.retry_seed,
            )

    def _cursor_call(
        self, op: str, trace: Optional[StitchedTrace] = None, **params: Any
    ) -> Any:
        """Roundtrip that never reconnects: cursors are session state, so
        a transport failure mid-stream must surface — a retry on a fresh
        session could only answer ``CURSOR_NOT_FOUND`` or silently
        re-run the query from the top."""
        with self._lock:
            try:
                return self._roundtrip(op, params, trace=trace)
            except (ConnectionError, OSError, socket.timeout):
                self._teardown()
                raise

    # ------------------------------------------------------------------ API --

    def query(
        self,
        text: str,
        bind_vars: Optional[dict] = None,
        analyze: bool = False,
        timeout: Optional[float] = None,
        max_rows: Optional[int] = None,
        batch_size: Optional[int] = None,
        chunk_rows: Optional[int] = None,
        stream: bool = True,
        trace: Optional[bool] = None,
    ) -> ResultCursor:
        """Run MMQL on the server; returns a :class:`ResultCursor`.

        By default the result **streams**: the server opens a cursor and
        ships rows in chunks of ``chunk_rows`` (capped by the server's
        ``cursor_chunk_rows``) as the cursor is iterated; ``.rows`` /
        ``fetch_all()`` drain it eagerly.  ``analyze=True`` and
        ``stream=False`` use the one-shot ``query`` op instead (EXPLAIN
        ANALYZE is eager by construction), returning an already-complete
        cursor.  Values are limited to what JSON round-trips.

        ``trace=True`` traces this one statement (client RPCs + server
        span trees, stitched across every fetch of a streamed result into
        :attr:`last_trace` / ``cursor.trace``) regardless of the client's
        default policy.  Passing an existing :class:`StitchedTrace`
        instance joins this statement onto it — the cluster coordinator
        uses that to stitch a whole scatter into one trace."""
        if isinstance(trace, StitchedTrace):
            stitched: Optional[StitchedTrace] = trace
        else:
            stitched = self._new_trace(force=trace)
        params: dict[str, Any] = {"text": text, "bind_vars": bind_vars or {}}
        if self.shard_map_version is not None:
            params["shard_map_version"] = self.shard_map_version
        if timeout is not None:
            params["timeout"] = timeout
        if max_rows is not None:
            params["max_rows"] = max_rows
        if batch_size is not None:
            params["batch_size"] = batch_size
        if analyze or not stream or _EXPLAIN_ANALYZE.match(text):
            if analyze:
                params["analyze"] = True
            payload = self._call("query", trace=stitched, **params)
            return ResultCursor(
                self,
                None,
                payload.get("rows", []),
                payload.get("stats", {}),
                analyzed=payload.get("analyzed"),
                trace=stitched,
            )
        if chunk_rows is not None:
            params["chunk_rows"] = chunk_rows
        payload = self._call("query_open", trace=stitched, **params)
        return ResultCursor(
            self,
            payload.get("cursor"),
            payload.get("rows", []),
            payload.get("stats", {}),
            trace=stitched,
        )

    def explain(self, text: str) -> str:
        return self._call("explain", text=text)["plan"]

    def shard_map(self) -> dict:
        """Fetch the shard's cluster topology (``shard_id`` +
        ``shard_map`` JSON); raises ``CLUSTER`` on non-cluster servers."""
        return self._call("shard_map")

    def begin(self, isolation: str = "snapshot") -> int:
        result = self._call("begin", isolation=isolation)
        self._in_txn = True
        return result["txn"]

    def commit(self) -> None:
        try:
            self._call("commit")
        finally:
            self._in_txn = False

    def abort(self) -> None:
        try:
            self._call("abort")
        finally:
            self._in_txn = False

    def set_limits(self, timeout: Any = _UNSET, max_rows: Any = _UNSET) -> dict:
        """Session-level guardrail overrides (``None`` clears one; the
        server still caps both at the host's ``db.guardrails``)."""
        params: dict[str, Any] = {}
        if timeout is not _UNSET:
            params["timeout"] = timeout
        if max_rows is not _UNSET:
            params["max_rows"] = max_rows
        return self._call("set", **params)

    def set_consistency(self, name: str, level: str) -> dict:
        return self._call("set_consistency", name=name, level=level)

    def ping(self) -> bool:
        return bool(self._call("ping").get("pong"))

    def stats(self) -> dict:
        return self._call("stats")

    def info(self) -> dict:
        return self._call("info")

    # -- observability ------------------------------------------------------

    def trace_dump(self, n: Optional[int] = None) -> list[dict]:
        """Recent server-side trace trees (span-summary dicts)."""
        params = {"n": n} if n is not None else {}
        return self._call("trace_dump", **params)["traces"]

    def slowlog(self, threshold_ms: Any = _UNSET) -> dict:
        """The server's slow-query log; pass ``threshold_ms`` (or None to
        turn it off) to change the threshold first."""
        params = {} if threshold_ms is _UNSET else {"threshold_ms": threshold_ms}
        return self._call("slowlog", **params)

    def events(self, n: Optional[int] = None, kind: Optional[str] = None) -> list[dict]:
        """Recent structured events from the server's event log."""
        params: dict[str, Any] = {}
        if n is not None:
            params["n"] = n
        if kind is not None:
            params["kind"] = kind
        return self._call("events", **params)["events"]

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return f"<ReproClient {self.host}:{self.port} {state}>"
