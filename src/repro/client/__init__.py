"""Client library for the repro network service layer.

:class:`~repro.client.client.ReproClient` speaks the length-prefixed JSON
protocol of :mod:`repro.server` — sync, context-managed, auto-reconnecting.
"""

from repro.client.client import DEFAULT_PORT, ReproClient, ResultCursor

__all__ = ["ReproClient", "ResultCursor", "DEFAULT_PORT"]
