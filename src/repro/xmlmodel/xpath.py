"""An XPath subset over the unified tree (slide 75: "MarkLogic — JSON can be
accessed using XPath; tree representation like for XML").

Supported grammar (enough for every query the tutorial shows, including the
slide-76 cross-format join):

    path       := '/'? step (('/' | '//') step)*
    step       := name | '*' | '@' name | 'text()' | '..'  predicate*
    predicate  := '[' integer ']'
                | '[' relpath ']'                      (existence)
                | '[' relpath op literal ']'
                | '[' '@' name op literal ']'
    op         := '=' | '!=' | '<' | '<=' | '>' | '>='
    literal    := 'quoted' | "quoted" | number

Semantics follow XPath 1.0: ``//`` is descendant-or-self, predicates with a
node-set operand are existential ("some matching node compares true"),
positions are 1-based.  JSON container nodes (object/array) are *transparent*
to child steps, so ``/Orderlines/Product_no`` works on a JSON tree exactly as
it would on the equivalent XML.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Union

from repro.errors import PathError
from repro.xmlmodel.tree import Node

__all__ = ["XPath", "evaluate", "AttributeValue"]


@dataclass(frozen=True)
class AttributeValue:
    """Result item for an ``@name`` step."""

    owner_name: str
    name: str
    value: str

    def string_value(self) -> str:
        return self.value


Result = Union[Node, AttributeValue]


def _logical_children(node: Node) -> Iterator[Node]:
    """Child elements and leaves, looking through transparent JSON
    containers (document, object, array)."""
    for child in node.children:
        if child.kind in ("object", "array"):
            yield from _logical_children(child)
        else:
            yield child


def _logical_descendants(node: Node) -> Iterator[Node]:
    for child in _logical_children(node):
        yield child
        yield from _logical_descendants(child)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


@dataclass
class _Predicate:
    position: Optional[int] = None
    relpath: Optional["XPath"] = None
    attribute: Optional[str] = None
    op: Optional[str] = None
    literal: Any = None


@dataclass
class _Step:
    axis: str  # "child" or "descendant"
    test: str  # element name, "*", "@name", "text()", ".."
    predicates: list[_Predicate] = field(default_factory=list)


_TOKEN = re.compile(
    r"""
    (?P<dslash>//)
  | (?P<slash>/)
  | (?P<lbr>\[)
  | (?P<rbr>\])
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<name>@?[A-Za-z_][\w.\-]*(?:\(\))?|\*|\.\.)
  | (?P<space>\s+)
""",
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            raise PathError(f"bad XPath near {text[position:position + 10]!r}")
        position = match.end()
        kind = match.lastgroup
        if kind != "space":
            tokens.append((kind, match.group()))
    return tokens


class XPath:
    """A compiled XPath expression."""

    def __init__(self, expression: str):
        self.expression = expression
        self._absolute, self._steps = _parse(expression)

    def __repr__(self) -> str:
        return f"XPath({self.expression!r})"

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, node: Node) -> list[Result]:
        """All matching nodes/attributes, in document order."""
        current: list[Result] = [node]
        for step in self._steps:
            current = _apply_step(step, current)
        return current

    def string_values(self, node: Node) -> list[str]:
        return [item.string_value() for item in self.evaluate(node)]

    def first(self, node: Node) -> Optional[Result]:
        results = self.evaluate(node)
        return results[0] if results else None

    def exists(self, node: Node) -> bool:
        return bool(self.evaluate(node))


def evaluate(expression: str, node: Node) -> list[Result]:
    """One-shot convenience wrapper."""
    return XPath(expression).evaluate(node)


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], expression: str):
        self._tokens = tokens
        self._position = 0
        self._expression = expression

    def peek(self) -> Optional[tuple[str, str]]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise PathError(f"unexpected end of XPath {self._expression!r}")
        self._position += 1
        return token

    def expect(self, kind: str) -> str:
        token = self.next()
        if token[0] != kind:
            raise PathError(
                f"expected {kind} in XPath {self._expression!r}, got {token[1]!r}"
            )
        return token[1]

    def done(self) -> bool:
        return self._position >= len(self._tokens)


def _parse(expression: str) -> tuple[bool, list[_Step]]:
    parser = _Parser(_tokenize(expression), expression)
    absolute = False
    steps: list[_Step] = []
    token = parser.peek()
    axis = "child"
    if token and token[0] in ("slash", "dslash"):
        absolute = True
        axis = "descendant" if token[0] == "dslash" else "child"
        parser.next()
    while not parser.done():
        name = parser.expect("name")
        step = _Step(axis=axis, test=name)
        while parser.peek() and parser.peek()[0] == "lbr":
            parser.next()
            step.predicates.append(_parse_predicate(parser))
            parser.expect("rbr")
        steps.append(step)
        if parser.done():
            break
        kind, _text = parser.next()
        if kind == "dslash":
            axis = "descendant"
        elif kind == "slash":
            axis = "child"
        else:
            raise PathError(f"expected / in XPath {expression!r}")
    if not steps:
        raise PathError(f"empty XPath {expression!r}")
    return absolute, steps


def _parse_predicate(parser: _Parser) -> _Predicate:
    kind, text = parser.peek()
    if kind == "number" and "." not in text:
        parser.next()
        return _Predicate(position=int(text))
    # Parse a relative path (possibly attribute-leading) up to op or ].
    path_tokens: list[tuple[str, str]] = []
    while parser.peek() and parser.peek()[0] in ("name", "slash", "dslash"):
        path_tokens.append(parser.next())
    if not path_tokens:
        raise PathError("empty predicate")
    predicate = _Predicate()
    if len(path_tokens) == 1 and path_tokens[0][1].startswith("@"):
        predicate.attribute = path_tokens[0][1][1:]
    else:
        rel_expression = "".join(text for _kind, text in path_tokens)
        predicate.relpath = XPath(rel_expression)
    token = parser.peek()
    if token and token[0] == "op":
        predicate.op = parser.next()[1]
        literal_kind, literal_text = parser.next()
        if literal_kind == "string":
            predicate.literal = literal_text[1:-1]
        elif literal_kind == "number":
            predicate.literal = (
                float(literal_text) if "." in literal_text else int(literal_text)
            )
        else:
            raise PathError(f"bad literal {literal_text!r} in predicate")
    return predicate


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def _apply_step(step: _Step, context: list[Result]) -> list[Result]:
    output: list[Result] = []
    for item in context:
        if not isinstance(item, Node):
            continue  # attributes have no children
        output.extend(_select(step, item))
    if step.predicates:
        for predicate in step.predicates:
            output = _filter(predicate, output)
    return output


def _select(step: _Step, node: Node) -> list[Result]:
    test = step.test
    if test.startswith("@"):
        name = test[1:]
        candidates = (
            [node]
            if step.axis == "child"
            else [node] + [d for d in _logical_descendants(node)]
        )
        results: list[Result] = []
        for candidate in candidates:
            if candidate.kind == "element" and name in candidate.attributes:
                results.append(
                    AttributeValue(candidate.name, name, candidate.attributes[name])
                )
        return results
    if test == "..":
        parent = node.parent
        while parent is not None and parent.kind in ("object", "array"):
            parent = parent.parent
        return [parent] if parent is not None else []
    pool = (
        _logical_children(node)
        if step.axis == "child"
        else _logical_descendants(node)
    )
    if test == "text()":
        return [child for child in pool if child.kind in ("text", "number", "boolean", "null")]
    if test == "*":
        return [child for child in pool if child.kind == "element"]
    return [
        child for child in pool if child.kind == "element" and child.name == test
    ]


def _filter(predicate: _Predicate, items: list[Result]) -> list[Result]:
    if predicate.position is not None:
        index = predicate.position - 1
        return [items[index]] if 0 <= index < len(items) else []
    kept = []
    for item in items:
        if _predicate_holds(predicate, item):
            kept.append(item)
    return kept


def _predicate_holds(predicate: _Predicate, item: Result) -> bool:
    if not isinstance(item, Node):
        return False
    if predicate.attribute is not None:
        value = item.attributes.get(predicate.attribute)
        if predicate.op is None:
            return value is not None
        return value is not None and _compare(value, predicate.op, predicate.literal)
    operands = predicate.relpath.evaluate(item)
    if predicate.op is None:
        return bool(operands)
    return any(
        _compare(operand.string_value(), predicate.op, predicate.literal)
        for operand in operands
    )


def _compare(left: str, op: str, right: Any) -> bool:
    if isinstance(right, (int, float)):
        try:
            left_value: Any = float(left)
        except ValueError:
            return False
        right_value: Any = float(right)
    else:
        left_value, right_value = left, str(right)
    if op == "=":
        return left_value == right_value
    if op == "!=":
        return left_value != right_value
    if op == "<":
        return left_value < right_value
    if op == "<=":
        return left_value <= right_value
    if op == ">":
        return left_value > right_value
    if op == ">=":
        return left_value >= right_value
    raise PathError(f"unknown operator {op!r}")
