"""XML/JSON unified tree model with XPath (the MarkLogic pattern)."""

from repro.xmlmodel.store import TreeStore
from repro.xmlmodel.tree import Node, from_json, parse_xml
from repro.xmlmodel.xpath import AttributeValue, XPath, evaluate

__all__ = [
    "TreeStore",
    "Node",
    "from_json",
    "parse_xml",
    "AttributeValue",
    "XPath",
    "evaluate",
]
