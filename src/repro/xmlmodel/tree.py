"""The MarkLogic-style unified tree model (slides 56-57).

"MarkLogic models a JSON document similarly to an XML document = a tree,
rooted at an auxiliary document node; nodes below: JSON objects, arrays, and
text, number, Boolean, null values — a unified way to manage and index
documents of both types."

One :class:`Node` class represents both formats:

=============  =======================  ==========================
kind           XML source               JSON source
=============  =======================  ==========================
``document``   the document root        the document root
``element``    ``<product …>``          object property (name set)
``object``     —                        ``{…}``
``array``      —                        ``[…]``
``text``       text content             string value
``number``     —                        number value
``boolean``    —                        true/false
``null``       —                        null
=============  =======================  ==========================

XML attributes live in ``attributes``.  Both sources answer the same XPath
queries (:mod:`repro.xmlmodel.xpath`) — which is what makes the slide-76
cross-format join work.
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from typing import Any, Iterator, Optional

from repro.core import datamodel
from repro.errors import DataModelError, SchemaError

__all__ = ["Node", "parse_xml", "from_json"]

_LEAF_KINDS = ("text", "number", "boolean", "null")
_KINDS = ("document", "element", "object", "array") + _LEAF_KINDS


class Node:
    """One node of the unified tree."""

    __slots__ = ("kind", "name", "value", "attributes", "children", "parent")

    def __init__(
        self,
        kind: str,
        name: str = "",
        value: Any = None,
        attributes: Optional[dict[str, str]] = None,
        children: Optional[list["Node"]] = None,
    ):
        if kind not in _KINDS:
            raise SchemaError(f"unknown node kind {kind!r}")
        self.kind = kind
        self.name = name
        self.value = value
        self.attributes = dict(attributes or {})
        self.children: list[Node] = []
        self.parent: Optional[Node] = None
        for child in children or []:
            self.append(child)

    # -- structure -------------------------------------------------------------

    def append(self, child: "Node") -> "Node":
        child.parent = self
        self.children.append(child)
        return child

    def descendants(self) -> Iterator["Node"]:
        """Document-order descendants (self excluded)."""
        for child in self.children:
            yield child
            yield from child.descendants()

    def child_elements(self, name: Optional[str] = None) -> list["Node"]:
        return [
            child
            for child in self.children
            if child.kind == "element" and (name is None or child.name == name)
        ]

    # -- values -----------------------------------------------------------------

    def string_value(self) -> str:
        """XPath string-value: concatenated descendant text/leaf values."""
        if self.kind == "text":
            return self.value or ""
        if self.kind in ("number", "boolean", "null"):
            if self.value is None:
                return ""
            if self.value is True:
                return "true"
            if self.value is False:
                return "false"
            return repr(self.value) if not isinstance(self.value, float) else str(self.value)
        return "".join(child.string_value() for child in self.children)

    def typed_value(self) -> Any:
        """Leaf value with its JSON type where known, else the string value."""
        if self.kind in ("number", "boolean", "null"):
            return self.value
        if self.kind == "text":
            return self.value
        if self.kind == "array":
            return [child.typed_value() for child in self.children]
        if self.kind == "object":
            return {child.name: child.typed_value() for child in self.children}
        if self.kind == "element" and len(self.children) == 1:
            return self.children[0].typed_value()
        return self.string_value()

    # -- serialization --------------------------------------------------------------

    def to_xml(self) -> str:
        """Serialize an element (or document holding one element) to XML."""
        if self.kind == "document":
            roots = [child for child in self.children if child.kind == "element"]
            if len(roots) != 1:
                raise DataModelError("XML documents need exactly one root element")
            return roots[0].to_xml()
        if self.kind != "element":
            raise DataModelError(f"cannot serialize a {self.kind} node to XML")
        element = self._to_etree()
        return ElementTree.tostring(element, encoding="unicode")

    def _to_etree(self) -> ElementTree.Element:
        element = ElementTree.Element(self.name, dict(self.attributes))
        text_parts = []
        for child in self.children:
            if child.kind == "element":
                element.append(child._to_etree())
            else:
                text_parts.append(child.string_value())
        if text_parts:
            element.text = "".join(text_parts)
        return element

    def to_json(self) -> Any:
        """Back to a JSON value (trees built by :func:`from_json` round-trip
        exactly; XML elements fall back to their string value, as real
        systems' lossy json:transform does)."""
        if self.kind == "document":
            if len(self.children) != 1:
                raise DataModelError("document has no single content root")
            return self.children[0].to_json()
        if self.kind in ("number", "boolean", "null", "text"):
            return self.value
        if self.kind == "array":
            return [child.to_json() for child in self.children]
        if self.kind == "object":
            result: dict[str, Any] = {}
            for child in self.children:
                mark = child.attributes.get(ARRAY_MARK)
                if mark == "empty":
                    result[child.name] = []
                elif mark == "1":
                    result.setdefault(child.name, []).append(child.to_json())
                else:
                    result[child.name] = child.to_json()
            return result
        # element: a JSON property wrapper holds exactly one value node;
        # anything else is XML content rendered as its string value.
        if len(self.children) == 1 and self.children[0].kind != "element":
            return self.children[0].to_json()
        return self.string_value()

    def to_dict(self) -> dict:
        """Storable dict form (used by the XML store)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "value": self.value,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Node":
        return cls(
            data["kind"],
            data.get("name", ""),
            data.get("value"),
            data.get("attributes") or {},
            [cls.from_dict(child) for child in data.get("children", [])],
        )

    def __repr__(self) -> str:
        label = self.name or self.kind
        return f"<Node {self.kind}:{label} children={len(self.children)}>"


def parse_xml(text: str) -> Node:
    """Parse an XML string into a unified tree rooted at a document node."""
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as error:
        raise DataModelError(f"bad XML: {error}") from error
    document = Node("document")
    document.append(_from_etree(root))
    return document


def _from_etree(element: ElementTree.Element) -> Node:
    node = Node("element", name=element.tag, attributes=dict(element.attrib))
    if element.text and element.text.strip():
        node.append(Node("text", value=element.text))
    for child in element:
        node.append(_from_etree(child))
        if child.tail and child.tail.strip():
            node.append(Node("text", value=child.tail))
    return node


#: internal attribute marking property elements that came from a JSON array
ARRAY_MARK = "__array__"


def from_json(value: Any, name: str = "") -> Node:
    """Build the unified tree for a JSON value (slide 57's picture).

    Object properties become *element* nodes (so XPath name tests address
    them exactly like XML elements).  A property whose value is an array
    becomes one element per item — the XML idiom for repetition — so XPath
    predicates apply per item (``/Orderlines[Price > 50]`` filters order
    lines, not the whole array).  Array wrappers carry the internal
    attribute :data:`ARRAY_MARK` so :meth:`Node.to_json` can rebuild the
    array faithfully (including empty arrays).
    """
    document = Node("document")
    document.append(_json_node(datamodel.normalize(value), name))
    return document


def _json_node(value: Any, name: str) -> Node:
    tag = datamodel.type_of(value)
    if tag is datamodel.TypeTag.OBJECT:
        container = Node("object", name=name)
        for key, item in value.items():
            for wrapper in _property_nodes(key, item):
                container.append(wrapper)
        return container
    if tag is datamodel.TypeTag.ARRAY:
        container = Node("array", name=name)
        for item in value:
            container.append(_json_node(item, name))
        return container
    if tag is datamodel.TypeTag.STRING:
        return Node("text", name=name, value=value)
    if tag is datamodel.TypeTag.NUMBER:
        return Node("number", name=name, value=value)
    if tag is datamodel.TypeTag.BOOL:
        return Node("boolean", name=name, value=value)
    return Node("null", name=name, value=None)


def _property_nodes(key: str, item: Any) -> list[Node]:
    """Element wrapper(s) for one object property."""
    if datamodel.type_of(item) is datamodel.TypeTag.ARRAY:
        if not item:
            return [Node("element", name=key, attributes={ARRAY_MARK: "empty"})]
        wrappers = []
        for member in item:
            wrapper = Node("element", name=key, attributes={ARRAY_MARK: "1"})
            wrapper.append(_json_node(member, key))
            wrappers.append(wrapper)
        return wrappers
    wrapper = Node("element", name=key)
    wrapper.append(_json_node(item, key))
    return [wrapper]
