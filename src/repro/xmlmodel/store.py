"""XML/JSON tree store — the MarkLogic pattern (slides 56-58, 76).

Documents are unified trees keyed by URI (``xdmp:document-insert``); both
``insert_xml`` and ``insert_json`` land in the same store and answer the
same XPath queries, enabling the slide-76 join between an XML ``<product>``
and a JSON order.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.core.context import BaseStore, EngineContext
from repro.core.cursor import IteratorScanCursor, ScanCursor, warn_deprecated_scan
from repro.errors import UnknownCollectionError
from repro.txn.manager import Transaction
from repro.xmlmodel.tree import Node, from_json, parse_xml
from repro.xmlmodel.xpath import Result, XPath

__all__ = ["TreeStore"]


class TreeStore(BaseStore):
    """URI-keyed store of unified XML/JSON trees."""

    model = "xml"

    # -- document management ---------------------------------------------------

    def insert_xml(
        self, uri: str, text: str, txn: Optional[Transaction] = None
    ) -> None:
        """``xdmp:document-insert`` for an XML payload."""
        node = parse_xml(text)
        self._put(uri, {"format": "xml", "tree": node.to_dict()}, txn)

    def insert_json(
        self, uri: str, value: Any, txn: Optional[Transaction] = None
    ) -> None:
        """``xdmp.documentInsert`` for a JSON payload (slide 58)."""
        node = from_json(value)
        self._put(uri, {"format": "json", "tree": node.to_dict()}, txn)

    def doc(self, uri: str, txn: Optional[Transaction] = None) -> Node:
        """``fn:doc(uri)`` — the document node; raises when absent."""
        stored = self._raw_get(uri, txn)
        if stored is None:
            raise UnknownCollectionError(f"no document at URI {uri!r}")
        return Node.from_dict(stored["tree"])

    def exists(self, uri: str, txn: Optional[Transaction] = None) -> bool:
        return self.contains(uri, txn)

    def format_of(self, uri: str, txn: Optional[Transaction] = None) -> str:
        stored = self._raw_get(uri, txn)
        if stored is None:
            raise UnknownCollectionError(f"no document at URI {uri!r}")
        return stored["format"]

    def delete(self, uri: str, txn: Optional[Transaction] = None) -> bool:
        return self._delete_key(uri, txn)

    def scan_cursor(self, txn: Optional[Transaction] = None) -> ScanCursor:
        """Unified batched scan: ``{"uri": …, "format": …}`` frames in URI
        order (trees themselves stay behind :meth:`doc` — they are not
        frame-shaped)."""
        stored = sorted(self._raw_scan(txn), key=lambda pair: pair[0])
        return IteratorScanCursor(
            {"uri": uri, "format": record["format"]} for uri, record in stored
        )

    def uris(self, txn: Optional[Transaction] = None) -> list[str]:
        """Deprecated compat shim — use :meth:`scan_cursor` instead."""
        warn_deprecated_scan("TreeStore.uris()")
        return [frame["uri"] for frame in self.scan_cursor(txn=txn)]

    # -- queries ------------------------------------------------------------------

    def xpath(
        self, uri: str, expression: str, txn: Optional[Transaction] = None
    ) -> list[Result]:
        """Evaluate an XPath against one document."""
        return XPath(expression).evaluate(self.doc(uri, txn))

    def xpath_values(
        self, uri: str, expression: str, txn: Optional[Transaction] = None
    ) -> list[str]:
        return XPath(expression).string_values(self.doc(uri, txn))

    def query_all(
        self, expression: str, txn: Optional[Transaction] = None
    ) -> Iterator[tuple[str, Result]]:
        """Evaluate an XPath against every document: (uri, result) pairs —
        the collection-wide search MarkLogic's universal index serves."""
        compiled = XPath(expression)
        for frame in self.scan_cursor(txn=txn):
            uri = frame["uri"]
            for result in compiled.evaluate(self.doc(uri, txn)):
                yield uri, result
