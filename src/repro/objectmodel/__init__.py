"""Object model: Caché-style globals + classes with flattened inheritance."""

from repro.objectmodel.classes import ObjectClass, ObjectStore
from repro.objectmodel.globals import GlobalsStore

__all__ = ["ObjectClass", "ObjectStore", "GlobalsStore"]
