"""The object model: classes, inheritance, and SQL projection (slides 67/71).

Caché's object model per the tutorial:

* classes with typed properties that "can inherit (all properties) from
  other classes" (OrientDB phrases it the same way, slide 61);
* objects stored physically in sparse multidimensional arrays — here each
  instance lives in a :class:`repro.objectmodel.globals.GlobalsStore` under
  ``(class, oid, property)``, which is literally the Caché storage layout;
* "SQL + object concepts: instances of classes accessible as rows of
  tables; inheritance is 'flattened'" (slide 71) —
  :meth:`ObjectStore.as_table` projects a class *and all its subclasses*
  onto the class's flattened column set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.core import datamodel
from repro.core.context import EngineContext
from repro.core.cursor import IteratorScanCursor, ScanCursor
from repro.errors import SchemaError, UnknownCollectionError
from repro.objectmodel.globals import GlobalsStore
from repro.txn.manager import Transaction

__all__ = ["ObjectClass", "ObjectStore"]

_PROPERTY_TYPES = ("number", "string", "bool", "any")


@dataclass(frozen=True)
class ObjectClass:
    """One class definition."""

    name: str
    properties: tuple[tuple[str, str], ...]
    parent: Optional[str] = None


class ObjectStore:
    """A class registry + object instances over one globals store."""

    def __init__(self, context: EngineContext, name: str = "objects"):
        self.name = name
        self._globals = GlobalsStore(context, name)
        self._classes: dict[str, ObjectClass] = {}
        self._next_oid = 1

    @property
    def globals(self) -> GlobalsStore:
        return self._globals

    def truncate(self) -> None:
        """Drop every instance (class definitions survive)."""
        self._globals.truncate()

    # -- class definitions -------------------------------------------------------

    def define_class(
        self,
        name: str,
        properties: dict[str, str],
        extends: Optional[str] = None,
    ) -> ObjectClass:
        if name in self._classes:
            raise SchemaError(f"class {name!r} already defined")
        if extends is not None and extends not in self._classes:
            raise SchemaError(f"unknown parent class {extends!r}")
        for prop, type_name in properties.items():
            if type_name not in _PROPERTY_TYPES:
                raise SchemaError(
                    f"class {name!r}: property {prop!r} has unknown type "
                    f"{type_name!r} (use {_PROPERTY_TYPES})"
                )
        cls = ObjectClass(name, tuple(sorted(properties.items())), extends)
        self._classes[name] = cls
        return cls

    def class_of(self, name: str) -> ObjectClass:
        cls = self._classes.get(name)
        if cls is None:
            raise UnknownCollectionError(f"unknown class {name!r}")
        return cls

    def all_properties(self, name: str) -> dict[str, str]:
        """The class's property set including everything inherited
        ("can inherit all properties from other classes")."""
        merged: dict[str, str] = {}
        chain: list[ObjectClass] = []
        cls: Optional[ObjectClass] = self.class_of(name)
        while cls is not None:
            chain.append(cls)
            cls = self._classes.get(cls.parent) if cls.parent else None
        for ancestor in reversed(chain):
            for prop, type_name in ancestor.properties:
                merged[prop] = type_name
        return merged

    def is_subclass_of(self, name: str, ancestor: str) -> bool:
        cls: Optional[ObjectClass] = self.class_of(name)
        while cls is not None:
            if cls.name == ancestor:
                return True
            cls = self._classes.get(cls.parent) if cls.parent else None
        return False

    def subclasses_of(self, name: str) -> list[str]:
        """*name* itself plus every (transitive) subclass."""
        self.class_of(name)
        return sorted(
            candidate
            for candidate in self._classes
            if self.is_subclass_of(candidate, name)
        )

    # -- instances -----------------------------------------------------------------

    @staticmethod
    def _check_type(value: Any, type_name: str, context: str) -> Any:
        if value is None or type_name == "any":
            return datamodel.normalize(value)
        tag = datamodel.type_of(value)
        expected = {
            "number": datamodel.TypeTag.NUMBER,
            "string": datamodel.TypeTag.STRING,
            "bool": datamodel.TypeTag.BOOL,
        }[type_name]
        if tag is not expected:
            raise SchemaError(
                f"{context}: expected {type_name}, got {datamodel.type_name(value)}"
            )
        return value

    def create(
        self,
        class_name: str,
        properties: Optional[dict] = None,
        txn: Optional[Transaction] = None,
    ) -> int:
        """Instantiate; returns the object id.  Physically: one node per
        property in the sparse multidimensional array."""
        schema = self.all_properties(class_name)
        properties = properties or {}
        unknown = set(properties) - set(schema)
        if unknown:
            raise SchemaError(
                f"class {class_name!r} has no properties {sorted(unknown)}"
            )
        oid = self._next_oid
        self._next_oid += 1
        self._globals.set((class_name, oid), "exists", txn)
        for prop, value in properties.items():
            checked = self._check_type(
                value, schema[prop], f"{class_name}.{prop}"
            )
            if checked is not None:
                self._globals.set((class_name, oid, prop), checked, txn)
        return oid

    def get(
        self, class_name: str, oid: int, txn: Optional[Transaction] = None
    ) -> Optional[dict]:
        if not self._globals.defined((class_name, oid), txn):
            return None
        schema = self.all_properties(class_name)
        instance = {"_class": class_name, "_oid": oid}
        for prop in schema:
            instance[prop] = self._globals.get((class_name, oid, prop), txn)
        return instance

    def set_property(
        self,
        class_name: str,
        oid: int,
        prop: str,
        value: Any,
        txn: Optional[Transaction] = None,
    ) -> None:
        schema = self.all_properties(class_name)
        if prop not in schema:
            raise SchemaError(f"class {class_name!r} has no property {prop!r}")
        if not self._globals.defined((class_name, oid), txn):
            raise UnknownCollectionError(f"no {class_name} object {oid}")
        self._globals.set(
            (class_name, oid, prop),
            self._check_type(value, schema[prop], f"{class_name}.{prop}"),
            txn,
        )

    def delete(
        self, class_name: str, oid: int, txn: Optional[Transaction] = None
    ) -> bool:
        return self._globals.kill((class_name, oid), txn) > 0

    def instances_of(
        self,
        class_name: str,
        include_subclasses: bool = True,
        txn: Optional[Transaction] = None,
    ) -> Iterator[dict]:
        """Polymorphic iteration over a class hierarchy."""
        names = (
            self.subclasses_of(class_name)
            if include_subclasses
            else [class_name]
        )
        for name in names:
            for oid in self._globals.children((name,), txn):
                instance = self.get(name, oid, txn)
                if instance is not None:
                    yield instance

    def scan_cursor(self, txn: Optional[Transaction] = None) -> ScanCursor:
        """Unified batched scan over every instance of every class, in
        class-name then oid order — makes the object store FOR-able in
        MMQL like any other model.  Frames are instance dicts
        (``{"_class": …, "_oid": …, **properties}``)."""

        def _frames():
            for name in sorted(self._classes):
                for oid in self._globals.children((name,), txn):
                    instance = self.get(name, oid, txn)
                    if instance is not None:
                        yield instance

        return IteratorScanCursor(_frames())

    # -- the SQL projection (slide 71) ------------------------------------------------

    def as_table(
        self, class_name: str, txn: Optional[Transaction] = None
    ) -> list[dict]:
        """Instances of *class_name* and its subclasses as rows with the
        class's flattened (inherited) columns — "inheritance is flattened".
        Subclass-only properties are projected away; every row carries the
        pseudo-columns ``_class`` and ``_oid``."""
        columns = list(self.all_properties(class_name))
        rows = []
        for instance in self.instances_of(class_name, True, txn):
            row = {"_class": instance["_class"], "_oid": instance["_oid"]}
            for column in columns:
                row[column] = instance.get(column)
            rows.append(row)
        rows.sort(key=lambda row: row["_oid"])
        return rows
