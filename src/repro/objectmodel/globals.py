"""Sparse multidimensional arrays — InterSystems Caché "globals" (slide 67).

"Caché stores data in sparse, multidimensional arrays, capable of carrying
hierarchically structured data", with "direct manipulation of
multidimensional data structures" as one of its access APIs.

A global is a map from *subscript tuples* (mixed strings/numbers) to
values, with the classic operations:

* ``set(("Person", 1, "name"), "Mary")`` / ``get(…)``;
* ``kill(("Person", 1))`` — remove a whole subtree;
* ``order(("Person", 1))`` — next sibling subscript (Caché's ``$ORDER``),
  in the engine's total order;
* ``children`` / ``walk`` — subtree iteration in subscript order.

Storage is the shared backend (one record per node, keyed by the canonical
subscript tuple) plus a B+tree over the subscript tuples, which is what
makes ``$ORDER`` and subtree scans logarithmic — and is exactly "carrying
hierarchically structured data" in ordered sparse arrays.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.core import datamodel
from repro.core.context import BaseStore, EngineContext
from repro.errors import SchemaError
from repro.indexes.btree import BPlusTree
from repro.storage.log import LogEntry, LogOp
from repro.txn.manager import Transaction

__all__ = ["GlobalsStore"]


def _check_subscripts(subscripts: tuple) -> tuple:
    if not isinstance(subscripts, (tuple, list)) or not subscripts:
        raise SchemaError("subscripts must be a non-empty tuple")
    for subscript in subscripts:
        if isinstance(subscript, bool) or not isinstance(
            subscript, (str, int, float)
        ):
            raise SchemaError(
                f"subscripts are strings or numbers, got {subscript!r}"
            )
    return tuple(subscripts)


class GlobalsStore(BaseStore):
    """One named global (e.g. ``^Person``)."""

    model = "glob"

    def __init__(self, context: EngineContext, name: str):
        super().__init__(context, name)
        # Ordered directory of live subscript tuples (committed state).
        self._order_tree = BPlusTree(order=32)
        context.log.subscribe(self._on_log_entry)

    @staticmethod
    def _key(subscripts: tuple) -> str:
        return datamodel.canonical_json(list(subscripts))

    def _on_log_entry(self, entry: LogEntry) -> None:
        if entry.namespace != self.namespace:
            return
        if entry.op is LogOp.DROP_NAMESPACE:
            self._order_tree.clear()
            return
        if entry.op is LogOp.INSERT:
            self._order_tree.insert(entry.value["subs"], entry.key)
        elif entry.op is LogOp.DELETE and entry.before is not None:
            self._order_tree.delete(entry.before["subs"], entry.key)

    # -- node operations ---------------------------------------------------------

    def set(
        self, subscripts: tuple, value: Any, txn: Optional[Transaction] = None
    ) -> None:
        subscripts = _check_subscripts(subscripts)
        record = {"subs": list(subscripts), "value": datamodel.normalize(value)}
        self._put(self._key(subscripts), record, txn)

    def get(
        self, subscripts: tuple, txn: Optional[Transaction] = None
    ) -> Any:
        subscripts = _check_subscripts(subscripts)
        record = self._raw_get(self._key(subscripts), txn)
        return None if record is None else record["value"]

    def defined(self, subscripts: tuple, txn: Optional[Transaction] = None) -> bool:
        return self._raw_get(self._key(_check_subscripts(subscripts)), txn) is not None

    def kill(self, subscripts: tuple, txn: Optional[Transaction] = None) -> int:
        """Remove the node and its whole subtree; returns nodes removed."""
        subscripts = _check_subscripts(subscripts)
        doomed = [
            tuple(record["subs"])
            for record in self._subtree_records(subscripts, txn)
        ]
        for node in doomed:
            self._delete_key(self._key(node), txn)
        return len(doomed)

    # -- ordered navigation ---------------------------------------------------------

    def _subtree_records(
        self, prefix: tuple, txn: Optional[Transaction]
    ) -> Iterator[dict]:
        prefix_list = list(prefix)
        if txn is None:
            # B+tree range over the committed order directory.
            for subs, _key in self._order_tree.range_items(low=prefix_list):
                if subs[: len(prefix_list)] != prefix_list:
                    break
                record = self._raw_get(self._key(tuple(subs)))
                if record is not None:
                    yield record
        else:
            records = sorted(
                (record for _key, record in self._raw_scan(txn)
                 if record["subs"][: len(prefix_list)] == prefix_list),
                key=lambda record: datamodel.SortKey(record["subs"]),
            )
            yield from records

    def walk(
        self, prefix: tuple = (), txn: Optional[Transaction] = None
    ) -> Iterator[tuple[tuple, Any]]:
        """(subscripts, value) of the subtree under *prefix*, in order."""
        if prefix:
            prefix = _check_subscripts(prefix)
            for record in self._subtree_records(prefix, txn):
                yield tuple(record["subs"]), record["value"]
        else:
            records = sorted(
                (record for _key, record in self._raw_scan(txn)),
                key=lambda record: datamodel.SortKey(record["subs"]),
            )
            for record in records:
                yield tuple(record["subs"]), record["value"]

    def children(
        self, prefix: tuple = (), txn: Optional[Transaction] = None
    ) -> list[Any]:
        """Distinct next-level subscripts under *prefix*, in order."""
        seen: list[Any] = []
        depth = len(prefix)
        for subscripts, _value in self.walk(prefix, txn) if prefix else self.walk(txn=txn):
            if len(subscripts) > depth:
                child = subscripts[depth]
                if not seen or datamodel.compare(seen[-1], child) != 0:
                    if all(
                        datamodel.compare(child, existing) != 0
                        for existing in seen
                    ):
                        seen.append(child)
        return seen

    def order(
        self, subscripts: tuple, txn: Optional[Transaction] = None
    ) -> Optional[Any]:
        """Caché ``$ORDER``: the next sibling subscript after *subscripts*
        (None when it was the last).

        Outside transactions this is one B+tree range probe: start just
        past the current sibling's subtree and read the first node that
        still shares the parent prefix.
        """
        subscripts = _check_subscripts(subscripts)
        parent = list(subscripts[:-1])
        current = subscripts[-1]
        depth = len(parent)
        if txn is not None:
            siblings = (
                self.children(tuple(parent), txn)
                if parent
                else self.children(txn=txn)
            )
            for sibling in siblings:
                if datamodel.compare(sibling, current) > 0:
                    return sibling
            return None
        # Everything under (parent..., current, …) sorts before
        # (parent..., next_sibling, …); objects sort after any scalar or
        # array in the value order, so parent + [current, OBJECT_MAX] is an
        # upper bound for the current subtree.  Simpler and exact: scan the
        # range starting right after the current node itself and skip
        # entries still inside the current sibling's subtree.
        low = parent + [current]
        for subs, _key in self._order_tree.range_items(low=low, include_low=False):
            if subs[:depth] != parent or len(subs) <= depth:
                return None
            sibling = subs[depth]
            if datamodel.compare(sibling, current) > 0:
                return sibling
        return None
