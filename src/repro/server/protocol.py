"""Length-prefixed JSON wire protocol shared by server and client.

A **frame** is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object.  Both directions use the same
framing; what differs is the payload shape:

* **Request** — ``{"id": N, "op": "query", "params": {...}}``.  ``id`` is a
  client-chosen correlation number echoed back verbatim; ``params`` carries
  op-specific arguments (bind variables ride inside ``params.bind_vars`` as
  plain JSON values).  An optional top-level ``"trace"`` object —
  ``{"trace_id": <32 hex>, "parent_span_id": <16 hex>}``, W3C-traceparent
  style — propagates the client's trace context: the server continues that
  trace for the request and returns its span tree.  Peers that predate
  tracing simply ignore the extra key, so propagation needs no protocol
  version bump (the server advertises ``features: ["trace", ...]`` in the
  handshake so clients can tell).
* **Success response** — ``{"id": N, "ok": true, "result": {...}}``; when
  the request carried trace context, also ``"trace": {<span summary
  tree>}`` (see :func:`repro.obs.tracing.span_summary`).
* **Error response** — ``{"id": N, "ok": false, "error": {"code": C,
  "message": M, "details": {...}}}`` where ``C`` is a stable code from
  :mod:`repro.errors`; the client re-raises the matching class via
  :func:`repro.errors.error_for_code`.  Error responses to traced
  requests carry the ``"trace"`` key too.
* **Handshake** — immediately after accepting a connection the server sends
  one unsolicited frame ``{"hello": {"server": "repro", "version": ...,
  "protocol": 1, "session": S}}`` (or an error frame with
  ``SERVER_OVERLOADED`` when the session limit is hit, then closes).

Values that are not JSON-native (dates, bytes reprs, …) are serialized with
``default=str`` — the same lossy-but-total rule the shell uses to print
rows.

Failpoints ``server.frame_read`` / ``server.frame_write`` sit on the
server-side frame boundary, and ``client.frame_read`` /
``client.frame_write`` on the client side, so the torture and chaos
suites can sever, stall, truncate or duplicate the stream
mid-conversation.  All four route through :mod:`repro.fault.net`, which
interprets the network effects (``drop_conn``, ``delay``,
``truncate_frame``, ``duplicate_frame``, ``partition``); the plain
``error`` effect still behaves as before — the connection is dropped,
which is exactly what a torn TCP stream looks like to the peer.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Optional

from repro.errors import (
    ProtocolError,
    code_of,
    error_details,
    error_for_code,
)
from repro.fault import net as fault_net
from repro.fault import registry as fault_registry
from repro.obs import metrics as obs_metrics

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
    "read_frame_async",
    "write_frame_async",
    "write_payload_async",
    "request",
    "parse_trace_context",
    "ok_response",
    "error_response",
    "raise_wire_error",
]

#: Bumped on any incompatible change to the frame or payload shapes; the
#: client refuses a handshake with a different major protocol.
PROTOCOL_VERSION = 1

#: Default per-frame size cap.  Large enough for any sane result page,
#: small enough that a corrupt length prefix cannot make a peer try to
#: buffer gigabytes.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")

FP_FRAME_READ = fault_registry.register(
    "server.frame_read",
    "server-side wire frame read (net effects; error => connection drop)",
)
FP_FRAME_WRITE = fault_registry.register(
    "server.frame_write",
    "server-side wire frame write (net effects; error => connection drop)",
)
FP_CLIENT_READ = fault_registry.register(
    "client.frame_read",
    "client-side wire frame read (net effects; error => connection drop)",
)
FP_CLIENT_WRITE = fault_registry.register(
    "client.frame_write",
    "client-side wire frame write (net effects; error => connection drop)",
)


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """Header + JSON body for one payload object."""
    body = json.dumps(payload, default=str, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """Parse a frame body; the payload must be a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(f"undecodable frame payload: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_length(length: int, max_frame: int) -> None:
    if length > max_frame:
        raise ProtocolError(
            f"peer announced a {length}-byte frame "
            f"(limit {max_frame}) — corrupt length prefix?"
        )


# ---------------------------------------------------------------------------
# Blocking I/O (client side, plain sockets)
# ---------------------------------------------------------------------------


def write_frame(sock: socket.socket, payload: dict) -> int:
    """Send one frame; returns the bytes written."""
    data = encode_frame(payload)
    fault_net.send_bytes(sock, data, FP_CLIENT_WRITE)
    return len(data)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly *count* bytes; None on clean EOF at a frame boundary,
    :class:`ProtocolError` on EOF mid-frame."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count and not chunks:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(
    sock: socket.socket, max_frame: int = MAX_FRAME_BYTES
) -> Optional[dict]:
    """Read one frame; None on clean EOF before any header byte."""
    if FP_CLIENT_READ.armed:
        fault_net.recv_gate(sock, FP_CLIENT_READ)
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length, max_frame)
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ProtocolError("connection closed between header and payload")
    return decode_payload(body)


# ---------------------------------------------------------------------------
# Async I/O (server side)
# ---------------------------------------------------------------------------


async def read_frame_async(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME_BYTES
) -> Optional[dict]:
    """Read one frame from a stream reader; None on clean EOF."""
    if FP_FRAME_READ.armed:
        await fault_net.recv_gate_async(FP_FRAME_READ)
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(
            f"connection closed mid-header ({len(error.partial)}/{_HEADER.size})"
        ) from error
    (length,) = _HEADER.unpack(header)
    _check_length(length, max_frame)
    try:
        body = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"connection closed mid-frame ({len(error.partial)}/{length} bytes)"
        ) from error
    if obs_metrics.ENABLED:
        obs_metrics.counter("server_bytes_read_total").inc(_HEADER.size + length)
    return decode_payload(body)


async def write_payload_async(writer: asyncio.StreamWriter, data: bytes) -> int:
    """Send an already-encoded frame (callers that time serialization
    separately encode first, then write here); returns bytes written."""
    if FP_FRAME_WRITE.armed:
        await fault_net.send_bytes_async(writer, data, FP_FRAME_WRITE)
    else:
        writer.write(data)
        await writer.drain()
    if obs_metrics.ENABLED:
        obs_metrics.counter("server_bytes_written_total").inc(len(data))
    return len(data)


async def write_frame_async(writer: asyncio.StreamWriter, payload: dict) -> int:
    """Send one frame through a stream writer; returns bytes written."""
    return await write_payload_async(writer, encode_frame(payload))


# ---------------------------------------------------------------------------
# Payload shapes
# ---------------------------------------------------------------------------


def request(
    request_id: int, op: str, trace: Optional[dict] = None, **params: Any
) -> dict:
    payload = {"id": request_id, "op": op, "params": params}
    if trace is not None:
        payload["trace"] = trace
    return payload


def parse_trace_context(frame: dict):
    """The :class:`repro.obs.tracing.SpanContext` a request frame carries,
    or None (absent or malformed — a bad trace never fails the request)."""
    trace = frame.get("trace")
    if not isinstance(trace, dict):
        return None
    trace_id = trace.get("trace_id")
    parent = trace.get("parent_span_id")
    if not isinstance(trace_id, str) or not isinstance(parent, str):
        return None
    from repro.obs.tracing import SpanContext

    return SpanContext(trace_id.lower(), parent.lower())


def ok_response(request_id: Optional[int], result: Any) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Optional[int], error: BaseException) -> dict:
    """Serialize any exception into an error frame payload.

    Engine errors travel as their stable code plus JSON-safe instance
    attributes; anything else (a genuine server bug) becomes ``INTERNAL``
    with the exception type prefixed so the client log is actionable.
    """
    code = code_of(error)
    message = str(error)
    if code == "INTERNAL":
        message = f"{type(error).__name__}: {message}"
    return {
        "id": request_id,
        "ok": False,
        "error": {
            "code": code,
            "message": message,
            "details": error_details(error),
        },
    }


def raise_wire_error(error_obj: dict) -> None:
    """Client side: re-raise the typed engine error an error frame carries."""
    if not isinstance(error_obj, dict):
        raise ProtocolError(f"malformed error frame: {error_obj!r}")
    raise error_for_code(
        str(error_obj.get("code", "INTERNAL")),
        str(error_obj.get("message", "unknown server error")),
        error_obj.get("details") or {},
    )
