"""Per-connection session state.

One TCP connection = one :class:`Session`.  Requests on a single session
execute strictly in order (the connection handler reads, dispatches and
answers one frame at a time), so session state needs no locking of its
own — *cross*-session concurrency is what the engine-side locks
(catalog, plan cache, transaction manager) absorb.

A session owns:

* at most one **active transaction** — opened with ``begin``, consumed by
  ``commit``/``abort``, threaded through every ``query`` in between, and
  rolled back automatically when the connection dies mid-transaction (a
  vanished client must never leave locks behind);
* **guardrail overrides** — per-session ``timeout``/``max_rows`` that take
  precedence over the database defaults for this session only (the server
  always enforces whichever is in effect — a remote client cannot opt out
  of the host's ``db.guardrails`` by simply not sending limits);
* a requested **consistency level** (applied per named namespace);
* **server-side cursors** — open streaming results (``query_open`` /
  ``cursor_next``), capped per session and reaped when idle, and always
  closed with the connection so a vanished client cannot leak engine
  cursors;
* bookkeeping for ``stats`` and the ``.sessions`` listings: request and
  error counts, last op, start time.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Optional

from repro.errors import CursorLimitError, CursorNotFoundError, SessionStateError

__all__ = ["ServerCursor", "Session"]

_session_ids = itertools.count(1)


class ServerCursor:
    """One open streaming result held by a session.

    Wraps an engine :class:`~repro.query.engine.QueryCursor` (or anything
    with ``next_batch``/``close``/``stats``) plus the wire-level
    bookkeeping: chunk size, idle clock, and the query text for ``stats``
    listings."""

    __slots__ = ("cursor_id", "cursor", "chunk_rows", "created_at",
                 "last_used_at", "text", "fetches", "trace_id")

    def __init__(self, cursor_id: int, cursor: Any, chunk_rows: int,
                 text: str, now: Optional[float] = None,
                 trace_id: Optional[str] = None):
        self.cursor_id = cursor_id
        self.cursor = cursor
        self.chunk_rows = max(int(chunk_rows), 1)
        self.created_at = time.monotonic() if now is None else now
        self.last_used_at = self.created_at
        self.text = text
        #: ``cursor_next`` calls served so far (the opening chunk is 0).
        self.fetches = 0
        #: Trace the stream was opened under, so every later fetch (and
        #: the reaper) correlates back to one distributed trace.
        self.trace_id = trace_id

    def touch(self, now: Optional[float] = None) -> None:
        self.last_used_at = time.monotonic() if now is None else now

    def close(self) -> None:
        try:
            self.cursor.close()
        except Exception:
            pass

    def describe(self) -> dict:
        return {
            "cursor": self.cursor_id,
            "chunk_rows": self.chunk_rows,
            "idle_seconds": round(time.monotonic() - self.last_used_at, 3),
            "fetches": self.fetches,
            "text": self.text,
        }


class Session:
    """State for one connected client."""

    __slots__ = (
        "session_id",
        "peer",
        "txn",
        "timeout",
        "max_rows",
        "started_at",
        "requests",
        "errors",
        "last_op",
        "cursors",
        "_cursor_ids",
    )

    def __init__(self, peer: str = "?"):
        self.session_id = next(_session_ids)
        self.peer = peer
        self.txn: Optional[Any] = None
        #: Session-level guardrail overrides; ``None`` defers to the
        #: database defaults.
        self.timeout: Optional[float] = None
        self.max_rows: Optional[int] = None
        self.started_at = time.time()
        self.requests = 0
        self.errors = 0
        self.last_op: Optional[str] = None
        #: Open streaming results, keyed by cursor id (session-scoped).
        self.cursors: dict[int, ServerCursor] = {}
        self._cursor_ids = itertools.count(1)

    # -- transactions --------------------------------------------------------

    @property
    def in_txn(self) -> bool:
        return self.txn is not None

    def attach_txn(self, txn: Any) -> None:
        if self.txn is not None:
            raise SessionStateError(
                f"session {self.session_id} already has an active transaction "
                f"(txn {getattr(self.txn, 'txn_id', '?')}) — commit or abort it first"
            )
        self.txn = txn

    def take_txn(self, op: str) -> Any:
        """Detach and return the active transaction for commit/abort."""
        if self.txn is None:
            raise SessionStateError(
                f"session {self.session_id}: {op} without an active "
                "transaction — begin one first"
            )
        txn, self.txn = self.txn, None
        return txn

    # -- guardrails ----------------------------------------------------------

    def effective_limits(self, guardrails: Any) -> tuple[Optional[float], Optional[int]]:
        """(timeout, max_rows) for the next query: the session override when
        set, else the database default from *guardrails*."""
        timeout = self.timeout
        max_rows = self.max_rows
        if guardrails is not None:
            if timeout is None:
                timeout = guardrails.timeout
            if max_rows is None:
                max_rows = guardrails.max_rows
        return timeout, max_rows

    # -- cursors -------------------------------------------------------------

    def add_cursor(self, cursor: Any, chunk_rows: int, text: str,
                   limit: int, trace_id: Optional[str] = None) -> "ServerCursor":
        """Register an engine cursor; raises :class:`CursorLimitError` at
        the per-session cap (the caller must close *cursor* on raise)."""
        if len(self.cursors) >= limit:
            raise CursorLimitError(
                f"session {self.session_id} already holds {len(self.cursors)} "
                f"open cursors (limit {limit}) — close or drain one first"
            )
        entry = ServerCursor(
            next(self._cursor_ids), cursor, chunk_rows, text, trace_id=trace_id
        )
        self.cursors[entry.cursor_id] = entry
        return entry

    def get_cursor(self, cursor_id: int) -> "ServerCursor":
        entry = self.cursors.get(cursor_id)
        if entry is None:
            raise CursorNotFoundError(
                f"session {self.session_id} has no open cursor {cursor_id} "
                "(never opened, exhausted, closed, or reaped while idle)"
            )
        return entry

    def pop_cursor(self, cursor_id: int) -> Optional["ServerCursor"]:
        return self.cursors.pop(cursor_id, None)

    def close_cursors(self) -> int:
        """Close every open cursor (disconnect/shutdown path); returns how
        many were closed."""
        closed = 0
        for entry in list(self.cursors.values()):
            entry.close()
            closed += 1
        self.cursors.clear()
        return closed

    def reap_idle_cursors(
        self, now: float, idle_timeout: float
    ) -> list["ServerCursor"]:
        """Close cursors idle longer than *idle_timeout*; returns the
        reaped entries (so the caller can count and log them)."""
        stale = [
            cursor_id
            for cursor_id, entry in self.cursors.items()
            if now - entry.last_used_at > idle_timeout
        ]
        reaped: list[ServerCursor] = []
        for cursor_id in stale:
            entry = self.cursors.pop(cursor_id, None)
            if entry is not None:
                entry.close()
                reaped.append(entry)
        return reaped

    # -- introspection -------------------------------------------------------

    def describe(self) -> dict:
        return {
            "session": self.session_id,
            "peer": self.peer,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "in_txn": self.in_txn,
            "timeout": self.timeout,
            "max_rows": self.max_rows,
            "requests": self.requests,
            "errors": self.errors,
            "last_op": self.last_op,
            "open_cursors": len(self.cursors),
        }

    def __repr__(self) -> str:
        return (
            f"<Session {self.session_id} peer={self.peer} "
            f"requests={self.requests} in_txn={self.in_txn}>"
        )
