"""Per-connection session state.

One TCP connection = one :class:`Session`.  Requests on a single session
execute strictly in order (the connection handler reads, dispatches and
answers one frame at a time), so session state needs no locking of its
own — *cross*-session concurrency is what the engine-side locks
(catalog, plan cache, transaction manager) absorb.

A session owns:

* at most one **active transaction** — opened with ``begin``, consumed by
  ``commit``/``abort``, threaded through every ``query`` in between, and
  rolled back automatically when the connection dies mid-transaction (a
  vanished client must never leave locks behind);
* **guardrail overrides** — per-session ``timeout``/``max_rows`` that take
  precedence over the database defaults for this session only (the server
  always enforces whichever is in effect — a remote client cannot opt out
  of the host's ``db.guardrails`` by simply not sending limits);
* a requested **consistency level** (applied per named namespace);
* bookkeeping for ``stats`` and the ``.sessions`` listings: request and
  error counts, last op, start time.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Optional

from repro.errors import SessionStateError

__all__ = ["Session"]

_session_ids = itertools.count(1)


class Session:
    """State for one connected client."""

    __slots__ = (
        "session_id",
        "peer",
        "txn",
        "timeout",
        "max_rows",
        "started_at",
        "requests",
        "errors",
        "last_op",
    )

    def __init__(self, peer: str = "?"):
        self.session_id = next(_session_ids)
        self.peer = peer
        self.txn: Optional[Any] = None
        #: Session-level guardrail overrides; ``None`` defers to the
        #: database defaults.
        self.timeout: Optional[float] = None
        self.max_rows: Optional[int] = None
        self.started_at = time.time()
        self.requests = 0
        self.errors = 0
        self.last_op: Optional[str] = None

    # -- transactions --------------------------------------------------------

    @property
    def in_txn(self) -> bool:
        return self.txn is not None

    def attach_txn(self, txn: Any) -> None:
        if self.txn is not None:
            raise SessionStateError(
                f"session {self.session_id} already has an active transaction "
                f"(txn {getattr(self.txn, 'txn_id', '?')}) — commit or abort it first"
            )
        self.txn = txn

    def take_txn(self, op: str) -> Any:
        """Detach and return the active transaction for commit/abort."""
        if self.txn is None:
            raise SessionStateError(
                f"session {self.session_id}: {op} without an active "
                "transaction — begin one first"
            )
        txn, self.txn = self.txn, None
        return txn

    # -- guardrails ----------------------------------------------------------

    def effective_limits(self, guardrails: Any) -> tuple[Optional[float], Optional[int]]:
        """(timeout, max_rows) for the next query: the session override when
        set, else the database default from *guardrails*."""
        timeout = self.timeout
        max_rows = self.max_rows
        if guardrails is not None:
            if timeout is None:
                timeout = guardrails.timeout
            if max_rows is None:
                max_rows = guardrails.max_rows
        return timeout, max_rows

    # -- introspection -------------------------------------------------------

    def describe(self) -> dict:
        return {
            "session": self.session_id,
            "peer": self.peer,
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "in_txn": self.in_txn,
            "timeout": self.timeout,
            "max_rows": self.max_rows,
            "requests": self.requests,
            "errors": self.errors,
            "last_op": self.last_op,
        }

    def __repr__(self) -> str:
        return (
            f"<Session {self.session_id} peer={self.peer} "
            f"requests={self.requests} in_txn={self.in_txn}>"
        )
