"""Network service layer: serve one engine to many concurrent clients.

The paper's premise — *one* multi-model engine in place of a zoo of
single-model stores — only pays off when that one engine is a shared
service.  This package turns the embedded :class:`repro.MultiModelDB` into
one: :class:`~repro.server.server.ReproServer` multiplexes many sessions
over a length-prefixed JSON wire protocol
(:mod:`repro.server.protocol`), with per-session transaction state
(:mod:`repro.server.session`), admission control and graceful drain.

The matching client lives in :mod:`repro.client`.
"""

from repro.server.protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION
from repro.server.server import ReproServer
from repro.server.session import Session

__all__ = ["ReproServer", "Session", "PROTOCOL_VERSION", "MAX_FRAME_BYTES"]
