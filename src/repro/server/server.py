"""Asyncio TCP server hosting one :class:`~repro.core.database.MultiModelDB`.

Architecture (one process, three layers):

* the **event loop** accepts connections, frames requests and responses
  (:mod:`repro.server.protocol`), and keeps all admission-control state —
  session count, in-flight counter — single-threaded, so none of it needs
  locks;
* a **thread-pool executor bridge** runs every blocking engine call
  (``query``/``explain``/``commit``/``abort``) off the loop, sized to
  ``max_inflight`` workers, so one long scan never stalls frame I/O for
  other sessions;
* the **engine** underneath is shared: the catalog lock, plan-cache lock
  and transaction-manager mutex added for this layer make that safe.

Admission control is two gates with typed rejections
(:class:`repro.errors.ServerOverloadedError` — the request is *refused*,
never silently queued forever):

* ``max_sessions`` — connections beyond it are greeted with an error frame
  and closed;
* ``max_inflight + queue_depth`` — blocking calls beyond the worker count
  queue in the executor, and past the queue budget they are rejected
  immediately.

**Streaming cursors** (``query_open`` / ``cursor_next`` / ``cursor_close``)
let a client pull a large result in chunks instead of one frame: the server
holds a lazy engine cursor (:class:`repro.query.engine.QueryCursor`) per
open stream, scoped to the session, capped at ``max_cursors_per_session``
(:class:`repro.errors.CursorLimitError`) and reaped by a background task
after ``cursor_idle_timeout`` seconds without a fetch
(:class:`repro.errors.CursorNotFoundError` on later touches).  Peak server
memory per stream is one chunk, not one result set.

Graceful shutdown (:meth:`ReproServer.shutdown`) stops accepting, lets
in-flight queries drain (bounded by ``drain_timeout``), closes every open
cursor (mid-stream clients see :class:`repro.errors.ServerShutdownError` on
their next fetch — cursor ops are not in the always-allowed set while
draining), aborts transactions orphaned by surviving sessions, optionally
checkpoints the database, and only then tears down connections — so every
positively-acknowledged commit is durable in the WAL.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional

from repro import __version__
from repro.errors import (
    ClusterError,
    CursorLimitError,
    InjectedFaultError,
    NotPrimaryError,
    ProtocolError,
    ReplicationError,
    ReproError,
    ServerOverloadedError,
    ServerShutdownError,
    SessionStateError,
    ShardMapStaleError,
    SimulatedCrash,
    code_of,
)
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import slowlog, tracing
from repro.obs.telemetry import TelemetryEndpoint
from repro.query.classify import statement_writes
from repro.replication.apply import ReplicationApplier
from repro.replication.hub import ReplicationHub
from repro.server import protocol
from repro.server.session import Session
from repro.storage.wal import entry_to_record

__all__ = ["ReproServer"]

#: Ops answered inline on the event loop even while draining, so a client
#: can still observe a shutting-down server (the observability ops are
#: here precisely because a draining server is when you want them most).
_ALWAYS_ALLOWED = frozenset(
    {"ping", "stats", "info", "trace_dump", "slowlog", "events", "repl_status"}
)

#: Records per ship frame — bounds frame size while a far-behind replica
#: catches up (the rest goes out on the next loop iteration).
_SHIP_BATCH = 512

obs_metrics.describe(
    "server_request_phase_seconds",
    "Per-request wall seconds by phase: queue (executor wait), "
    "execute (engine work), serialize (response encoding)",
)
obs_metrics.describe(
    "server_request_seconds", "End-to-end wall seconds per wire request"
)
obs_metrics.describe(
    "server_requests_total", "Wire requests dispatched, by op"
)
obs_metrics.describe(
    "wal_records_shipped_total", "WAL records shipped to replica subscribers"
)
obs_metrics.describe(
    "wal_records_applied_total", "Shipped WAL records applied, by replica"
)
obs_metrics.describe(
    "replication_lag_seconds",
    "Age of the newest ship frame a replica has applied, by replica",
)
obs_metrics.describe(
    "replication_applied_lsn", "Replica applied-LSN watermark, by replica"
)
obs_metrics.describe(
    "failover_total", "Primary failovers performed by ReplicaSet routers"
)


class _EagerCursor:
    """Cursor facade over an already-materialized result — used for
    ``query_open`` inside a transaction, where lazy execution could
    straddle the commit/abort that ends the snapshot."""

    __slots__ = ("_rows", "_pos", "stats")

    def __init__(self, rows: list, stats: dict):
        self._rows = rows
        self._pos = 0
        self.stats = stats

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._rows)

    def next_batch(self, n: int) -> list:
        chunk = self._rows[self._pos : self._pos + max(int(n), 1)]
        self._pos += len(chunk)
        return chunk

    def close(self) -> None:
        self._rows = []
        self._pos = 0


def _phases_ms(phases: dict) -> dict:
    """Phase seconds → milliseconds, rounded for wire stats."""
    return {name: round(seconds * 1000, 3) for name, seconds in phases.items()}


def _merge_limit(requested, session_value, host_default):
    """Effective guardrail: the client's request (or its session override)
    picks the value, but a configured host default is a hard cap — a remote
    client can tighten ``db.guardrails``, never escape it."""
    value = requested if requested is not None else session_value
    if host_default is not None:
        value = host_default if value is None else min(value, host_default)
    return value


class ReproServer:
    """Serve one database over the length-prefixed JSON wire protocol."""

    def __init__(
        self,
        db: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int = 64,
        max_inflight: int = 8,
        queue_depth: int = 32,
        drain_timeout: float = 10.0,
        checkpoint_path: Optional[str] = None,
        max_frame: int = protocol.MAX_FRAME_BYTES,
        max_cursors_per_session: int = 16,
        cursor_idle_timeout: float = 300.0,
        cursor_chunk_rows: int = 1024,
        telemetry_port: Optional[int] = None,
        telemetry_host: Optional[str] = None,
        replica_of: Optional[Any] = None,
        ack_replication: int = 0,
        ack_timeout: float = 5.0,
        ship_interval: float = 0.02,
        heartbeat_interval: float = 0.5,
        shard_id: Optional[int] = None,
        shard_map: Optional[Any] = None,
    ):
        self.db = db
        self.host = host
        self.port = port
        self.max_sessions = int(max_sessions)
        self.max_inflight = max(int(max_inflight), 1)
        self.queue_depth = max(int(queue_depth), 0)
        self.drain_timeout = drain_timeout
        self.checkpoint_path = checkpoint_path
        self.max_frame = max_frame
        self.max_cursors_per_session = max(int(max_cursors_per_session), 1)
        self.cursor_idle_timeout = float(cursor_idle_timeout)
        self.cursor_chunk_rows = max(int(cursor_chunk_rows), 1)
        #: HTTP telemetry sidecar (``/metrics``, ``/healthz``, ``/stats``,
        #: ``/events``); ``None`` disables it, ``0`` binds an OS-picked port.
        self.telemetry_port = telemetry_port
        self.telemetry_host = telemetry_host if telemetry_host is not None else host
        #: ``"host:port"`` of the primary this server replicates, or None
        #: (= this server is a primary).  Cleared by the ``promote`` op.
        self.replica_of = self._normalize_upstream(replica_of)
        #: Semi-sync: block write responses until this many subscribers
        #: acked the write's LSN (0 = fully asynchronous replication).
        self.ack_replication = max(int(ack_replication), 0)
        self.ack_timeout = float(ack_timeout)
        self.ship_interval = float(ship_interval)
        self.heartbeat_interval = float(heartbeat_interval)
        #: Cluster membership: this server's shard id and the topology it
        #: was provisioned with.  A coordinator ships the map version it
        #: planned against; a mismatch answers SHARD_MAP_STALE so the
        #: client refetches instead of routing rows with a dead topology.
        self.shard_id = None if shard_id is None else int(shard_id)
        if shard_map is not None and not hasattr(shard_map, "to_json"):
            from repro.cluster.shardmap import ShardMap

            shard_map = ShardMap.from_json(shard_map)
        self.shard_map = shard_map

        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._sessions: dict[int, tuple[Session, asyncio.StreamWriter]] = {}
        self._conn_tasks: set = set()
        self._inflight = 0
        self._drained: Optional[asyncio.Event] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._draining = False
        self._started_at = time.time()
        self._thread: Optional[threading.Thread] = None
        self._reaper: Optional[asyncio.Task] = None
        self._telemetry: Optional[TelemetryEndpoint] = None
        self._hub = ReplicationHub()
        self._applier: Optional[ReplicationApplier] = None
        self._puller: Optional[WalPuller] = None
        self._kill = False

    @staticmethod
    def _normalize_upstream(replica_of: Optional[Any]) -> Optional[str]:
        if replica_of is None:
            return None
        if isinstance(replica_of, (tuple, list)) and len(replica_of) == 2:
            return f"{replica_of[0]}:{int(replica_of[1])}"
        text = str(replica_of)
        host, _, port = text.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"replica_of must be 'host:port' or (host, port), got {text!r}"
            )
        return text

    @property
    def role(self) -> str:
        return "replica" if self.replica_of is not None else "primary"

    # ------------------------------------------------------------ lifecycle --

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)

    @property
    def inflight(self) -> int:
        return self._inflight

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port) —
        pass ``port=0`` to let the OS pick a free one."""
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight, thread_name_prefix="repro-exec"
        )
        self._drained = asyncio.Event()
        self._drained.set()
        self._stop_requested = asyncio.Event()
        self._draining = False
        self._started_at = time.time()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._reaper = self._loop.create_task(self._reap_idle_cursors())
        if self.replica_of is not None:
            # Imported here, not at module scope: replica.py speaks the wire
            # protocol, so a top-level import would be circular.
            from repro.replication.replica import WalPuller

            upstream_host, _, upstream_port = self.replica_of.rpartition(":")
            self._applier = ReplicationApplier(
                self.db, name=f"{self.host}:{self.port}"
            )
            self._puller = WalPuller(
                self._applier,
                upstream_host,
                int(upstream_port),
                heartbeat_timeout=max(self.heartbeat_interval * 4, 1.0),
            )
            self._puller.start()
        if self.telemetry_port is not None:
            self._telemetry = TelemetryEndpoint(
                host=self.telemetry_host,
                port=self.telemetry_port,
                stats_provider=self._stats_payload,
                health_provider=self._health_payload,
            )
            await self._telemetry.start()
        return self.address

    @property
    def telemetry_address(self) -> Optional[tuple[str, int]]:
        """(host, port) of the HTTP telemetry endpoint, or None."""
        if self._telemetry is None:
            return None
        return (self._telemetry.host, self._telemetry.port)

    async def _reap_idle_cursors(self) -> None:
        """Background sweep closing cursors idle past
        ``cursor_idle_timeout`` — an abandoned client must not pin engine
        cursors (and their snapshots) forever."""
        interval = max(min(self.cursor_idle_timeout / 2.0, 5.0), 0.05)
        while True:
            await asyncio.sleep(interval)
            now = time.monotonic()
            reaped = 0
            for session, _writer in list(self._sessions.values()):
                entries = session.reap_idle_cursors(now, self.cursor_idle_timeout)
                reaped += len(entries)
                for entry in entries:
                    obs_events.emit(
                        "cursor_reaped",
                        session_id=session.session_id,
                        cursor=entry.cursor_id,
                        fetches=entry.fetches,
                        idle_seconds=round(now - entry.last_used_at, 3),
                        trace_id=entry.trace_id,
                        query=entry.text,
                    )
            if reaped and obs_metrics.ENABLED:
                obs_metrics.counter("server_cursors_reaped_total").inc(reaped)

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`request_stop` / :meth:`stop`, then shut down
        gracefully."""
        if self._server is None:
            await self.start()
        try:
            await self._stop_requested.wait()
        finally:
            await self.shutdown(drain=not self._kill)

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight queries, checkpoint, tear down."""
        self._draining = True
        obs_events.emit(
            "drain_begin",
            sessions=len(self._sessions),
            inflight=self._inflight,
            drain=drain,
        )
        if self._reaper is not None:
            self._reaper.cancel()
            self._reaper = None
        if self._puller is not None:
            # Sets the stop flag and severs the socket; the daemon thread
            # exits on its own (no join — this is the event loop).
            puller, self._puller = self._puller, None
            puller.stop(join_timeout=None)
        self._hub.shutdown()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain and self._inflight:
            try:
                await asyncio.wait_for(
                    self._drained.wait(), timeout=self.drain_timeout
                )
                obs_events.emit("drain_inflight_complete", inflight=0)
            except asyncio.TimeoutError:
                # bounded patience: surviving queries die with the loop
                obs_events.emit(
                    "drain_timeout",
                    inflight=self._inflight,
                    drain_timeout=self.drain_timeout,
                )
        # Open streaming cursors cannot outlive the server: close them so
        # their pipelines release store cursors; mid-stream clients get
        # ServerShutdownError on their next cursor_next (the drain gate).
        closed_cursors = 0
        for session, _writer in list(self._sessions.values()):
            closed_cursors += session.close_cursors()
        if closed_cursors:
            obs_events.emit("drain_cursors_closed", closed=closed_cursors)
        # Transactions stranded by sessions that never said commit: roll
        # them back so their locks and intents don't outlive the server.
        aborted_txns = 0
        for session, _writer in list(self._sessions.values()):
            if session.txn is not None:
                try:
                    self.db.abort(session.take_txn("shutdown"))
                    aborted_txns += 1
                except Exception:
                    pass
        if aborted_txns:
            obs_events.emit("drain_txns_aborted", aborted=aborted_txns)
        if self.checkpoint_path is not None and not self._kill:
            try:
                await asyncio.get_running_loop().run_in_executor(
                    None, self.db.checkpoint, self.checkpoint_path
                )
            except Exception:
                pass  # checkpointing is an optimization; the WAL is truth
        for _session, writer in list(self._sessions.values()):
            try:
                writer.close()
            except Exception:
                pass
        self._sessions.clear()
        # Wait for connection handlers to notice the closed transports and
        # return on their own; whatever is left past the grace window gets
        # cancelled *and awaited*, so no half-cancelled task survives into
        # the event loop's teardown (where it would log a spurious
        # CancelledError traceback).
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                list(self._conn_tasks), timeout=1.0
            )
            del done
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            self._conn_tasks.clear()
        if obs_metrics.ENABLED:
            obs_metrics.gauge("server_sessions_active").set(0)
        if self._telemetry is not None:
            # Last out: the health endpoint stays scrapeable through the
            # whole drain (it reports ``draining: true``).
            await self._telemetry.stop()
            self._telemetry = None
        if self._executor is not None:
            self._executor.shutdown(wait=drain)
            self._executor = None
        obs_events.emit("drain_complete")

    def request_stop(self) -> None:
        """Thread-safe: ask the serving loop to shut down."""
        loop, stop = self._loop, self._stop_requested
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    # -- background-thread conveniences (tests, benchmarks, `serve`) --------

    def start_in_thread(self) -> tuple[str, int]:
        """Run the server in a daemon thread; returns the bound address
        once it is accepting connections."""
        ready = threading.Event()
        failure: list[BaseException] = []

        async def main() -> None:
            try:
                await self.start()
            except BaseException as error:  # bind failure must not hang
                failure.append(error)
                ready.set()
                raise
            ready.set()
            await self.serve_until_stopped()

        self._thread = threading.Thread(
            target=lambda: asyncio.run(main()),
            name="repro-server",
            daemon=True,
        )
        self._thread.start()
        ready.wait(timeout=10.0)
        if failure:
            raise failure[0]
        return self.address

    def stop(self, timeout: float = 15.0) -> None:
        """Thread-safe: gracefully stop a :meth:`start_in_thread` server."""
        self.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def kill(self, timeout: float = 5.0) -> None:
        """Thread-safe **unclean** stop, for the chaos harness: abort every
        live transport (clients and subscribers see a connection reset, as
        with a power cut), then tear the loop down with no drain and no
        checkpoint.  Whatever the WAL holds is what recovery — and the
        replicas — get."""
        self._kill = True
        obs_events.emit("server_killed", host=self.host, port=self.port)
        if self._puller is not None:
            self._puller.stop(join_timeout=0.5)
        loop = self._loop
        if loop is not None:

            def _die() -> None:
                self._draining = True
                for _session, writer in list(self._sessions.values()):
                    transport = writer.transport
                    try:
                        if transport is not None:
                            transport.abort()
                        else:
                            writer.close()
                    except Exception:
                        pass
                if self._stop_requested is not None:
                    self._stop_requested.set()

            try:
                loop.call_soon_threadsafe(_die)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def __enter__(self) -> "ReproServer":
        self.start_in_thread()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ---------------------------------------------------------- connections --

    def _server_info(self, session: Optional[Session] = None) -> dict:
        info = {
            "server": "repro",
            "version": __version__,
            "protocol": protocol.PROTOCOL_VERSION,
            #: Compatible capabilities layered on protocol v1; clients use
            #: this (not the version) to decide what extras to send.
            "features": [
                "trace", "events", "telemetry", "replication", "cluster",
            ],
            "role": self.role,
            "limits": {
                "max_sessions": self.max_sessions,
                "max_inflight": self.max_inflight,
                "queue_depth": self.queue_depth,
                "max_frame": self.max_frame,
                "max_cursors_per_session": self.max_cursors_per_session,
                "cursor_idle_timeout": self.cursor_idle_timeout,
                "cursor_chunk_rows": self.cursor_chunk_rows,
            },
        }
        if self.replica_of is not None:
            info["replica_of"] = self.replica_of
        if self.shard_id is not None:
            info["shard"] = {
                "shard_id": self.shard_id,
                "map_version": (
                    self.shard_map.version
                    if self.shard_map is not None
                    else None
                ),
            }
        if session is not None:
            info["session"] = session.session_id
        if self._telemetry is not None:
            info["telemetry"] = {
                "host": self._telemetry.host,
                "port": self._telemetry.port,
            }
        return info

    def _stats_payload(self) -> dict:
        return {
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "draining": self._draining,
            "inflight": self._inflight,
            "sessions": [
                entry[0].describe() for entry in self._sessions.values()
            ],
            "limits": self._server_info()["limits"],
            "replication": self._repl_status(),
        }

    def _repl_status(self) -> dict:
        log = self.db.context.log
        if self.replica_of is not None and self._puller is not None:
            status = self._puller.describe()
            status.update({"role": "replica", "last_lsn": log.last_lsn})
            return status
        return {
            "role": "primary",
            "last_lsn": log.last_lsn,
            "applied_lsn": log.last_lsn,
            "ack_replication": self.ack_replication,
            "subscribers": self._hub.describe(),
        }

    def _health_payload(self) -> dict:
        return {
            "ok": True,
            "draining": self._draining,
            "uptime_seconds": round(time.time() - self._started_at, 3),
            "sessions": len(self._sessions),
            "inflight": self._inflight,
        }

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        if obs_metrics.ENABLED:
            obs_metrics.counter("server_connections_total").inc()
        if self._draining or len(self._sessions) >= self.max_sessions:
            error: Exception
            if self._draining:
                error = ServerShutdownError("server is shutting down")
            else:
                error = ServerOverloadedError(
                    f"session limit reached ({self.max_sessions} active)"
                )
                if obs_metrics.ENABLED:
                    obs_metrics.counter("server_overload_rejections_total").inc()
                obs_events.emit(
                    "admission_rejected",
                    reason="session_limit",
                    peer=peer,
                    sessions=len(self._sessions),
                    max_sessions=self.max_sessions,
                )
            try:
                await protocol.write_frame_async(
                    writer, protocol.error_response(None, error)
                )
            except Exception:
                pass
            writer.close()
            return
        session = Session(peer=peer)
        self._sessions[session.session_id] = (session, writer)
        if obs_metrics.ENABLED:
            obs_metrics.gauge("server_sessions_active").set(len(self._sessions))
        try:
            await protocol.write_frame_async(
                writer, {"hello": self._server_info(session)}
            )
            while True:
                try:
                    frame = await protocol.read_frame_async(reader, self.max_frame)
                except (ProtocolError, InjectedFaultError):
                    break  # torn/corrupt stream: the connection is gone
                except (ConnectionResetError, BrokenPipeError, OSError):
                    break
                if frame is None:
                    break  # clean EOF
                if "op" not in frame and isinstance(frame.get("ack"), dict):
                    # Fire-and-forget replication acknowledgement from a
                    # subscribed replica — no response frame.
                    await self._hub.record_ack(
                        session.session_id, frame["ack"].get("lsn")
                    )
                    continue
                try:
                    await self._dispatch(session, writer, frame)
                except (
                    ProtocolError,
                    InjectedFaultError,
                    ConnectionResetError,
                    BrokenPipeError,
                    OSError,
                ):
                    break  # response could not be delivered
        except SimulatedCrash:
            raise  # torture harness territory: nothing here may survive it
        except (ProtocolError, InjectedFaultError, ConnectionError, OSError):
            pass  # transport died (hello write, injected fault): clean up
        finally:
            # The connection owns its cursors: a vanished client must not
            # leave lazy pipelines (and their store cursors) behind.  These
            # count as reaped — an abrupt socket close is the involuntary
            # twin of the idle-timeout sweep.
            reaped_cursors = session.close_cursors()
            if reaped_cursors:
                if obs_metrics.ENABLED:
                    obs_metrics.counter("server_cursors_reaped_total").inc(
                        reaped_cursors
                    )
                obs_events.emit(
                    "cursors_reaped_on_disconnect",
                    session_id=session.session_id,
                    peer=session.peer,
                    closed=reaped_cursors,
                )
            self._hub.unsubscribe(session.session_id)
            if session.txn is not None:
                # The client vanished mid-transaction: roll it back.
                try:
                    self.db.abort(session.take_txn("disconnect"))
                except Exception:
                    pass
            self._sessions.pop(session.session_id, None)
            if obs_metrics.ENABLED:
                obs_metrics.gauge("server_sessions_active").set(
                    len(self._sessions)
                )
            try:
                writer.close()
            except Exception:
                pass

    # ------------------------------------------------------------- dispatch --

    async def _dispatch(
        self, session: Session, writer: asyncio.StreamWriter, frame: dict
    ) -> None:
        request_id = frame.get("id")
        op = frame.get("op")
        params = frame.get("params") or {}
        session.requests += 1
        request_seq = session.requests
        session.last_op = op if isinstance(op, str) else None
        # A request carrying trace context is *continued* here: the server
        # span adopts the client's trace/parent ids, so client and server
        # trees stitch into one distributed trace keyed by trace_id.
        trace_ctx = protocol.parse_trace_context(frame)
        started = time.perf_counter()
        server_span = None
        try:
            if not isinstance(op, str) or not op:
                raise ProtocolError(f"request frame without a valid op: {frame!r}")
            if not isinstance(params, dict):
                raise ProtocolError("request params must be a JSON object")
            if obs_metrics.ENABLED:
                obs_metrics.counter("server_requests_total", op=op).inc()
            with tracing.adopt(trace_ctx):
                with tracing.span(
                    "server.request",
                    op=op,
                    session_id=session.session_id,
                    request_id=request_seq,
                ) as server_span:
                    result = await self._execute_op(session, op, params)
            payload = protocol.ok_response(request_id, result)
        except SimulatedCrash:
            raise
        except Exception as error:
            session.errors += 1
            if obs_metrics.ENABLED:
                obs_metrics.counter(
                    "server_errors_total", code=code_of(error)
                ).inc()
            payload = protocol.error_response(request_id, error)
        if trace_ctx is not None and server_span is not None:
            # Error responses carry the span tree too — a failed request
            # is the one you most want to see attributed.
            payload["trace"] = tracing.span_summary(server_span)
        serialize_started = time.perf_counter()
        data = protocol.encode_frame(payload)
        serialize_seconds = time.perf_counter() - serialize_started
        if server_span is not None:
            server_span.set(serialize_ms=round(serialize_seconds * 1000, 3))
        await protocol.write_payload_async(writer, data)
        if obs_metrics.ENABLED:
            obs_metrics.histogram("server_request_seconds").observe(
                time.perf_counter() - started
            )
            obs_metrics.histogram(
                "server_request_phase_seconds", phase="serialize"
            ).observe(serialize_seconds)

    async def _execute_op(self, session: Session, op: str, params: dict) -> Any:
        if self._draining and op not in _ALWAYS_ALLOWED:
            raise ServerShutdownError(
                f"server is draining; {op!r} rejected (reconnect elsewhere)"
            )
        if self.replica_of is not None:
            self._reject_writes_on_replica(op, params)
        if op == "ping":
            return {"pong": True}
        if op == "info":
            return self._server_info(session)
        if op == "stats":
            return self._stats_payload()
        if op == "trace_dump":
            roots = list(tracing.TRACER.roots)
            limit = params.get("n")
            if isinstance(limit, int) and limit > 0:
                roots = roots[-limit:]
            return {"traces": [tracing.span_summary(root) for root in roots]}
        if op == "slowlog":
            if "threshold_ms" in params:
                value = params["threshold_ms"]
                slowlog.set_threshold(
                    None if value is None else float(value) / 1000.0
                )
            threshold = slowlog.get_threshold()
            return {
                "threshold_ms": None if threshold is None else threshold * 1000.0,
                "entries": slowlog.entries(),
            }
        if op == "events":
            limit = params.get("n")
            kind = params.get("kind")
            return {
                "events": obs_events.tail(
                    limit if isinstance(limit, int) else None,
                    kind=kind if isinstance(kind, str) else None,
                )
            }
        if op == "shard_map":
            if self.shard_map is None:
                raise ClusterError(
                    "this server is not part of a cluster (no shard map)"
                )
            return {
                "shard_id": self.shard_id,
                "shard_map": self.shard_map.to_json(),
            }
        if op == "query":
            self._check_shard_map(params)
            result = await self._op_query(session, params)
            await self._semi_sync_gate(session, params)
            return result
        if op == "query_open":
            self._check_shard_map(params)
            result = await self._op_query_open(session, params)
            await self._semi_sync_gate(session, params)
            return result
        if op == "cursor_next":
            return await self._op_cursor_next(session, params)
        if op == "cursor_close":
            return self._op_cursor_close(session, params)
        if op == "explain":
            text = self._required_text(params)
            return {"plan": await self._run_blocking(lambda: self.db.explain(text))}
        if op == "begin":
            isolation = params.get("isolation", "snapshot")
            if session.in_txn:
                raise SessionStateError(
                    f"session {session.session_id} already has an active "
                    "transaction — commit or abort it first"
                )
            txn = self.db.begin(isolation)
            session.attach_txn(txn)
            return {"txn": txn.txn_id, "isolation": str(isolation)}
        if op == "commit":
            txn = session.take_txn("commit")
            try:
                await self._run_blocking(lambda: self.db.commit(txn))
            except Exception:
                # A failed commit (conflict, lock timeout, injected fault)
                # aborts server-side; the session must not keep a dead txn.
                if getattr(txn, "is_active", False):
                    try:
                        self.db.abort(txn)
                    except Exception:
                        pass
                raise
            committed_lsn = self.db.context.log.last_lsn
            if self.ack_replication > 0:
                await self._hub.wait_for_acks(
                    committed_lsn, self.ack_replication, self.ack_timeout
                )
            return {"txn": txn.txn_id, "committed": True,
                    "last_lsn": committed_lsn}
        if op == "abort":
            txn = session.take_txn("abort")
            await self._run_blocking(lambda: self.db.abort(txn))
            return {"txn": txn.txn_id, "aborted": True}
        if op == "set":
            if "timeout" in params:
                timeout = params["timeout"]
                session.timeout = None if timeout is None else float(timeout)
            if "max_rows" in params:
                max_rows = params["max_rows"]
                session.max_rows = None if max_rows is None else int(max_rows)
            return {"timeout": session.timeout, "max_rows": session.max_rows}
        if op == "set_consistency":
            name = params.get("name")
            level = params.get("level")
            if not name or not level:
                raise ProtocolError("set_consistency needs 'name' and 'level'")
            self.db.set_consistency(name, level)
            return {"name": name, "level": str(level)}
        if op == "wal_subscribe":
            return self._op_wal_subscribe(session, params)
        if op == "repl_status":
            return self._repl_status()
        if op == "repl_wait":
            return await self._op_repl_wait(params)
        if op == "promote":
            return await self._op_promote()
        if op == "repoint":
            return self._op_repoint(params)
        raise ProtocolError(f"unknown op {op!r}")

    # ------------------------------------------------------- replication ----

    def _reject_writes_on_replica(self, op: str, params: dict) -> None:
        """Replicas serve reads only; anything that would mutate state (or
        open a transaction that could) is the primary's job."""
        if op in ("begin", "commit", "abort"):
            raise NotPrimaryError(
                f"{op!r} refused: this server is a read replica of "
                f"{self.replica_of} — transactions belong on the primary",
                primary=self.replica_of,
            )
        if op in ("query", "query_open"):
            text = params.get("text")
            if isinstance(text, str) and statement_writes(text):
                raise NotPrimaryError(
                    "write statement refused: this server is a read replica "
                    f"of {self.replica_of} — send writes to the primary",
                    primary=self.replica_of,
                )

    async def _semi_sync_gate(self, session: Session, params: dict) -> None:
        """Semi-sync replication: hold a *write's* response until
        ``ack_replication`` subscribers acked its LSN.  Reads pass through;
        statements inside an open transaction publish nothing until commit,
        so the gate for those sits on the ``commit`` op instead."""
        if self.ack_replication <= 0 or session.in_txn:
            return
        text = params.get("text")
        if not isinstance(text, str) or not statement_writes(text):
            return
        await self._hub.wait_for_acks(
            self.db.context.log.last_lsn, self.ack_replication, self.ack_timeout
        )

    def _op_wal_subscribe(self, session: Session, params: dict) -> dict:
        from_lsn = params.get("from_lsn", 0)
        if not isinstance(from_lsn, int) or from_lsn < 0:
            raise ProtocolError("wal_subscribe needs a non-negative 'from_lsn'")
        entry = self._sessions.get(session.session_id)
        if entry is None:
            raise SessionStateError("session is gone")
        writer = entry[1]
        subscriber = self._hub.subscribe(session.session_id, session.peer, from_lsn)
        subscriber.task = self._loop.create_task(
            self._ship_loop(subscriber, writer)
        )
        return {
            "subscribed": True,
            "from_lsn": from_lsn,
            "last_lsn": self.db.context.log.last_lsn,
            "heartbeat_interval": self.heartbeat_interval,
            "catalog": self._describe_catalog(),
        }

    def _describe_catalog(self) -> list:
        """JSON-safe catalog snapshot shipped with every ``wal_subscribe``
        response.  DDL is not logged (the central log carries data ops
        only), so this snapshot is the replica's "base backup": the
        puller materializes any object it is missing before applying
        records.  Schema-carrying kinds (relational and wide-column
        tables) include enough of their definition to recreate them;
        objects whose schema does not round-trip JSON (e.g. wide-column
        UDTs) are shipped kind-only and skipped by the replica."""
        entries = []
        for name, kind in self.db.catalog().items():
            entry: dict = {"name": name, "kind": kind}
            try:
                if kind == "table":
                    schema = self.db.table(name).schema
                    entry["schema"] = {
                        "primary_key": schema.primary_key,
                        "columns": [
                            {
                                "name": column.name,
                                "type": column.type,
                                "nullable": column.nullable,
                                "default": column.default,
                            }
                            for column in schema.columns
                        ],
                    }
                elif kind == "wide":
                    table = self.db.wide_table(name)
                    entry["schema"] = {
                        "primary_key": table.primary_key,
                        "columns": [
                            {"name": column.name, "spec": column.spec}
                            for column in table.columns.values()
                        ],
                    }
                if "schema" in entry:
                    json.dumps(entry["schema"])  # must survive the wire
            except (TypeError, ValueError, ReproError):
                entry.pop("schema", None)
            entries.append(entry)
        return entries

    async def _ship_loop(self, subscriber, writer) -> None:
        """Stream log entries past the subscriber's watermark as
        ``{"ship": ...}`` frames; empty frames are heartbeats.  Any wire
        failure ends the subscription — the replica's puller reconnects
        and re-subscribes from its own watermark."""
        log = self.db.context.log
        last_sent = 0.0
        try:
            while not self._draining:
                now = self._loop.time()
                records: list = []
                if log.last_lsn > subscriber.shipped_lsn:
                    for entry in log.entries_since(subscriber.shipped_lsn):
                        records.append(entry_to_record(entry))
                        if len(records) >= _SHIP_BATCH:
                            break
                if records:
                    subscriber.shipped_lsn = records[-1]["lsn"]
                    await protocol.write_frame_async(
                        writer,
                        {
                            "ship": {
                                "records": records,
                                "last_lsn": subscriber.shipped_lsn,
                                "ts": time.time(),
                            }
                        },
                    )
                    if obs_metrics.ENABLED:
                        obs_metrics.counter("wal_records_shipped_total").inc(
                            len(records)
                        )
                    last_sent = now
                    continue  # drain the backlog before sleeping
                if now - last_sent >= self.heartbeat_interval:
                    await protocol.write_frame_async(
                        writer,
                        {
                            "ship": {
                                "records": [],
                                "last_lsn": log.last_lsn,
                                "ts": time.time(),
                            }
                        },
                    )
                    last_sent = now
                await asyncio.sleep(self.ship_interval)
        except asyncio.CancelledError:
            raise
        except Exception:
            pass  # wire is gone (or injected fault): subscription over
        finally:
            subscriber.task = None
            self._hub.unsubscribe(subscriber.session_id)

    async def _op_repl_wait(self, params: dict) -> dict:
        lsn = params.get("lsn", 0)
        if not isinstance(lsn, int) or lsn < 0:
            raise ProtocolError("repl_wait needs a non-negative integer 'lsn'")
        timeout = params.get("timeout", 5.0)
        try:
            timeout = max(float(timeout), 0.0)
        except (TypeError, ValueError):
            raise ProtocolError("repl_wait 'timeout' must be a number")
        deadline = self._loop.time() + timeout
        while True:
            applied = (
                self._applier.applied_lsn
                if self._applier is not None and self.replica_of is not None
                else self.db.context.log.last_lsn
            )
            if applied >= lsn:
                return {"applied_lsn": applied, "reached": True}
            if self._loop.time() >= deadline or self._draining:
                return {"applied_lsn": applied, "reached": False}
            await asyncio.sleep(0.01)

    async def _op_promote(self) -> dict:
        log = self.db.context.log
        if self.replica_of is None:
            return {"promoted": False, "role": "primary",
                    "last_lsn": log.last_lsn}
        upstream = self.replica_of
        # Accept writes first, then tear the subscription down — the
        # severed socket stops any in-flight batch racing the promotion.
        self.replica_of = None
        puller, self._puller = self._puller, None
        if puller is not None:
            await self._run_blocking(lambda: puller.stop(join_timeout=2.0))
        dropped = 0
        if self._applier is not None:
            # An open block's COMMIT never arrived: the dead primary never
            # committed it, so dropping it mirrors crash recovery.
            dropped = self._applier.reset_pending()
        obs_events.emit(
            "replica_promoted",
            server=f"{self.host}:{self.port}",
            was_replica_of=upstream,
            last_lsn=log.last_lsn,
            dropped_uncommitted=dropped,
        )
        return {
            "promoted": True,
            "was_replica_of": upstream,
            "last_lsn": log.last_lsn,
            "dropped_uncommitted": dropped,
        }

    def _op_repoint(self, params: dict) -> dict:
        host = params.get("host")
        port = params.get("port")
        if not isinstance(host, str) or not isinstance(port, int):
            raise ProtocolError("repoint needs string 'host' and integer 'port'")
        if self.replica_of is None or self._puller is None:
            raise ReplicationError(
                "repoint refused: this server is a primary (did you mean to "
                "promote it, or repoint one of its replicas?)"
            )
        self.replica_of = f"{host}:{port}"
        self._puller.retarget(host, port)
        return {"repointed": True, "primary": self.replica_of}

    @staticmethod
    def _required_text(params: dict) -> str:
        text = params.get("text")
        if not isinstance(text, str) or not text.strip():
            raise ProtocolError("missing query text")
        return text

    def _query_limits(self, session: Session, params: dict) -> tuple:
        guardrails = getattr(self.db, "guardrails", None)
        timeout = _merge_limit(
            params.get("timeout"),
            session.timeout,
            getattr(guardrails, "timeout", None),
        )
        max_rows = _merge_limit(
            params.get("max_rows"),
            session.max_rows,
            getattr(guardrails, "max_rows", None),
        )
        return timeout, max_rows

    @staticmethod
    def _query_inputs(params: dict) -> tuple:
        text = ReproServer._required_text(params)
        bind_vars = params.get("bind_vars") or {}
        if not isinstance(bind_vars, dict):
            raise ProtocolError("bind_vars must be a JSON object")
        return text, bind_vars

    def _check_shard_map(self, params: dict) -> None:
        """Reject statements planned against a different topology."""
        planned = params.get("shard_map_version")
        if planned is None or self.shard_map is None:
            return
        if int(planned) != self.shard_map.version:
            raise ShardMapStaleError(
                f"statement planned against shard map v{planned}, this "
                f"shard runs v{self.shard_map.version} — refetch the map",
                version=self.shard_map.version,
            )

    async def _op_query(self, session: Session, params: dict) -> dict:
        text, bind_vars = self._query_inputs(params)
        analyze = bool(params.get("analyze", False))
        timeout, max_rows = self._query_limits(session, params)
        txn = session.txn

        def work():
            from repro.query.engine import run_query

            return run_query(
                self.db,
                text,
                bind_vars,
                txn,
                analyze=analyze,
                timeout=timeout,
                max_rows=max_rows,
                batch_size=params.get("batch_size"),
            )

        phases: dict = {}
        result = await self._run_blocking(work, phases=phases)
        stats = dict(result.stats)
        stats["server_phases"] = _phases_ms(phases)
        stats["last_lsn"] = self.db.context.log.last_lsn
        response = {"rows": result.rows, "stats": stats}
        if result.analyzed is not None:
            response["analyzed"] = result.analyzed + (
                f"\nServer: queue-wait {phases.get('queue', 0.0) * 1000:.3f} ms"
                f" · execute {phases.get('execute', 0.0) * 1000:.3f} ms"
                f" (session {session.session_id}, request {session.requests})"
            )
        return response

    # ------------------------------------------------- streaming cursors ----

    def _chunk_rows_for(self, params: dict) -> int:
        requested = params.get("chunk_rows")
        if requested is None:
            return self.cursor_chunk_rows
        # The server default is also the ceiling: a client may stream in
        # smaller chunks (bounding frame size), never larger ones.
        return min(max(int(requested), 1), self.cursor_chunk_rows)

    async def _op_query_open(self, session: Session, params: dict) -> dict:
        text, bind_vars = self._query_inputs(params)
        timeout, max_rows = self._query_limits(session, params)
        chunk_rows = self._chunk_rows_for(params)
        txn = session.txn
        # Refuse before executing anything — like every admission
        # rejection, a CURSOR_LIMIT means the query did not run.
        if len(session.cursors) >= self.max_cursors_per_session:
            raise CursorLimitError(
                f"session {session.session_id} already holds "
                f"{len(session.cursors)} open cursors "
                f"(limit {self.max_cursors_per_session}) — close or drain "
                "one first"
            )

        def work():
            from repro.query.engine import open_query_cursor, run_query

            if txn is not None:
                # Inside a transaction the stream must not outlive the txn
                # (commit/abort can land between fetches), so execute
                # eagerly and stream the buffered rows.
                result = run_query(
                    self.db, text, bind_vars, txn,
                    timeout=timeout, max_rows=max_rows,
                    batch_size=params.get("batch_size"),
                )
                cursor: Any = _EagerCursor(result.rows, result.stats)
            else:
                cursor = open_query_cursor(
                    self.db, text, bind_vars,
                    timeout=timeout, max_rows=max_rows,
                    batch_size=params.get("batch_size"),
                )
            # First chunk rides in the same blocking call: one admission
            # pass, and DML (executed eagerly on first pull) occupies its
            # worker for the whole statement.
            try:
                return cursor, cursor.next_batch(chunk_rows)
            except BaseException:
                cursor.close()
                raise

        phases: dict = {}
        cursor, rows = await self._run_blocking(work, phases=phases)
        if cursor.exhausted:
            cursor.close()
            stats = dict(cursor.stats)
            stats["server_phases"] = _phases_ms(phases)
            stats["last_lsn"] = self.db.context.log.last_lsn
            return {
                "cursor": None,
                "rows": rows,
                "has_more": False,
                "stats": stats,
            }
        context = tracing.current_context()
        try:
            entry = session.add_cursor(
                cursor, chunk_rows, text, self.max_cursors_per_session,
                trace_id=context.trace_id if context is not None else None,
            )
        except Exception:
            cursor.close()
            raise
        if obs_metrics.ENABLED:
            obs_metrics.counter("server_cursors_opened_total").inc()
        stats = dict(cursor.stats)
        stats["server_phases"] = _phases_ms(phases)
        stats["last_lsn"] = self.db.context.log.last_lsn
        return {
            "cursor": entry.cursor_id,
            "rows": rows,
            "has_more": True,
            "stats": stats,
        }

    async def _op_cursor_next(self, session: Session, params: dict) -> dict:
        cursor_id = params.get("cursor")
        if not isinstance(cursor_id, int):
            raise ProtocolError("cursor_next needs an integer 'cursor'")
        entry = session.get_cursor(cursor_id)
        entry.touch()
        entry.fetches += 1
        here = tracing.current_span()
        if here is not None:
            here.set(cursor=entry.cursor_id, fetch=entry.fetches)
        phases: dict = {}
        try:
            rows = await self._run_blocking(
                lambda: entry.cursor.next_batch(entry.chunk_rows),
                phases=phases,
            )
        except Exception:
            # A failed stream has no resumable state to keep.
            session.pop_cursor(entry.cursor_id)
            entry.close()
            raise
        stats = dict(entry.cursor.stats)
        stats["cursor_fetches"] = entry.fetches
        stats["server_phases"] = _phases_ms(phases)
        stats["last_lsn"] = self.db.context.log.last_lsn
        if entry.cursor.exhausted:
            session.pop_cursor(entry.cursor_id)
            entry.close()
            return {
                "cursor": None,
                "rows": rows,
                "has_more": False,
                "stats": stats,
            }
        return {
            "cursor": entry.cursor_id,
            "rows": rows,
            "has_more": True,
            "stats": stats,
        }

    def _op_cursor_close(self, session: Session, params: dict) -> dict:
        cursor_id = params.get("cursor")
        if not isinstance(cursor_id, int):
            raise ProtocolError("cursor_close needs an integer 'cursor'")
        entry = session.get_cursor(cursor_id)
        session.pop_cursor(cursor_id)
        entry.close()
        return {"cursor": cursor_id, "closed": True}

    # ------------------------------------------------- executor bridge ------

    async def _run_blocking(
        self, work, phases: Optional[dict] = None
    ) -> Any:
        """Run *work* on the thread pool with queue-depth admission control.

        The submitting task's trace context is handed to the worker thread
        explicitly (:func:`repro.obs.tracing.capture`) — context-vars are
        per-thread, so without the handoff every span the engine opens on
        the worker would be an orphan root instead of a child of
        ``server.request``.  Queue wait (submit → worker pickup) and
        execution are measured separately; *phases* (when given) receives
        both in seconds, and each lands in
        ``server_request_phase_seconds{phase=}``.
        """
        budget = self.max_inflight + self.queue_depth
        if self._inflight >= budget:
            if obs_metrics.ENABLED:
                obs_metrics.counter("server_overload_rejections_total").inc()
            obs_events.emit(
                "admission_rejected",
                reason="queue_full",
                inflight=self._inflight,
                budget=budget,
            )
            raise ServerOverloadedError(
                f"{self._inflight} requests in flight or queued "
                f"(budget {budget}: {self.max_inflight} workers + "
                f"{self.queue_depth} queue slots) — back off and retry"
            )
        if self._executor is None:
            raise ServerShutdownError("server executor is gone")
        self._inflight += 1
        self._drained.clear()
        if obs_metrics.ENABLED:
            obs_metrics.gauge("server_inflight_queries").set(self._inflight)
        handoff = tracing.capture()
        measured: dict = {}
        submitted = time.perf_counter()

        def bridged():
            picked_up = time.perf_counter()
            measured["queue"] = picked_up - submitted
            try:
                return handoff.run(work)
            finally:
                measured["execute"] = time.perf_counter() - picked_up

        try:
            return await asyncio.get_running_loop().run_in_executor(
                self._executor, bridged
            )
        finally:
            self._inflight -= 1
            if obs_metrics.ENABLED:
                obs_metrics.gauge("server_inflight_queries").set(self._inflight)
                if measured:
                    for phase in ("queue", "execute"):
                        obs_metrics.histogram(
                            "server_request_phase_seconds", phase=phase
                        ).observe(measured.get(phase, 0.0))
            if self._inflight == 0:
                self._drained.set()
            here = tracing.current_span()
            if here is not None and measured:
                here.set(
                    queue_ms=round(measured.get("queue", 0.0) * 1000, 3),
                    execute_ms=round(measured.get("execute", 0.0) * 1000, 3),
                )
            if phases is not None:
                phases.update(measured)
