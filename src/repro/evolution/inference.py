"""Schema inference / extraction for schemaless data (challenge 3).

Slide 98 lists "schema language for multi-model data and schema extraction"
among the theoretical challenges; this module implements the practical core:
given a stream of JSON documents, infer a descriptive schema — per-path type
sets, optionality, observed value statistics — of the kind Sinew builds its
catalog from and AsterixDB's open datatypes imply.

The inferred schema is a plain dict (itself a model value) so it can be
stored, diffed and queried like any other document.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Optional

from repro.core import datamodel

__all__ = ["infer_schema", "schema_diff", "required_fields_of"]


def _leaf_type(value: Any) -> str:
    return datamodel.type_name(value)


class _FieldStats:
    __slots__ = ("types", "present", "samples", "children", "item_types")

    def __init__(self):
        self.types: set[str] = set()
        self.present = 0
        self.samples: list = []
        self.children: dict[str, "_FieldStats"] = {}
        self.item_types: set[str] = set()

    def observe(self, value: Any) -> None:
        self.present += 1
        tag = datamodel.type_of(value)
        self.types.add(_leaf_type(value))
        if tag is datamodel.TypeTag.OBJECT:
            for key, item in value.items():
                self.children.setdefault(key, _FieldStats()).observe(item)
        elif tag is datamodel.TypeTag.ARRAY:
            for item in value:
                self.item_types.add(_leaf_type(item))
        else:
            if len(self.samples) < 5 and value not in self.samples:
                self.samples.append(value)

    def describe(self, total: int) -> dict:
        description: dict[str, Any] = {
            "types": sorted(self.types),
            "optional": self.present < total,
            "presence": self.present / total if total else 0.0,
        }
        if self.samples:
            description["samples"] = sorted(
                self.samples, key=datamodel.SortKey
            )
        if self.item_types:
            description["items"] = sorted(self.item_types)
        if self.children:
            description["fields"] = {
                key: child.describe(self.present)
                for key, child in sorted(self.children.items())
            }
        return description


def infer_schema(documents: Iterable[dict]) -> dict:
    """Infer a descriptive schema from an iterable of documents.

    Returns ``{"count": N, "fields": {name: {types, optional, presence,
    [samples], [items], [fields]}}}``; nested objects recurse, arrays record
    their element types.
    """
    root = _FieldStats()
    count = 0
    for document in documents:
        root.observe(datamodel.normalize(document))
        count += 1
    description = root.describe(count) if count else {"types": [], "optional": False}
    return {
        "count": count,
        "fields": description.get("fields", {}),
    }


def required_fields_of(schema: dict, min_presence: float = 1.0) -> dict[str, str]:
    """Fields present in at least *min_presence* of documents with a single
    type — suitable for :class:`DocumentCollection` required_fields (the
    open→closed schema promotion of slide 18)."""
    required = {}
    for name, description in schema.get("fields", {}).items():
        if description["presence"] >= min_presence and len(description["types"]) == 1:
            required[name] = description["types"][0]
    return required


def schema_diff(old: dict, new: dict) -> dict:
    """Field-level diff between two inferred schemas: added, removed, and
    type-changed fields (the inputs model evolution planning needs)."""
    old_fields = old.get("fields", {})
    new_fields = new.get("fields", {})
    added = sorted(set(new_fields) - set(old_fields))
    removed = sorted(set(old_fields) - set(new_fields))
    changed = {}
    for name in set(old_fields) & set(new_fields):
        old_types = old_fields[name]["types"]
        new_types = new_fields[name]["types"]
        if old_types != new_types:
            changed[name] = {"from": old_types, "to": new_types}
    return {"added": added, "removed": removed, "changed": changed}
