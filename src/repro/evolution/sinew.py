"""Sinew's universal relation over multi-structured data (slide 36).

"Sinew: a new layer above a relational DBMS that enables SQL queries over
multi-structured data without having to define a schema.  Logical view = a
universal relation — one column for each unique key in the data set; nested
data is flattened into separate columns.  Physically partially materialized."

:class:`UniversalRelation` watches a namespace through the central log and
maintains the column catalog (dotted paths of every key seen).  Every column
starts *virtual* — reads recompute it from the stored documents, like
Vertica's flex-table ``maplookup()`` (slide 43).  :meth:`promote`
materializes a column into a real map maintained incrementally; the
materialization benchmark (E17) measures the difference.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.core import datamodel
from repro.errors import SchemaError
from repro.storage.log import CentralLog, LogEntry, LogOp
from repro.storage.views import RowView

__all__ = ["UniversalRelation", "flatten_document"]


def flatten_document(document: Any, prefix: str = "") -> dict[str, Any]:
    """Flatten nested objects into dotted columns; arrays stay whole values
    (Sinew treats them as opaque), scalars map directly."""
    if datamodel.type_of(document) is not datamodel.TypeTag.OBJECT:
        return {prefix or "$value": document}
    flat: dict[str, Any] = {}
    for key, value in document.items():
        column = f"{prefix}.{key}" if prefix else key
        if datamodel.type_of(value) is datamodel.TypeTag.OBJECT and value:
            flat.update(flatten_document(value, column))
        else:
            flat[column] = value
    return flat


class UniversalRelation:
    """The logical universal relation over one namespace."""

    def __init__(self, log: CentralLog, rows: RowView, namespace: str):
        self._rows = rows
        self.namespace = namespace
        self._columns: set[str] = set()
        self._materialized: dict[str, dict[Any, Any]] = {}
        self.virtual_reads = 0
        self.materialized_reads = 0
        log.subscribe(self._on_log_entry)
        for _key, document in rows.scan(namespace):
            self._columns.update(flatten_document(document))

    # -- log maintenance --------------------------------------------------------

    def _on_log_entry(self, entry: LogEntry) -> None:
        if entry.namespace != self.namespace:
            return
        if entry.op is LogOp.DROP_NAMESPACE:
            self._columns.clear()
            for column in self._materialized:
                self._materialized[column] = {}
            return
        if not entry.is_data_op():
            return
        if entry.op in (LogOp.UPDATE, LogOp.DELETE) and entry.before is not None:
            before_flat = flatten_document(entry.before)
            for column, store in self._materialized.items():
                if column in before_flat:
                    store.pop(entry.key, None)
        if entry.op in (LogOp.INSERT, LogOp.UPDATE):
            flat = flatten_document(entry.value)
            self._columns.update(flat)
            for column, store in self._materialized.items():
                if column in flat:
                    store[entry.key] = flat[column]

    # -- catalog -------------------------------------------------------------------

    def columns(self) -> list[str]:
        """Every column of the universal relation (dotted key paths)."""
        return sorted(self._columns)

    def materialized_columns(self) -> list[str]:
        return sorted(self._materialized)

    def is_materialized(self, column: str) -> bool:
        return column in self._materialized

    # -- materialization (virtual → real columns) --------------------------------------

    def promote(self, column: str) -> int:
        """Materialize *column*; returns the number of rows it covers."""
        if column not in self._columns:
            raise SchemaError(
                f"universal relation over {self.namespace!r} has no column "
                f"{column!r}"
            )
        store: dict[Any, Any] = {}
        for key, document in self._rows.scan(self.namespace):
            flat = flatten_document(document)
            if column in flat:
                store[key] = flat[column]
        self._materialized[column] = store
        return len(store)

    def demote(self, column: str) -> None:
        """Back to virtual (frees the materialized map)."""
        self._materialized.pop(column, None)

    # -- reads ----------------------------------------------------------------------

    def column_values(self, column: str) -> Iterator[tuple[Any, Any]]:
        """(row key, value) pairs of one column — materialized map when
        promoted, document scan (the maplookup path) otherwise."""
        store = self._materialized.get(column)
        if store is not None:
            self.materialized_reads += 1
            return iter(list(store.items()))
        self.virtual_reads += 1
        result = []
        for key, document in self._rows.scan(self.namespace):
            flat = flatten_document(document)
            if column in flat:
                result.append((key, flat[column]))
        return iter(result)

    def select(
        self,
        where: Callable[[dict], bool],
        columns: Optional[list[str]] = None,
    ) -> list[dict]:
        """SQL over the universal relation: each row is its flattened
        document (missing columns read as None)."""
        result = []
        for _key, document in self._rows.scan(self.namespace):
            flat = flatten_document(document)
            row = {column: flat.get(column) for column in self._columns}
            if where(row):
                if columns is not None:
                    row = {column: row.get(column) for column in columns}
                result.append(row)
        return result

    def row(self, key: Any) -> Optional[dict]:
        document = self._rows.get(self.namespace, key)
        if document is None:
            return None
        flat = flatten_document(document)
        return {column: flat.get(column) for column in self._columns}
