"""Model mapping & model evolution (challenge 3, slide 94).

"Relational table (legacy data) + JSON document (new data) — model mapping
among different models of data."

Three families of mappings:

* **row ↔ document** — :func:`row_to_document` / :func:`document_to_row`
  (flattening nested values into columns, Sinew-style);
* **bulk copies** — :func:`table_to_collection` (legacy → documents) and
  :func:`collection_to_table` (documents → typed relation, with schema
  inference choosing column types);
* **documents ↔ graph** — :func:`collection_to_graph` reifies reference
  fields into edges.

:class:`HybridEntityView` is the slide-94 scenario itself: one logical
entity set whose older members live in a relational table and newer members
in a document collection, readable (and queryable) through one interface
without migrating anything.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.core import datamodel
from repro.document.store import DocumentCollection
from repro.errors import SchemaError
from repro.evolution.inference import infer_schema
from repro.evolution.sinew import flatten_document
from repro.graph.store import PropertyGraph
from repro.relational.schema import Column, ColumnType, TableSchema
from repro.relational.table import Table

__all__ = [
    "row_to_document",
    "document_to_row",
    "table_to_collection",
    "collection_to_table",
    "collection_to_graph",
    "HybridEntityView",
]

_TYPE_TO_COLUMN = {
    "number": ColumnType.FLOAT,
    "string": ColumnType.STRING,
    "bool": ColumnType.BOOLEAN,
    "array": ColumnType.JSON,
    "object": ColumnType.JSON,
    "null": ColumnType.JSON,
}


def row_to_document(row: dict, key_column: str = "id") -> dict:
    """A relational row as a document (the key column becomes ``_key``)."""
    document = dict(datamodel.normalize(row))
    if key_column in document:
        document["_key"] = str(document[key_column])
    return document


def document_to_row(document: dict, columns: Optional[list[str]] = None) -> dict:
    """A document as a flat row (dotted columns for nested objects)."""
    flat = flatten_document(
        {key: value for key, value in document.items() if key != "_key"}
    )
    if columns is None:
        return flat
    return {column: flat.get(column) for column in columns}


def table_to_collection(
    table: Table, collection: DocumentCollection, batch_txn: Any = None
) -> int:
    """Copy every row of *table* into *collection*; returns the count."""
    copied = 0
    for row in table.scan_cursor(txn=batch_txn):
        collection.insert(
            row_to_document(row, table.schema.primary_key), txn=batch_txn
        )
        copied += 1
    return copied


def collection_to_table(
    collection: DocumentCollection,
    db,
    table_name: str,
    primary_key: str = "_key",
) -> Table:
    """Create a typed table from a collection via schema inference.

    Single-typed top-level fields become typed columns; union-typed or
    nested fields become JSON columns (exactly what Oracle's JSON virtual
    columns and Sinew's typed columns do).
    """
    documents = list(collection.scan_cursor())
    schema_description = infer_schema(documents)
    columns = [Column(primary_key, ColumnType.STRING, nullable=False)]
    for name, description in schema_description["fields"].items():
        if name == primary_key:
            continue
        types = description["types"]
        if len(types) == 1:
            column_type = _TYPE_TO_COLUMN[types[0]]
        else:
            column_type = ColumnType.JSON
        columns.append(Column(name, column_type))
    table = db.create_table(
        TableSchema(table_name, columns, primary_key=primary_key)
    )
    for document in documents:
        row = {name: document.get(name) for name in table.schema.column_names}
        row[primary_key] = document["_key"]
        table.insert(row)
    return table


def collection_to_graph(
    collection: DocumentCollection,
    graph: PropertyGraph,
    reference_fields: dict[str, str],
) -> tuple[int, int]:
    """Reify documents as vertices and reference fields as labelled edges.

    ``reference_fields`` maps a document field holding a key (or list of
    keys) to the edge label to create, e.g. ``{"friends": "knows"}``.
    Returns (vertices, edges) created.
    """
    vertices = 0
    for document in collection.scan_cursor():
        if not graph.has_vertex(document["_key"]):
            properties = {
                key: value
                for key, value in document.items()
                if key != "_key" and key not in reference_fields
            }
            graph.add_vertex(document["_key"], properties)
            vertices += 1
    edges = 0
    for document in collection.scan_cursor():
        for field, label in reference_fields.items():
            targets = document.get(field)
            if targets is None:
                continue
            if not isinstance(targets, list):
                targets = [targets]
            for target in targets:
                target_key = str(target)
                if graph.has_vertex(target_key):
                    graph.add_edge(document["_key"], target_key, label=label)
                    edges += 1
    return vertices, edges


class HybridEntityView:
    """One entity set across two model eras (slide 94).

    Legacy rows live in *table*; new entities in *collection*.  Reads are
    unified into document shape; writes go to the new era.  ``migrate``
    moves legacy rows over, batch by batch, so the cut-over is incremental.
    """

    def __init__(self, table: Table, collection: DocumentCollection):
        self._table = table
        self._collection = collection
        self._key_column = table.schema.primary_key

    def get(self, key: Any) -> Optional[dict]:
        """New era wins on key collisions (it is the write path)."""
        document = self._collection.get(str(key))
        if document is not None:
            return document
        row = self._table.get(key)
        if row is None:
            # keys of migrated rows are strings in the collection
            row = self._table.get(self._coerce_key(key))
        if row is None:
            return None
        return row_to_document(row, self._key_column)

    def _coerce_key(self, key: Any):
        if isinstance(key, str) and key.lstrip("-").isdigit():
            return int(key)
        return key

    def all(self) -> Iterator[dict]:
        """Every entity, both eras, new-era representation preferred."""
        seen = set()
        for document in self._collection.scan_cursor():
            seen.add(document["_key"])
            yield document
        for row in self._table.scan_cursor():
            key = str(row[self._key_column])
            if key not in seen:
                yield row_to_document(row, self._key_column)

    def find(self, predicate: Callable[[dict], bool]) -> list[dict]:
        return [entity for entity in self.all() if predicate(entity)]

    def count(self) -> int:
        return sum(1 for _ in self.all())

    def insert(self, document: dict) -> str:
        """Writes always land in the new era."""
        return self._collection.insert(document)

    def migrate(self, batch_size: int = 100) -> int:
        """Move up to *batch_size* legacy rows into the collection;
        returns how many moved (0 = migration complete)."""
        moved = 0
        for row in list(self._table.scan_cursor()):
            if moved >= batch_size:
                break
            key = row[self._key_column]
            if self._collection.get(str(key)) is None:
                self._collection.insert(row_to_document(row, self._key_column))
            self._table.delete(key)
            moved += 1
        return moved

    @property
    def legacy_count(self) -> int:
        return self._table.count()

    @property
    def migrated_count(self) -> int:
        return self._collection.count()
