"""Versioned document migrations — "open schema data and model evolution:
query data with varied schemas and models" (slide 85).

Documents carry a ``_schema_version`` field (0 when absent).  A
:class:`MigrationPlan` is an ordered list of version steps, each a list of
field operations:

* :class:`RenameField`, :class:`AddField` (with default or derivation),
  :class:`DropField`, :class:`TransformField` (pure function),
  :class:`NestFields` / :class:`FlattenField` (reshape).

Two application modes, matching how production systems roll schema changes:

* **eager** — :meth:`MigrationPlan.apply_all` rewrites every stored
  document to the target version;
* **lazy** — :class:`LazyMigrator` upgrades documents *on read*, leaving
  storage mixed-version (the "query data with varied schemas" case), and
  can report how much of the collection is still behind.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core import datamodel
from repro.errors import SchemaError

__all__ = [
    "FieldOperation",
    "RenameField",
    "AddField",
    "DropField",
    "TransformField",
    "NestFields",
    "FlattenField",
    "MigrationPlan",
    "LazyMigrator",
    "VERSION_FIELD",
]

VERSION_FIELD = "_schema_version"


class FieldOperation:
    """One document rewrite step."""

    def apply(self, document: dict) -> dict:
        raise NotImplementedError


class RenameField(FieldOperation):
    def __init__(self, old: str, new: str):
        self.old = old
        self.new = new

    def apply(self, document: dict) -> dict:
        if self.old not in document:
            return document
        updated = dict(document)
        updated[self.new] = updated.pop(self.old)
        return updated


class AddField(FieldOperation):
    """Add a field with a constant default or a derivation over the doc."""

    def __init__(
        self,
        name: str,
        default: Any = None,
        derive: Optional[Callable[[dict], Any]] = None,
    ):
        self.name = name
        self.default = default
        self.derive = derive

    def apply(self, document: dict) -> dict:
        if self.name in document:
            return document
        updated = dict(document)
        if self.derive is not None:
            updated[self.name] = self.derive(document)
        else:
            updated[self.name] = datamodel.normalize(self.default)
        return updated


class DropField(FieldOperation):
    def __init__(self, name: str):
        self.name = name

    def apply(self, document: dict) -> dict:
        if self.name not in document:
            return document
        updated = dict(document)
        del updated[self.name]
        return updated


class TransformField(FieldOperation):
    def __init__(self, name: str, transform: Callable[[Any], Any]):
        self.name = name
        self.transform = transform

    def apply(self, document: dict) -> dict:
        if self.name not in document:
            return document
        updated = dict(document)
        updated[self.name] = datamodel.normalize(self.transform(updated[self.name]))
        return updated


class NestFields(FieldOperation):
    """Move flat fields under a new object field."""

    def __init__(self, target: str, fields: list[str]):
        self.target = target
        self.fields = list(fields)

    def apply(self, document: dict) -> dict:
        updated = dict(document)
        nested = {}
        for field in self.fields:
            if field in updated:
                nested[field] = updated.pop(field)
        if nested:
            updated[self.target] = nested
        return updated


class FlattenField(FieldOperation):
    """Inverse of :class:`NestFields`: hoist an object field's members."""

    def __init__(self, source: str):
        self.source = source

    def apply(self, document: dict) -> dict:
        nested = document.get(self.source)
        if datamodel.type_of(nested) is not datamodel.TypeTag.OBJECT:
            return document
        updated = dict(document)
        del updated[self.source]
        for key, value in nested.items():
            updated.setdefault(key, value)
        return updated


class MigrationPlan:
    """Ordered versions; version N is produced by applying step list N
    (1-indexed) to a version N-1 document."""

    def __init__(self):
        self._steps: list[list[FieldOperation]] = []

    def add_version(self, operations: list[FieldOperation]) -> int:
        """Register the next version; returns its number."""
        self._steps.append(list(operations))
        return len(self._steps)

    @property
    def latest_version(self) -> int:
        return len(self._steps)

    def upgrade(self, document: dict, to_version: Optional[int] = None) -> dict:
        """A copy of *document* upgraded from its recorded version."""
        target = self.latest_version if to_version is None else to_version
        if target > self.latest_version:
            raise SchemaError(f"no version {target} (latest is {self.latest_version})")
        current = int(document.get(VERSION_FIELD, 0))
        if current > target:
            raise SchemaError(
                f"document is at version {current}, cannot downgrade to {target}"
            )
        upgraded = dict(document)
        for version in range(current, target):
            for operation in self._steps[version]:
                upgraded = operation.apply(upgraded)
        upgraded[VERSION_FIELD] = target
        return upgraded

    def apply_all(self, collection, txn=None) -> int:
        """Eagerly rewrite every stored document to the latest version;
        returns how many were rewritten."""
        rewritten = 0
        for document in list(collection.scan_cursor(txn=txn)):
            if int(document.get(VERSION_FIELD, 0)) < self.latest_version:
                upgraded = self.upgrade(document)
                collection.replace(document["_key"], upgraded, txn=txn)
                rewritten += 1
        return rewritten


class LazyMigrator:
    """Read-through migrator: storage stays mixed-version, reads are
    always latest-version."""

    def __init__(self, collection, plan: MigrationPlan):
        self._collection = collection
        self._plan = plan
        self.lazy_upgrades = 0

    def get(self, key: str, txn=None) -> Optional[dict]:
        document = self._collection.get(key, txn=txn)
        if document is None:
            return None
        if int(document.get(VERSION_FIELD, 0)) < self._plan.latest_version:
            self.lazy_upgrades += 1
            return self._plan.upgrade(document)
        return document

    def all(self, txn=None):
        for document in self._collection.scan_cursor(txn=txn):
            if int(document.get(VERSION_FIELD, 0)) < self._plan.latest_version:
                self.lazy_upgrades += 1
                yield self._plan.upgrade(document)
            else:
                yield document

    def pending_count(self, txn=None) -> int:
        """Documents still stored below the latest version."""
        return sum(
            1
            for document in self._collection.scan_cursor(txn=txn)
            if int(document.get(VERSION_FIELD, 0)) < self._plan.latest_version
        )

    def settle(self, batch_size: int = 100, txn=None) -> int:
        """Persist upgrades for up to *batch_size* stale documents (the
        background compaction real systems pair with lazy reads)."""
        settled = 0
        for document in list(self._collection.scan_cursor(txn=txn)):
            if settled >= batch_size:
                break
            if int(document.get(VERSION_FIELD, 0)) < self._plan.latest_version:
                self._collection.replace(
                    document["_key"], self._plan.upgrade(document), txn=txn
                )
                settled += 1
        return settled
