"""Schema & model evolution (challenge 3): inference, Sinew, mapping,
migrations."""

from repro.evolution.inference import infer_schema, required_fields_of, schema_diff
from repro.evolution.mapping import (
    HybridEntityView,
    collection_to_graph,
    collection_to_table,
    document_to_row,
    row_to_document,
    table_to_collection,
)
from repro.evolution.migration import (
    VERSION_FIELD,
    AddField,
    DropField,
    FieldOperation,
    FlattenField,
    LazyMigrator,
    MigrationPlan,
    NestFields,
    RenameField,
    TransformField,
)
from repro.evolution.sinew import UniversalRelation, flatten_document

__all__ = [
    "infer_schema",
    "required_fields_of",
    "schema_diff",
    "HybridEntityView",
    "collection_to_graph",
    "collection_to_table",
    "document_to_row",
    "row_to_document",
    "table_to_collection",
    "VERSION_FIELD",
    "AddField",
    "DropField",
    "FieldOperation",
    "FlattenField",
    "LazyMigrator",
    "MigrationPlan",
    "NestFields",
    "RenameField",
    "TransformField",
    "UniversalRelation",
    "flatten_document",
]
