"""The multi-model join index (challenge 4, slide 95).

"Inter-model indexes to speed up the inter-model query processing — a new
index structure for graph, document and relational joins."

The running example's recommendation query chains four models:

    customers (relational)  --knows-->  friends (graph)
        --cart-->  order_no (key/value)  -->  order documents (JSON)

A :class:`MultiModelJoinIndex` materializes such a chain as a sequence of
*hops*, precomputing source-key → terminal-keys so the cross-model join
becomes one probe instead of three nested lookups.  Hops:

* :class:`EdgeHop` — follow a graph edge collection (ArangoDB edge documents
  with ``_from``/``_to``), outbound or inbound;
* :class:`KvHop` — dereference a key/value bucket (key → stored value, used
  as the next hop's key);
* :class:`FieldLookupHop` — inverted lookup into a document collection
  (value → keys of documents whose ``field`` equals it);
* :class:`KeyHop` — direct primary-key identity into a collection.

Maintenance is *coarse-grained*: any committed change to a namespace the
chain touches marks the index stale, and the next probe rebuilds it.  That
is the standard materialized-view trade-off and is reported honestly by the
benchmark (E18 measures probe cost, rebuild cost, and the break-even write
rate).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Optional

from repro.storage.log import CentralLog, LogEntry
from repro.storage.views import RowView

__all__ = [
    "Hop",
    "EdgeHop",
    "KvHop",
    "FieldLookupHop",
    "KeyHop",
    "MultiModelJoinIndex",
]


class Hop:
    """One step of a cross-model chain; maps a set of keys to the next set."""

    #: namespace whose mutation invalidates this hop
    namespace = ""

    def expand(self, rows: RowView, keys: Iterable[Any]) -> set:
        raise NotImplementedError


class EdgeHop(Hop):
    """Graph hop: vertex keys → neighbour vertex keys along an edge
    collection (``direction`` is ``"outbound"``, ``"inbound"`` or ``"any"``)."""

    def __init__(self, namespace: str, direction: str = "outbound"):
        if direction not in ("outbound", "inbound", "any"):
            raise ValueError(f"bad edge direction {direction!r}")
        self.namespace = namespace
        self.direction = direction

    def expand(self, rows: RowView, keys: Iterable[Any]) -> set:
        wanted = set(keys)
        result = set()
        for _edge_key, edge in rows.scan(self.namespace):
            source = edge.get("_from")
            target = edge.get("_to")
            if self.direction in ("outbound", "any") and source in wanted:
                result.add(target)
            if self.direction in ("inbound", "any") and target in wanted:
                result.add(source)
        return result


class KvHop(Hop):
    """Key/value hop: keys → stored values."""

    def __init__(self, namespace: str):
        self.namespace = namespace

    def expand(self, rows: RowView, keys: Iterable[Any]) -> set:
        result = set()
        for key in keys:
            value = rows.get(self.namespace, key)
            if value is not None:
                record = value.get("value") if isinstance(value, dict) else value
                if isinstance(record, (str, int, float, bool)):
                    result.add(record)
        return result


class FieldLookupHop(Hop):
    """Document hop: values → keys of documents whose *field* matches."""

    def __init__(self, namespace: str, field: str):
        self.namespace = namespace
        self.field = field

    def expand(self, rows: RowView, keys: Iterable[Any]) -> set:
        wanted = set(keys)
        result = set()
        for doc_key, document in rows.scan(self.namespace):
            if isinstance(document, dict) and document.get(self.field) in wanted:
                result.add(doc_key)
        return result


class KeyHop(Hop):
    """Identity hop: keys that exist as primary keys of *namespace*."""

    def __init__(self, namespace: str):
        self.namespace = namespace

    def expand(self, rows: RowView, keys: Iterable[Any]) -> set:
        return {key for key in keys if rows.contains(self.namespace, key)}


class MultiModelJoinIndex:
    """Materialized source-key → terminal-keys map across model hops."""

    def __init__(
        self,
        log: CentralLog,
        rows: RowView,
        source_namespace: str,
        hops: list[Hop],
        name: str = "",
    ):
        if not hops:
            raise ValueError("a multi-model join index needs at least one hop")
        self.name = name or f"mmjoin:{source_namespace}"
        self._rows = rows
        self._source_namespace = source_namespace
        self._hops = list(hops)
        self._watched = {source_namespace} | {hop.namespace for hop in hops}
        self._mapping: dict[Any, frozenset] = {}
        self._stale = True
        self._rebuilds = 0
        log.subscribe(self._on_log_entry)

    # -- maintenance ---------------------------------------------------------

    def _on_log_entry(self, entry: LogEntry) -> None:
        if entry.is_data_op() and entry.namespace in self._watched:
            self._stale = True

    def rebuild(self) -> None:
        """Recompute the full source → terminals mapping."""
        mapping: dict[Any, frozenset] = {}
        for source_key in self._rows.keys(self._source_namespace):
            keys: set = {source_key}
            for hop in self._hops:
                keys = hop.expand(self._rows, keys)
                if not keys:
                    break
            mapping[source_key] = frozenset(keys)
        self._mapping = mapping
        self._stale = False
        self._rebuilds += 1

    @property
    def is_stale(self) -> bool:
        return self._stale

    @property
    def rebuild_count(self) -> int:
        return self._rebuilds

    # -- probes --------------------------------------------------------------

    def lookup(self, source_key: Any) -> frozenset:
        """Terminal keys reachable from *source_key* (rebuilds when stale)."""
        if self._stale:
            self.rebuild()
        return self._mapping.get(source_key, frozenset())

    def lookup_many(self, source_keys: Iterable[Any]) -> set:
        if self._stale:
            self.rebuild()
        result: set = set()
        for key in source_keys:
            result |= self._mapping.get(key, frozenset())
        return result

    def __len__(self) -> int:
        if self._stale:
            self.rebuild()
        return len(self._mapping)
