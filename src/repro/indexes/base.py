"""The common index protocol.

Every index structure in the subsystem (slides 78-82's taxonomy) implements
this small protocol so that :class:`repro.storage.views.IndexView` and the
query optimizer can treat them uniformly:

* ``insert(key, rid)`` — associate a record id with an indexed value;
* ``delete(key, rid)`` — remove one association;
* ``search(key) -> list[rid]`` — exact-match probe;
* ``clear()`` — drop all entries;
* ``__len__`` — number of distinct indexed values.

Ordered indexes additionally provide ``range_search(low, high)``; the
inverted indexes provide containment/key-existence probes; bitmap indexes
provide bit-parallel aggregates.  Capability flags let the optimizer pick a
structure without isinstance checks.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["Index", "IndexCapabilities"]


class IndexCapabilities:
    """Declarative capabilities used by the optimizer's access-path choice."""

    def __init__(
        self,
        point: bool = True,
        range_: bool = False,
        containment: bool = False,
        key_exists: bool = False,
        text: bool = False,
    ):
        self.point = point
        self.range = range_
        self.containment = containment
        self.key_exists = key_exists
        self.text = text

    def __repr__(self) -> str:
        enabled = [
            name
            for name in ("point", "range", "containment", "key_exists", "text")
            if getattr(self, name)
        ]
        return f"IndexCapabilities({', '.join(enabled)})"


class Index:
    """Abstract base index; see module docstring for the protocol."""

    kind = "abstract"
    capabilities = IndexCapabilities()

    def insert(self, key: Any, rid: Any) -> None:
        raise NotImplementedError

    def delete(self, key: Any, rid: Any) -> None:
        raise NotImplementedError

    def search(self, key: Any) -> list[Any]:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def bulk_load(self, pairs: Iterable[tuple[Any, Any]]) -> None:
        """Insert many (key, rid) pairs; subclasses may override with a
        faster bottom-up build."""
        for key, rid in pairs:
            self.insert(key, rid)

    def memory_items(self) -> int:
        """Approximate number of stored index items (for the size columns in
        the GIN benchmark, E10)."""
        return len(self)
