"""Index subsystem: the slide 78-82 taxonomy plus the multi-model index."""

from repro.indexes.base import Index, IndexCapabilities
from repro.indexes.bitmap import BitmapIndex, BitSliceIndex
from repro.indexes.btree import BPlusTree
from repro.indexes.fulltext import FullTextIndex, extract_text, tokenize
from repro.indexes.hashindex import ExtendibleHashIndex
from repro.indexes.inverted import GinJsonbOps, GinJsonbPathOps
from repro.indexes.manager import INDEX_KINDS, IndexManager
from repro.indexes.multimodel import (
    EdgeHop,
    FieldLookupHop,
    Hop,
    KeyHop,
    KvHop,
    MultiModelJoinIndex,
)

__all__ = [
    "Index",
    "IndexCapabilities",
    "BitmapIndex",
    "BitSliceIndex",
    "BPlusTree",
    "FullTextIndex",
    "extract_text",
    "tokenize",
    "ExtendibleHashIndex",
    "GinJsonbOps",
    "GinJsonbPathOps",
    "INDEX_KINDS",
    "IndexManager",
    "EdgeHop",
    "FieldLookupHop",
    "Hop",
    "KeyHop",
    "KvHop",
    "MultiModelJoinIndex",
]
