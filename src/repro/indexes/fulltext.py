"""Full-text inverted index (slide 75: "Full-text search — in general quite
common.  Riak: Solr index + operations — wildcards, proximity search, range
search, Boolean operators, grouping").

A classic positional inverted index: term → {rid → [positions]}.  Queries
support the Solr-flavoured operations the tutorial lists:

* term and phrase search (positions make phrases exact);
* boolean combinators AND / OR / NOT;
* trailing-wildcard prefix search (``data*``);
* proximity search (two terms within *k* positions);
* simple TF scoring for ranked results.

MarkLogic's "universal index" (slide 81) — an inverted index over every word
*and* every element/property value — is realized by feeding documents through
:func:`extract_text` which walks nested values.
"""

from __future__ import annotations

import re
from collections import defaultdict
from typing import Any, Iterable

from repro.core import datamodel
from repro.core.datamodel import SortKey
from repro.indexes.base import Index, IndexCapabilities

__all__ = ["FullTextIndex", "tokenize", "extract_text"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")

_STOPWORDS = frozenset(
    "a an and are as at be by for from has he in is it its of on that the to was were will with".split()
)


def tokenize(text: str, keep_stopwords: bool = False) -> list[str]:
    """Lowercase word tokens in order (positions matter for phrases)."""
    tokens = _TOKEN_RE.findall(text.lower())
    if keep_stopwords:
        return tokens
    return [token for token in tokens if token not in _STOPWORDS]


def extract_text(value: Any) -> str:
    """Flatten any model value into searchable text (the universal-index
    behaviour: every word, JSON property value and XML text node)."""
    tag = datamodel.type_of(value)
    if tag is datamodel.TypeTag.STRING:
        return value
    if tag is datamodel.TypeTag.OBJECT:
        return " ".join(extract_text(item) for item in value.values())
    if tag is datamodel.TypeTag.ARRAY:
        return " ".join(extract_text(item) for item in value)
    if tag is datamodel.TypeTag.NULL:
        return ""
    return str(value)


class FullTextIndex(Index):
    """Positional inverted index with boolean, phrase, wildcard and
    proximity queries."""

    kind = "fulltext"
    capabilities = IndexCapabilities(point=False, text=True)

    def __init__(self, name: str = "", keep_stopwords: bool = False):
        self.name = name
        self._keep_stopwords = keep_stopwords
        self._postings: dict[str, dict[Any, list[int]]] = defaultdict(dict)
        self._doc_lengths: dict[Any, int] = {}

    # -- protocol ----------------------------------------------------------

    def insert(self, key: Any, rid: Any) -> None:
        """Index the text (or document) *key* under *rid*."""
        tokens = tokenize(extract_text(key), self._keep_stopwords)
        if rid in self._doc_lengths:
            self.delete(None, rid)
        for position, token in enumerate(tokens):
            self._postings[token].setdefault(rid, []).append(position)
        self._doc_lengths[rid] = len(tokens)

    def delete(self, key: Any, rid: Any) -> None:
        """Remove *rid* entirely (the text is not needed to unindex)."""
        if rid not in self._doc_lengths:
            return
        empty_terms = []
        for term, postings in self._postings.items():
            postings.pop(rid, None)
            if not postings:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]
        del self._doc_lengths[rid]

    def search(self, key: Any) -> list[Any]:
        """Documents containing every token of *key* (implicit AND)."""
        return sorted(self.search_all(tokenize(str(key), self._keep_stopwords)), key=SortKey)

    def clear(self) -> None:
        self._postings.clear()
        self._doc_lengths.clear()

    def __len__(self) -> int:
        return len(self._postings)

    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    # -- query operations -----------------------------------------------------

    def search_term(self, term: str) -> set:
        return set(self._postings.get(term.lower(), {}))

    def search_all(self, terms: Iterable[str]) -> set:
        """Boolean AND."""
        result: set | None = None
        for term in terms:
            hits = self.search_term(term)
            result = hits if result is None else result & hits
            if not result:
                return set()
        return result if result is not None else set()

    def search_any(self, terms: Iterable[str]) -> set:
        """Boolean OR."""
        result: set = set()
        for term in terms:
            result |= self.search_term(term)
        return result

    def search_not(self, include: str, exclude: str) -> set:
        """Boolean NOT: docs with *include* but without *exclude*."""
        return self.search_term(include) - self.search_term(exclude)

    def search_prefix(self, prefix: str) -> set:
        """Trailing wildcard, e.g. ``data*``."""
        prefix = prefix.lower().rstrip("*")
        result: set = set()
        for term, postings in self._postings.items():
            if term.startswith(prefix):
                result |= set(postings)
        return result

    def search_phrase(self, phrase: str) -> set:
        """Exact phrase via position intersection."""
        tokens = tokenize(phrase, self._keep_stopwords)
        if not tokens:
            return set()
        candidates = self.search_all(tokens)
        result = set()
        for rid in candidates:
            first_positions = self._postings[tokens[0]][rid]
            for start in first_positions:
                if all(
                    start + offset in self._postings[token][rid]
                    for offset, token in enumerate(tokens[1:], start=1)
                ):
                    result.add(rid)
                    break
        return result

    def search_near(self, term_a: str, term_b: str, within: int) -> set:
        """Proximity: both terms occur within *within* positions."""
        hits_a = self._postings.get(term_a.lower(), {})
        hits_b = self._postings.get(term_b.lower(), {})
        result = set()
        for rid in set(hits_a) & set(hits_b):
            positions_b = hits_b[rid]
            if any(
                any(abs(pa - pb) <= within for pb in positions_b)
                for pa in hits_a[rid]
            ):
                result.add(rid)
        return result

    def rank(self, terms: Iterable[str], limit: int = 10) -> list[tuple[Any, float]]:
        """TF-scored OR query: (rid, score) sorted best-first."""
        scores: dict[Any, float] = defaultdict(float)
        for term in terms:
            for rid, positions in self._postings.get(term.lower(), {}).items():
                length = max(self._doc_lengths.get(rid, 1), 1)
                scores[rid] += len(positions) / length
        ranked = sorted(scores.items(), key=lambda item: (-item[1], SortKey(item[0])))
        return ranked[:limit]
