"""Index manager: the catalog of secondary indexes.

Creates index structures of every kind in the taxonomy, wraps them in
log-maintained :class:`repro.storage.views.IndexView` objects, backfills them
from existing data, and answers the optimizer's access-path question: *is
there an index on this collection and path that can serve this predicate?*
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import DuplicateCollectionError, UnknownIndexError
from repro.indexes.base import Index
from repro.obs import metrics as obs_metrics
from repro.indexes.bitmap import BitmapIndex, BitSliceIndex
from repro.indexes.btree import BPlusTree
from repro.indexes.fulltext import FullTextIndex
from repro.indexes.hashindex import ExtendibleHashIndex
from repro.indexes.inverted import GinJsonbOps, GinJsonbPathOps
from repro.storage.log import CentralLog
from repro.storage.views import IndexView, RowView

__all__ = ["IndexManager", "INDEX_KINDS"]

INDEX_KINDS = {
    "btree": BPlusTree,
    "hash": ExtendibleHashIndex,
    "gin": GinJsonbOps,
    "gin_path": GinJsonbPathOps,
    "bitmap": BitmapIndex,
    "bitslice": BitSliceIndex,
    "fulltext": FullTextIndex,
}


class IndexManager:
    """Registry of secondary indexes, keyed by name and by (namespace, path)."""

    def __init__(self, log: CentralLog, rows: RowView):
        self._log = log
        self._rows = rows
        self._by_name: dict[str, IndexView] = {}
        self._by_namespace: dict[str, list[IndexView]] = {}
        #: Monotone DDL counter — plan-cache entries are stamped with it,
        #: so creating or dropping an index invalidates cached plans whose
        #: access-path choice could change.
        self.version = 0

    # -- DDL ----------------------------------------------------------------

    def create_index(
        self,
        namespace: str,
        path: tuple = (),
        kind: str = "hash",
        unique: bool = False,
        name: Optional[str] = None,
    ) -> IndexView:
        """Create (and backfill) a secondary index.

        *path* is a tuple of field names into the record (empty = whole
        record, which is what the GIN kinds usually want).
        """
        if kind not in INDEX_KINDS:
            raise UnknownIndexError(
                f"unknown index kind {kind!r}; choose from {sorted(INDEX_KINDS)}"
            )
        path = tuple(path)
        index_name = name or f"{kind}:{namespace}:{'.'.join(path) or '*'}"
        if index_name in self._by_name:
            raise DuplicateCollectionError(f"index {index_name!r} already exists")
        factory = INDEX_KINDS[kind]
        if kind in ("btree", "hash"):
            structure: Index = factory(unique=unique, name=index_name)
        else:
            structure = factory(name=index_name)
        view = IndexView(self._log, namespace, path, structure)
        # Backfill from existing records (IndexView subscribes for new ones).
        for key, record in self._rows.scan(namespace):
            indexed = record if not path else view._extract(record)
            if indexed is not None:
                structure.insert(indexed, key)
        self._by_name[index_name] = view
        self._by_namespace.setdefault(namespace, []).append(view)
        self.version += 1
        if obs_metrics.ENABLED:
            obs_metrics.counter("indexes_created_total", kind=kind).inc()
        return view

    def drop_index(self, name: str) -> None:
        view = self._by_name.pop(name, None)
        if view is None:
            raise UnknownIndexError(f"no index named {name!r}")
        self._by_namespace[view.namespace].remove(view)
        self._log.unsubscribe(view.apply)
        self.version += 1

    # -- lookup ---------------------------------------------------------------

    def get(self, name: str) -> IndexView:
        view = self._by_name.get(name)
        if view is None:
            raise UnknownIndexError(f"no index named {name!r}")
        return view

    def indexes_on(self, namespace: str) -> list[IndexView]:
        return list(self._by_namespace.get(namespace, []))

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def find(
        self,
        namespace: str,
        path: tuple,
        capability: str = "point",
    ) -> Optional[IndexView]:
        """Best index on (namespace, path) supporting *capability*
        (``point`` / ``range`` / ``containment`` / ``key_exists`` / ``text``).

        Point probes prefer hash over B+tree (slide 79: extendible hashing is
        "significantly faster" for exact matches); everything else has a
        single natural structure.
        """
        path = tuple(path)
        candidates = [
            view
            for view in self._by_namespace.get(namespace, [])
            if view.path == path
            and getattr(view.index.capabilities, "range" if capability == "range" else capability, False)
        ]
        if not candidates:
            # Access-path miss: the optimizer asked and got nothing — the
            # scan that follows is exactly what an index would have saved.
            if obs_metrics.ENABLED:
                obs_metrics.counter(
                    "index_access_path_total", outcome="miss"
                ).inc()
            return None
        if capability == "point":
            candidates.sort(key=lambda view: 0 if view.index.kind == "hash" else 1)
        if obs_metrics.ENABLED:
            obs_metrics.counter("index_access_path_total", outcome="hit").inc()
        return candidates[0]
