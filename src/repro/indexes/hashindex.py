"""Extendible hashing index.

Slide 79: "OrientDB — extendible hashing, significantly faster [than SB
trees for point lookups]"; ArangoDB's primary and edge indexes are hash
indexes, and DynamoDB partitions by hash.  This module implements classic
extendible hashing — a directory of 2^d pointers into buckets with local
depths, doubling the directory only when a full bucket's local depth equals
the global depth — so the point-lookup-vs-range trade-off of experiment E11
is structural, not simulated.

Hash indexes deliberately cannot answer range queries (slide 79:
"user-defined [ArangoDB hash] indices … no range queries"); asking raises
:class:`UnsupportedIndexOperationError`.
"""

from __future__ import annotations

from typing import Any

from repro.core.datamodel import hash_value, values_equal
from repro.errors import ConstraintViolationError, UnsupportedIndexOperationError
from repro.indexes.base import Index, IndexCapabilities

__all__ = ["ExtendibleHashIndex"]


class _Bucket:
    __slots__ = ("local_depth", "entries")

    def __init__(self, local_depth: int):
        self.local_depth = local_depth
        # entries: list of (hash, key, [rids]) — a small open list; the
        # bucket capacity bounds its length.
        self.entries: list[list] = []


class ExtendibleHashIndex(Index):
    """Extendible hash index over arbitrary data-model values."""

    kind = "hash"
    capabilities = IndexCapabilities(point=True)

    def __init__(self, bucket_capacity: int = 8, unique: bool = False, name: str = ""):
        if bucket_capacity < 1:
            raise ValueError("bucket capacity must be positive")
        self._capacity = bucket_capacity
        self._unique = unique
        self.name = name
        self._global_depth = 1
        bucket_a = _Bucket(local_depth=1)
        bucket_b = _Bucket(local_depth=1)
        self._directory: list[_Bucket] = [bucket_a, bucket_b]
        self._distinct = 0
        self._entries = 0

    # -- protocol ----------------------------------------------------------

    def insert(self, key: Any, rid: Any) -> None:
        hashed = hash_value(key)
        while True:
            bucket = self._bucket_for(hashed)
            slot = self._find_entry(bucket, hashed, key)
            if slot is not None:
                if self._unique:
                    raise ConstraintViolationError(
                        f"unique hash index {self.name or self.kind!r} "
                        f"already contains key {key!r}"
                    )
                slot[2].append(rid)
                self._entries += 1
                return
            if len(bucket.entries) < self._capacity:
                bucket.entries.append([hashed, key, [rid]])
                self._distinct += 1
                self._entries += 1
                return
            self._split_bucket(hashed)

    def delete(self, key: Any, rid: Any) -> None:
        hashed = hash_value(key)
        bucket = self._bucket_for(hashed)
        slot = self._find_entry(bucket, hashed, key)
        if slot is None:
            return
        rids = slot[2]
        for index, stored in enumerate(rids):
            if stored == rid:
                del rids[index]
                self._entries -= 1
                break
        else:
            return
        if not rids:
            bucket.entries.remove(slot)
            self._distinct -= 1

    def search(self, key: Any) -> list[Any]:
        hashed = hash_value(key)
        bucket = self._bucket_for(hashed)
        slot = self._find_entry(bucket, hashed, key)
        if slot is None:
            return []
        return list(slot[2])

    def range_search(self, low: Any = None, high: Any = None, **kwargs) -> list[Any]:
        raise UnsupportedIndexOperationError(
            "hash indexes cannot answer range queries (use a B+tree index)"
        )

    def clear(self) -> None:
        self.__init__(bucket_capacity=self._capacity, unique=self._unique, name=self.name)

    def __len__(self) -> int:
        return self._distinct

    @property
    def entry_count(self) -> int:
        return self._entries

    @property
    def global_depth(self) -> int:
        return self._global_depth

    @property
    def directory_size(self) -> int:
        return len(self._directory)

    # -- internals -----------------------------------------------------------

    def _bucket_for(self, hashed: int) -> _Bucket:
        return self._directory[hashed & ((1 << self._global_depth) - 1)]

    @staticmethod
    def _find_entry(bucket: _Bucket, hashed: int, key: Any):
        for entry in bucket.entries:
            if entry[0] == hashed and values_equal(entry[1], key):
                return entry
        return None

    def _split_bucket(self, hashed: int) -> None:
        mask = (1 << self._global_depth) - 1
        bucket = self._directory[hashed & mask]
        if bucket.local_depth == self._global_depth:
            # Double the directory: each new slot aliases its low-bits twin.
            self._directory = self._directory + self._directory
            self._global_depth += 1
        new_depth = bucket.local_depth + 1
        bit = 1 << bucket.local_depth
        zero_bucket = _Bucket(new_depth)
        one_bucket = _Bucket(new_depth)
        for entry in bucket.entries:
            target = one_bucket if entry[0] & bit else zero_bucket
            target.entries.append(entry)
        # Repoint every directory slot that referenced the old bucket.
        for slot in range(len(self._directory)):
            if self._directory[slot] is bucket:
                self._directory[slot] = one_bucket if slot & bit else zero_bucket
