"""A B+tree index.

The tutorial's index taxonomy (slides 78-79) puts B-trees/B+trees at the
centre: Cassandra secondary indexes, SQL Server, Couchbase, Oracle's shredded
XML and JSON virtual columns, MySQL, and Oracle NoSQL DB's shard-local
B-trees all use them because they answer both point lookups *and* range
scans.  This is a real B+tree: values live only in leaves, leaves are linked
for in-order range scans, and internal nodes split/merge as the tree grows
and shrinks.

Keys are arbitrary data-model values ordered by
:func:`repro.core.datamodel.compare`; each key maps to a *set* of record ids
(non-unique secondary index), or at most one rid when ``unique=True``.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional

from repro.core.datamodel import SortKey, compare
from repro.errors import ConstraintViolationError
from repro.indexes.base import Index, IndexCapabilities

__all__ = ["BPlusTree"]


class _Node:
    """One B+tree node; ``children`` for internal nodes, ``values`` + ``next``
    for leaves.  Keys are stored wrapped in :class:`SortKey` so that bisect
    uses the engine's total order."""

    __slots__ = ("keys", "children", "values", "next", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: list[SortKey] = []
        self.children: list["_Node"] = []
        self.values: list[list[Any]] = []  # parallel to keys, leaves only
        self.next: Optional["_Node"] = None


class BPlusTree(Index):
    """B+tree with configurable fan-out (default order 32)."""

    kind = "btree"
    capabilities = IndexCapabilities(point=True, range_=True)

    def __init__(self, order: int = 32, unique: bool = False, name: str = ""):
        if order < 4:
            raise ValueError("B+tree order must be at least 4")
        self._order = order
        self._unique = unique
        self.name = name
        self._root = _Node(is_leaf=True)
        self._distinct = 0
        self._entries = 0
        self._height = 1

    # -- protocol ----------------------------------------------------------

    def insert(self, key: Any, rid: Any) -> None:
        """Add *rid* under *key*; splits nodes on overflow."""
        wrapped = SortKey(key)
        split = self._insert(self._root, wrapped, rid)
        if split is not None:
            sep, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1

    def delete(self, key: Any, rid: Any) -> None:
        """Remove one (key, rid) association; missing pairs are ignored.

        Underflowed leaves are left in place (lazy deletion) — a standard
        simplification that keeps the ordering invariants intact; the tree
        is rebuilt compact by :meth:`bulk_load` if ever needed.
        """
        leaf, position = self._find_leaf(SortKey(key))
        if position is None:
            return
        rids = leaf.values[position]
        for index, stored in enumerate(rids):
            if stored == rid:
                del rids[index]
                self._entries -= 1
                break
        else:
            return
        if not rids:
            del leaf.keys[position]
            del leaf.values[position]
            self._distinct -= 1

    def search(self, key: Any) -> list[Any]:
        """Record ids stored under exactly *key* (empty list when absent)."""
        leaf, position = self._find_leaf(SortKey(key))
        if position is None:
            return []
        return list(leaf.values[position])

    def clear(self) -> None:
        self._root = _Node(is_leaf=True)
        self._distinct = 0
        self._entries = 0
        self._height = 1

    def __len__(self) -> int:
        return self._distinct

    @property
    def entry_count(self) -> int:
        """Total (key, rid) pairs (distinct keys may hold many rids)."""
        return self._entries

    @property
    def height(self) -> int:
        return self._height

    # -- range scans ---------------------------------------------------------

    def range_search(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[Any]:
        """Record ids whose key falls in [low, high] (None = unbounded)."""
        return [rid for _key, rid in self.range_items(low, high, include_low, include_high)]

    def range_items(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[tuple[Any, Any]]:
        """Yield (key, rid) pairs in key order across the linked leaves."""
        if low is None:
            node: Optional[_Node] = self._leftmost_leaf()
            start = 0
        else:
            wrapped_low = SortKey(low)
            node = self._descend(wrapped_low)
            if include_low:
                start = bisect.bisect_left(node.keys, wrapped_low)
            else:
                start = bisect.bisect_right(node.keys, wrapped_low)
        wrapped_high = None if high is None else SortKey(high)
        while node is not None:
            for position in range(start, len(node.keys)):
                key = node.keys[position]
                if wrapped_high is not None:
                    boundary = compare(key.value, wrapped_high.value)
                    if boundary > 0 or (boundary == 0 and not include_high):
                        return
                for rid in node.values[position]:
                    yield key.value, rid
            node = node.next
            start = 0

    def items(self) -> Iterator[tuple[Any, Any]]:
        """All (key, rid) pairs in key order."""
        return self.range_items()

    def keys_in_order(self) -> list[Any]:
        seen = []
        node: Optional[_Node] = self._leftmost_leaf()
        while node is not None:
            seen.extend(key.value for key in node.keys)
            node = node.next
        return seen

    # -- internals -----------------------------------------------------------

    def _leftmost_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def _descend(self, key: SortKey) -> _Node:
        node = self._root
        while not node.is_leaf:
            position = bisect.bisect_right(node.keys, key)
            node = node.children[position]
        return node

    def _find_leaf(self, key: SortKey) -> tuple[_Node, Optional[int]]:
        leaf = self._descend(key)
        position = bisect.bisect_left(leaf.keys, key)
        if position < len(leaf.keys) and leaf.keys[position] == key:
            return leaf, position
        return leaf, None

    def _insert(
        self, node: _Node, key: SortKey, rid: Any
    ) -> Optional[tuple[SortKey, _Node]]:
        """Recursive insert; returns (separator, new right sibling) when the
        child split and the caller must absorb the separator."""
        if node.is_leaf:
            position = bisect.bisect_left(node.keys, key)
            if position < len(node.keys) and node.keys[position] == key:
                if self._unique:
                    raise ConstraintViolationError(
                        f"unique index {self.name or self.kind!r} already "
                        f"contains key {key.value!r}"
                    )
                node.values[position].append(rid)
                self._entries += 1
                return None
            node.keys.insert(position, key)
            node.values.insert(position, [rid])
            self._distinct += 1
            self._entries += 1
        else:
            position = bisect.bisect_right(node.keys, key)
            split = self._insert(node.children[position], key, rid)
            if split is not None:
                sep, right = split
                node.keys.insert(position, sep)
                node.children.insert(position + 1, right)
        if len(node.keys) >= self._order:
            return self._split(node)
        return None

    def _split(self, node: _Node) -> tuple[SortKey, _Node]:
        middle = len(node.keys) // 2
        right = _Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            right.keys = node.keys[middle:]
            right.values = node.values[middle:]
            node.keys = node.keys[:middle]
            node.values = node.values[:middle]
            right.next = node.next
            node.next = right
            separator = right.keys[0]
        else:
            separator = node.keys[middle]
            right.keys = node.keys[middle + 1:]
            right.children = node.children[middle + 1:]
            node.keys = node.keys[:middle]
            node.children = node.children[:middle + 1]
        return separator, right
