"""GIN-style inverted index over JSON documents (slide 82).

PostgreSQL's Generalized Inverted Index for ``jsonb`` comes in two operator
classes, both reproduced here:

* ``jsonb_ops`` (:class:`GinJsonbOps`) — "independent index items for each
  key and value in the data".  Supports the key-exists operators ``?``,
  ``?|``, ``?&`` *and* the containment operator ``@>``.  For containment it
  intersects the posting lists of every key and scalar of the probe value,
  then *rechecks* the candidates because co-occurrence of items does not
  prove structure (the slide's {"foo": {"bar": "baz"}} example).
* ``jsonb_path_ops`` (:class:`GinJsonbPathOps`) — "index items only for each
  value in the data: a hash of the value and the key(s) leading to it".
  Smaller and more selective for ``@>``, but it *cannot* answer key-exists
  queries at all.

Both return ``(candidates, recheck_needed)`` from their raw probes so the
benchmark (E10) can report false-positive/recheck rates, and a cooked
``search_contains`` that applies the recheck against a record accessor.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterable, Optional

from repro.core import datamodel
from repro.core.datamodel import SortKey
from repro.errors import UnsupportedIndexOperationError
from repro.indexes.base import Index, IndexCapabilities

__all__ = ["GinJsonbOps", "GinJsonbPathOps"]


def _scalar_token(value: Any) -> tuple:
    """Hashable token for one scalar value, keeping 1 and 1.0 together but
    1 and True apart (data-model equality semantics)."""
    tag = datamodel.type_of(value)
    if tag is datamodel.TypeTag.NUMBER:
        return ("V", "number", float(value))
    return ("V", tag.name, value)


class _PostingIndex(Index):
    """Shared machinery: token → set of record ids."""

    def __init__(self, name: str = ""):
        self.name = name
        self._postings: dict[Any, set] = defaultdict(set)
        self._doc_count = 0
        self._docs_seen: set = set()

    # Tokenization is the only thing the two operator classes differ on.
    def _tokens(self, document: Any) -> set:
        raise NotImplementedError

    # -- protocol ----------------------------------------------------------

    def insert(self, key: Any, rid: Any) -> None:
        """Index *key* (a JSON document) under record id *rid*."""
        for token in self._tokens(key):
            self._postings[token].add(rid)
        if rid not in self._docs_seen:
            self._docs_seen.add(rid)
            self._doc_count += 1

    def delete(self, key: Any, rid: Any) -> None:
        for token in self._tokens(key):
            postings = self._postings.get(token)
            if postings is None:
                continue
            postings.discard(rid)
            if not postings:
                del self._postings[token]
        if rid in self._docs_seen:
            self._docs_seen.discard(rid)
            self._doc_count -= 1

    def clear(self) -> None:
        self._postings.clear()
        self._docs_seen.clear()
        self._doc_count = 0

    def __len__(self) -> int:
        return len(self._postings)

    def memory_items(self) -> int:
        """Total posting entries — the index-size metric of experiment E10."""
        return sum(len(postings) for postings in self._postings.values())

    @property
    def document_count(self) -> int:
        return self._doc_count

    # -- probes -------------------------------------------------------------

    def _intersect(self, tokens: Iterable[Any]) -> set:
        result: Optional[set] = None
        for token in tokens:
            postings = self._postings.get(token)
            if not postings:
                return set()
            result = set(postings) if result is None else result & postings
            if not result:
                return result
        if result is None:
            # An empty probe ({} or []) is contained in every document.
            return set(self._docs_seen)
        return result

    def contains_candidates(self, probe: Any) -> tuple[set, bool]:
        """Raw ``@>`` probe: (candidate rids, recheck needed?)."""
        raise NotImplementedError

    def search_contains(
        self, probe: Any, fetch: Callable[[Any], Any]
    ) -> list[Any]:
        """Cooked ``@>``: candidates filtered by the exact containment
        recheck, using *fetch(rid)* to load each candidate document."""
        candidates, recheck = self.contains_candidates(probe)
        if not recheck:
            return sorted(candidates, key=SortKey)
        return sorted(
            (rid for rid in candidates if datamodel.contains(fetch(rid), probe)),
            key=SortKey,
        )

    def search(self, key: Any) -> list[Any]:
        """Exact-match probe is defined as containment in both directions
        only at recheck time; the protocol method defers to containment
        candidates for compatibility with :class:`IndexView`."""
        candidates, _recheck = self.contains_candidates(key)
        return sorted(candidates, key=SortKey)


class GinJsonbOps(_PostingIndex):
    """The default GIN operator class (``jsonb_ops``)."""

    kind = "gin-jsonb_ops"
    capabilities = IndexCapabilities(
        point=False, containment=True, key_exists=True
    )

    def _tokens(self, document: Any) -> set:
        tokens = set()
        for tag, item in datamodel.iter_keys_and_values(document):
            if tag == "K":
                tokens.add(("K", item))
            else:
                tokens.add(_scalar_token(item))
        return tokens

    def contains_candidates(self, probe: Any) -> tuple[set, bool]:
        # Every key and scalar of the probe must occur in the document; the
        # structure is not encoded, so a recheck is always required (unless
        # the probe is a bare scalar, whose token *is* its structure).
        tokens = self._tokens(probe)
        recheck = datamodel.type_of(probe) in (
            datamodel.TypeTag.OBJECT,
            datamodel.TypeTag.ARRAY,
        )
        return self._intersect(tokens), recheck

    # -- key-exists operators (? ?| ?&) -------------------------------------

    def key_exists(self, key: str) -> set:
        """``?`` — documents having *key* as a (nested) object key."""
        return set(self._postings.get(("K", key), set()))

    def any_key_exists(self, keys: Iterable[str]) -> set:
        """``?|`` — union over keys."""
        result: set = set()
        for key in keys:
            result |= self._postings.get(("K", key), set())
        return result

    def all_keys_exist(self, keys: Iterable[str]) -> set:
        """``?&`` — intersection over keys."""
        return self._intersect(("K", key) for key in keys)


class GinJsonbPathOps(_PostingIndex):
    """The ``jsonb_path_ops`` operator class: hashed (path, value) items."""

    kind = "gin-jsonb_path_ops"
    capabilities = IndexCapabilities(point=False, containment=True)

    def _tokens(self, document: Any) -> set:
        tokens = set()
        for path, leaf in datamodel.iter_paths(document):
            if datamodel.type_of(leaf) in (
                datamodel.TypeTag.ARRAY,
                datamodel.TypeTag.OBJECT,
            ):
                # Empty containers produce no path item in PostgreSQL either.
                continue
            tokens.add(datamodel.hash_value([list(path), _scalar_token(leaf)]))
        return tokens

    def contains_candidates(self, probe: Any) -> tuple[set, bool]:
        tokens = self._tokens(probe)
        if not tokens:
            # e.g. probe {} — jsonb_path_ops degrades to a full recheck scan.
            return set(self._docs_seen), True
        # Hash collisions are possible in principle, so PostgreSQL keeps the
        # recheck; structurally the hashed path makes false positives rare.
        return self._intersect(tokens), True

    def key_exists(self, key: str) -> set:
        raise UnsupportedIndexOperationError(
            "jsonb_path_ops indexes only the @> operator; key-exists (?) "
            "requires jsonb_ops (slide 82)"
        )
