"""Bitmap and bit-slice indexes (slide 80).

InterSystems Caché "uses a series of highly compressed bitstrings to
represent the set of object IDs" per indexed value, "extended with bitslice
index for numeric data fields used for a SUM, COUNT, or AVG".  Oracle builds
bitmaps over ``json_exists`` results.

:class:`BitmapIndex` maps each distinct (low-cardinality) value to a bitmap
over a dense row-number space; boolean predicates combine via bitwise
AND/OR/NOT, which is what makes them fast for multi-predicate analytics.
:class:`BitSliceIndex` stores one bitmap per bit position of a non-negative
integer field so SUM/COUNT can be computed from popcounts without touching
the rows — the Caché trick.

Bitmaps are plain Python ints (arbitrary-precision bit strings), which gives
genuinely bit-parallel AND/OR and :meth:`int.bit_count` popcounts.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional

from repro.core.datamodel import canonical_json
from repro.errors import UnsupportedIndexOperationError
from repro.indexes.base import Index, IndexCapabilities

__all__ = ["BitmapIndex", "BitSliceIndex"]


class BitmapIndex(Index):
    """Value → bitmap over a dense rid space.

    Record ids must be mappable to dense row numbers; callers either pass
    integer rids directly or let the index assign row numbers on first
    sight (the mapping is kept for translation back).
    """

    kind = "bitmap"
    capabilities = IndexCapabilities(point=True)

    def __init__(self, name: str = ""):
        self.name = name
        self._bitmaps: dict[str, int] = {}
        self._values: dict[str, Any] = {}
        self._rid_to_row: dict[Any, int] = {}
        self._row_to_rid: list[Any] = []
        self._live = 0  # bitmap of rows currently live

    # -- row-number management ----------------------------------------------

    def _row_of(self, rid: Any, create: bool) -> Optional[int]:
        row = self._rid_to_row.get(rid)
        if row is None and create:
            row = len(self._row_to_rid)
            self._rid_to_row[rid] = row
            self._row_to_rid.append(rid)
        return row

    def _rids_of(self, bitmap: int) -> list[Any]:
        result = []
        row = 0
        while bitmap:
            if bitmap & 1:
                result.append(self._row_to_rid[row])
            bitmap >>= 1
            row += 1
        return result

    @staticmethod
    def _token(key: Any) -> str:
        return canonical_json(key)

    # -- protocol ----------------------------------------------------------

    def insert(self, key: Any, rid: Any) -> None:
        row = self._row_of(rid, create=True)
        bit = 1 << row
        token = self._token(key)
        self._bitmaps[token] = self._bitmaps.get(token, 0) | bit
        self._values.setdefault(token, key)
        self._live |= bit

    def delete(self, key: Any, rid: Any) -> None:
        row = self._row_of(rid, create=False)
        if row is None:
            return
        bit = 1 << row
        token = self._token(key)
        if token in self._bitmaps:
            self._bitmaps[token] &= ~bit
            if not self._bitmaps[token]:
                del self._bitmaps[token]
                del self._values[token]
        self._live &= ~bit

    def search(self, key: Any) -> list[Any]:
        return self._rids_of(self._bitmaps.get(self._token(key), 0))

    def clear(self) -> None:
        self.__init__(name=self.name)

    def __len__(self) -> int:
        return len(self._bitmaps)

    # -- bit-parallel combinators --------------------------------------------

    def bitmap_for(self, key: Any) -> int:
        return self._bitmaps.get(self._token(key), 0)

    def search_any(self, keys: Iterable[Any]) -> list[Any]:
        """OR of the bitmaps for *keys* (the ``IN (…)`` fast path)."""
        bitmap = 0
        for key in keys:
            bitmap |= self.bitmap_for(key)
        return self._rids_of(bitmap)

    def search_not(self, key: Any) -> list[Any]:
        """Live rows whose value differs from *key*."""
        return self._rids_of(self._live & ~self.bitmap_for(key))

    def count(self, key: Any) -> int:
        """COUNT(*) WHERE column = key, without touching rows."""
        return self.bitmap_for(key).bit_count()

    def distinct_values(self) -> list[Any]:
        return [self._values[token] for token in sorted(self._bitmaps)]

    def intersect_count(self, other: "BitmapIndex", key_a: Any, key_b: Any) -> int:
        """COUNT of rows matching both predicates (bitmap AND).

        Both indexes must share a rid space (built over the same table in
        the same order); the caller guarantees that, as real engines do.
        """
        return (self.bitmap_for(key_a) & other.bitmap_for(key_b)).bit_count()


class BitSliceIndex(Index):
    """Bit-slice index over a non-negative integer attribute (slide 80).

    Slice *b* holds a bitmap of rows whose value has bit *b* set; SUM is
    ``sum(popcount(slice_b & filter) << b)``.
    """

    kind = "bitslice"
    capabilities = IndexCapabilities(point=False)

    def __init__(self, name: str = ""):
        self.name = name
        self._slices: list[int] = []
        self._rid_to_row: dict[Any, int] = {}
        self._row_to_rid: list[Any] = []
        self._row_value: list[int] = []
        self._live = 0

    def insert(self, key: Any, rid: Any) -> None:
        if not isinstance(key, int) or isinstance(key, bool) or key < 0:
            raise UnsupportedIndexOperationError(
                "bit-slice indexes require non-negative integer values"
            )
        row = self._rid_to_row.get(rid)
        if row is None:
            row = len(self._row_to_rid)
            self._rid_to_row[rid] = row
            self._row_to_rid.append(rid)
            self._row_value.append(0)
        else:
            self._unset(row)
        bit = 1 << row
        self._live |= bit
        self._row_value[row] = key
        position = 0
        while key:
            if position == len(self._slices):
                self._slices.append(0)
            if key & 1:
                self._slices[position] |= bit
            key >>= 1
            position += 1

    def delete(self, key: Any, rid: Any) -> None:
        row = self._rid_to_row.get(rid)
        if row is None:
            return
        self._unset(row)
        self._live &= ~(1 << row)

    def _unset(self, row: int) -> None:
        bit = 1 << row
        for position in range(len(self._slices)):
            self._slices[position] &= ~bit
        self._row_value[row] = 0

    def search(self, key: Any) -> list[Any]:
        raise UnsupportedIndexOperationError(
            "bit-slice indexes answer aggregates (SUM/COUNT/AVG), not lookups"
        )

    def clear(self) -> None:
        self.__init__(name=self.name)

    def __len__(self) -> int:
        return self._live.bit_count()

    # -- aggregates ----------------------------------------------------------

    def total(self, filter_bitmap: Optional[int] = None) -> int:
        """SUM over live rows, optionally restricted by a filter bitmap
        (typically produced by a :class:`BitmapIndex` over the same table)."""
        mask = self._live if filter_bitmap is None else self._live & filter_bitmap
        return sum(
            (self._slices[position] & mask).bit_count() << position
            for position in range(len(self._slices))
        )

    def count(self, filter_bitmap: Optional[int] = None) -> int:
        mask = self._live if filter_bitmap is None else self._live & filter_bitmap
        return mask.bit_count()

    def average(self, filter_bitmap: Optional[int] = None) -> float:
        rows = self.count(filter_bitmap)
        if rows == 0:
            return 0.0
        return self.total(filter_bitmap) / rows
