"""Property-graph model: vertices, edges, edge index, traversals."""

from repro.graph.store import Direction, PropertyGraph

__all__ = ["Direction", "PropertyGraph"]
