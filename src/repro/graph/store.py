"""Property graph store (the ArangoDB/OrientDB/Neo4j model).

Following ArangoDB's design (slide 25: "since vertices and edges of graphs
are documents, this allows to mix all three data models"), vertices and
edges are documents in the shared backend:

* vertices live in ``graph:<name>:v`` keyed by vertex key;
* edges live in ``graph:<name>:e`` with the special attributes ``_from``
  and ``_to`` (slide 55) and an optional ``label``;
* the *edge index* — "hash index for _from and _to attributes" (slide 79) —
  is maintained automatically, making ``neighbors`` O(degree).

Traversals implement the AQL forms the running example uses
(``FOR f IN 1..1 OUTBOUND c knows``): bounded BFS with direction and label
filters, shortest paths, and reachability.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Iterator, Optional

from repro.core import datamodel
from repro.core.context import BaseStore, EngineContext
from repro.core.cursor import ScanCursor, warn_deprecated_scan
from repro.errors import PrimaryKeyError, SchemaError, UnknownCollectionError
from repro.indexes.hashindex import ExtendibleHashIndex
from repro.storage.views import IndexView
from repro.txn.manager import Transaction

__all__ = ["PropertyGraph", "Direction"]


class Direction:
    OUTBOUND = "outbound"
    INBOUND = "inbound"
    ANY = "any"

    ALL = (OUTBOUND, INBOUND, ANY)


class _VertexStore(BaseStore):
    model = "graph"


class PropertyGraph:
    """One named property graph over the shared backend."""

    def __init__(self, context: EngineContext, name: str):
        self._context = context
        self.name = name
        self._vertices = _VertexStore(context, f"{name}:v")
        self._edges = _VertexStore(context, f"{name}:e")
        self._edge_counter = itertools.count(1)
        # The ArangoDB edge index: hash indexes on _from and _to.
        self._from_index = IndexView(
            context.log, self._edges.namespace, ("_from",), ExtendibleHashIndex()
        )
        self._to_index = IndexView(
            context.log, self._edges.namespace, ("_to",), ExtendibleHashIndex()
        )

    @property
    def vertex_namespace(self) -> str:
        return self._vertices.namespace

    @property
    def edge_namespace(self) -> str:
        return self._edges.namespace

    # -- vertices -----------------------------------------------------------------

    def add_vertex(
        self,
        key: str,
        properties: Optional[dict] = None,
        txn: Optional[Transaction] = None,
    ) -> str:
        if not isinstance(key, str):
            raise SchemaError("vertex keys are strings")
        if self._vertices.contains(key, txn):
            raise PrimaryKeyError(f"graph {self.name!r}: vertex {key!r} exists")
        document = dict(datamodel.normalize(properties or {}))
        document["_key"] = key
        self._vertices._put(key, document, txn)
        return key

    def vertex(self, key: str, txn: Optional[Transaction] = None) -> Optional[dict]:
        return self._vertices._raw_get(key, txn)

    def has_vertex(self, key: str, txn: Optional[Transaction] = None) -> bool:
        return self._vertices.contains(key, txn)

    def update_vertex(
        self, key: str, patch: dict, txn: Optional[Transaction] = None
    ) -> bool:
        current = self._vertices._raw_get(key, txn)
        if current is None:
            return False
        merged = datamodel.deep_merge(current, patch)
        merged["_key"] = key
        self._vertices._put(key, merged, txn)
        return True

    def remove_vertex(
        self, key: str, txn: Optional[Transaction] = None, cascade: bool = True
    ) -> bool:
        """Remove a vertex; ``cascade`` also removes its incident edges
        (the referential hygiene a graph store owes its users)."""
        if not self._vertices.contains(key, txn):
            return False
        if cascade:
            for edge in list(self.edges_of(key, Direction.ANY, txn=txn)):
                self.remove_edge(edge["_key"], txn)
        self._vertices._delete_key(key, txn)
        return True

    def scan_cursor(self, txn: Optional[Transaction] = None) -> ScanCursor:
        """Unified batched scan over the vertex documents (the graph's
        natural MMQL frame shape; edges stream via :meth:`edges`)."""
        return self._vertices.scan_cursor(txn=txn)

    def vertices(self, txn: Optional[Transaction] = None) -> Iterator[dict]:
        """Deprecated compat shim — use :meth:`scan_cursor` instead."""
        warn_deprecated_scan("PropertyGraph.vertices()")
        return iter(self.scan_cursor(txn=txn))

    def vertex_count(self, txn: Optional[Transaction] = None) -> int:
        return self._vertices.count(txn)

    # -- edges ---------------------------------------------------------------------

    def add_edge(
        self,
        from_key: str,
        to_key: str,
        label: str = "",
        properties: Optional[dict] = None,
        key: Optional[str] = None,
        txn: Optional[Transaction] = None,
    ) -> str:
        """Create an edge document; endpoints must exist."""
        for endpoint in (from_key, to_key):
            if not self._vertices.contains(endpoint, txn):
                raise UnknownCollectionError(
                    f"graph {self.name!r}: vertex {endpoint!r} does not exist"
                )
        edge_key = key if key is not None else f"e{next(self._edge_counter)}"
        if self._edges.contains(edge_key, txn):
            raise PrimaryKeyError(f"graph {self.name!r}: edge {edge_key!r} exists")
        document = dict(datamodel.normalize(properties or {}))
        document.update({"_key": edge_key, "_from": from_key, "_to": to_key})
        if label:
            document["label"] = label
        self._edges._put(edge_key, document, txn)
        return edge_key

    def edge(self, key: str, txn: Optional[Transaction] = None) -> Optional[dict]:
        return self._edges._raw_get(key, txn)

    def remove_edge(self, key: str, txn: Optional[Transaction] = None) -> bool:
        return self._edges._delete_key(key, txn)

    def edges(self, txn: Optional[Transaction] = None) -> Iterator[dict]:
        for _key, edge in self._edges._raw_scan(txn):
            yield edge

    def edge_count(self, txn: Optional[Transaction] = None) -> int:
        return self._edges.count(txn)

    def edges_of(
        self,
        key: str,
        direction: str = Direction.OUTBOUND,
        label: Optional[str] = None,
        txn: Optional[Transaction] = None,
    ) -> Iterator[dict]:
        """Incident edges, via the edge index outside transactions."""
        if direction not in Direction.ALL:
            raise ValueError(f"bad direction {direction!r}")
        if txn is None:
            edge_keys: set = set()
            if direction in (Direction.OUTBOUND, Direction.ANY):
                edge_keys.update(self._from_index.search(key))
            if direction in (Direction.INBOUND, Direction.ANY):
                edge_keys.update(self._to_index.search(key))
            candidates = (
                self._edges._raw_get(edge_key) for edge_key in sorted(edge_keys)
            )
        else:
            candidates = (
                edge
                for _edge_key, edge in self._edges._raw_scan(txn)
                if (
                    direction in (Direction.OUTBOUND, Direction.ANY)
                    and edge["_from"] == key
                )
                or (
                    direction in (Direction.INBOUND, Direction.ANY)
                    and edge["_to"] == key
                )
            )
        for edge in candidates:
            if edge is None:
                continue
            if label is not None and edge.get("label") != label:
                continue
            yield edge

    # -- traversal -------------------------------------------------------------------

    def neighbors(
        self,
        key: str,
        direction: str = Direction.OUTBOUND,
        label: Optional[str] = None,
        txn: Optional[Transaction] = None,
    ) -> list[str]:
        """Adjacent vertex keys (sorted, de-duplicated)."""
        result = set()
        for edge in self.edges_of(key, direction, label, txn):
            if direction in (Direction.OUTBOUND, Direction.ANY) and edge["_from"] == key:
                result.add(edge["_to"])
            if direction in (Direction.INBOUND, Direction.ANY) and edge["_to"] == key:
                result.add(edge["_from"])
        return sorted(result)

    def traverse(
        self,
        start: str,
        min_depth: int = 1,
        max_depth: int = 1,
        direction: str = Direction.OUTBOUND,
        label: Optional[str] = None,
        txn: Optional[Transaction] = None,
    ) -> list[tuple[str, int]]:
        """AQL-style bounded BFS: vertices between *min_depth* and
        *max_depth* hops from *start*, as (key, depth), each vertex at its
        shortest depth."""
        if min_depth < 0 or max_depth < min_depth:
            raise ValueError("need 0 <= min_depth <= max_depth")
        depths = {start: 0}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            depth = depths[current]
            if depth >= max_depth:
                continue
            for neighbor in self.neighbors(current, direction, label, txn):
                if neighbor not in depths:
                    depths[neighbor] = depth + 1
                    queue.append(neighbor)
        return sorted(
            (key, depth)
            for key, depth in depths.items()
            if min_depth <= depth <= max_depth
        )

    def traverse_with_edges(
        self,
        start: str,
        min_depth: int = 1,
        max_depth: int = 1,
        direction: str = Direction.OUTBOUND,
        label: Optional[str] = None,
        txn: Optional[Transaction] = None,
    ) -> list[tuple[str, int, Optional[dict]]]:
        """Like :meth:`traverse` but each vertex carries the edge document
        that discovered it (None for the start vertex) — the AQL
        ``FOR v, e IN …`` form."""
        if min_depth < 0 or max_depth < min_depth:
            raise ValueError("need 0 <= min_depth <= max_depth")
        discovered: dict[str, tuple[int, Optional[dict]]] = {start: (0, None)}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            depth = discovered[current][0]
            if depth >= max_depth:
                continue
            for edge in self.edges_of(current, direction, label, txn):
                for neighbor in self._edge_targets(edge, current, direction):
                    if neighbor not in discovered:
                        discovered[neighbor] = (depth + 1, edge)
                        queue.append(neighbor)
        return sorted(
            (
                (key, depth, edge)
                for key, (depth, edge) in discovered.items()
                if min_depth <= depth <= max_depth
            ),
            key=lambda entry: (entry[0], entry[1]),
        )

    @staticmethod
    def _edge_targets(edge: dict, current: str, direction: str) -> list[str]:
        targets = []
        if direction in (Direction.OUTBOUND, Direction.ANY) and edge["_from"] == current:
            targets.append(edge["_to"])
        if direction in (Direction.INBOUND, Direction.ANY) and edge["_to"] == current:
            targets.append(edge["_from"])
        return targets

    def shortest_path(
        self,
        start: str,
        goal: str,
        direction: str = Direction.ANY,
        txn: Optional[Transaction] = None,
    ) -> Optional[list[str]]:
        """Unweighted shortest path as a vertex-key list, or None."""
        if start == goal:
            return [start]
        parents: dict[str, str] = {start: start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            for neighbor in self.neighbors(current, direction, txn=txn):
                if neighbor in parents:
                    continue
                parents[neighbor] = current
                if neighbor == goal:
                    path = [goal]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                queue.append(neighbor)
        return None

    def degree(
        self,
        key: str,
        direction: str = Direction.OUTBOUND,
        txn: Optional[Transaction] = None,
    ) -> int:
        return sum(1 for _ in self.edges_of(key, direction, txn=txn))

    # -- pattern matching (the Gremlin/Cypher-style BGP of slide 61) -------------

    def match(
        self,
        patterns: list[tuple],
        where=None,
        txn: Optional[Transaction] = None,
    ) -> list[dict]:
        """Conjunctive edge-pattern matching.

        *patterns* is a list of ``(from, label, to)`` where ``from``/``to``
        are vertex keys or ``?variables`` and ``label`` is an edge label or
        ``None`` (any).  Returns variable bindings (vertex keys); ``where``
        filters bindings (receives the binding dict).
        """
        if not patterns:
            return []
        results: list[dict] = []
        self._match_rec(list(patterns), {}, results, txn)
        if where is not None:
            results = [binding for binding in results if where(binding)]
        deduped = []
        seen = set()
        for binding in results:
            token = tuple(sorted(binding.items()))
            if token not in seen:
                seen.add(token)
                deduped.append(binding)
        return sorted(deduped, key=lambda b: sorted(b.items()))

    def _match_rec(
        self, patterns: list[tuple], binding: dict, results: list[dict], txn
    ) -> None:
        if not patterns:
            results.append(dict(binding))
            return

        def is_var(term):
            return isinstance(term, str) and term.startswith("?")

        def resolved(term):
            return binding.get(term, term) if is_var(term) else term

        # Most-bound pattern first (same greedy selectivity as the RDF BGP).
        def bound_count(pattern):
            source, _label, target = pattern
            return sum(
                1 for term in (source, target)
                if not is_var(term) or term in binding
            )

        best = max(range(len(patterns)), key=lambda i: bound_count(patterns[i]))
        source, label, target = patterns[best]
        rest = patterns[:best] + patterns[best + 1:]
        source_value = resolved(source)
        target_value = resolved(target)

        if not is_var(source) or source in binding:
            candidates = self.edges_of(source_value, Direction.OUTBOUND, label, txn)
        elif not is_var(target) or target in binding:
            candidates = self.edges_of(target_value, Direction.INBOUND, label, txn)
        else:
            candidates = (
                edge
                for edge in self.edges(txn)
                if label is None or edge.get("label") == label
            )
        for edge in candidates:
            extended = dict(binding)
            consistent = True
            for term, value in ((source, edge["_from"]), (target, edge["_to"])):
                if is_var(term):
                    if term in extended and extended[term] != value:
                        consistent = False
                        break
                    extended[term] = value
                elif term != value:
                    consistent = False
                    break
            if consistent:
                self._match_rec(rest, extended, results, txn)

    # -- interop ---------------------------------------------------------------------

    def to_networkx(self, txn: Optional[Transaction] = None):
        """Export as a :class:`networkx.MultiDiGraph` (vertex/edge
        properties preserved) for analytics the engine does not implement
        natively — PageRank, communities, centrality."""
        import networkx

        graph = networkx.MultiDiGraph(name=self.name)
        for vertex in self.scan_cursor(txn=txn):
            properties = {k: v for k, v in vertex.items() if k != "_key"}
            graph.add_node(vertex["_key"], **properties)
        for edge in self.edges(txn):
            properties = {
                k: v for k, v in edge.items() if k not in ("_key", "_from", "_to")
            }
            graph.add_edge(edge["_from"], edge["_to"], key=edge["_key"], **properties)
        return graph

    def truncate(self) -> None:
        self._edges.truncate()
        self._vertices.truncate()
