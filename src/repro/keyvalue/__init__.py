"""Key/value model: buckets, TTL, counters, Riak-style CRDTs."""

from repro.keyvalue.crdt import (
    GCounter,
    LWWRegister,
    ORMap,
    ORSet,
    PNCounter,
    crdt_from_dict,
)
from repro.keyvalue.store import KeyValueBucket

__all__ = [
    "GCounter",
    "LWWRegister",
    "ORMap",
    "ORSet",
    "PNCounter",
    "crdt_from_dict",
    "KeyValueBucket",
]
