"""Riak Data Types: conflict-free replicated data types (slide 49).

"Riak Data Types — conflict-free replicated data type: sets, maps (enable
embedding), counters…"  These are state-based (convergent) CRDTs with the
standard join-semilattice merge:

* :class:`GCounter` — grow-only counter (per-actor maxima);
* :class:`PNCounter` — increment/decrement (two G-counters);
* :class:`ORSet` — observed-remove set (add wins over concurrent remove);
* :class:`LWWRegister` — last-writer-wins register (logical timestamps);
* :class:`ORMap` — observed-remove map embedding other CRDTs (Riak maps).

All expose ``value()``, ``merge(other)`` (commutative, associative,
idempotent — property-tested), and dict round-tripping for storage in the
key/value model.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.errors import DataModelError

__all__ = ["GCounter", "PNCounter", "ORSet", "LWWRegister", "ORMap", "crdt_from_dict"]

_unique = itertools.count(1)


class GCounter:
    """Grow-only counter: one non-decreasing slot per actor."""

    type_name = "gcounter"

    def __init__(self, actor: str = "a"):
        self.actor = actor
        self._slots: dict[str, int] = {}

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("GCounter cannot decrease; use PNCounter")
        self._slots[self.actor] = self._slots.get(self.actor, 0) + amount

    def value(self) -> int:
        return sum(self._slots.values())

    def merge(self, other: "GCounter") -> "GCounter":
        merged = GCounter(self.actor)
        merged._slots = {
            actor: max(self._slots.get(actor, 0), other._slots.get(actor, 0))
            for actor in set(self._slots) | set(other._slots)
        }
        return merged

    def to_dict(self) -> dict:
        return {"type": self.type_name, "actor": self.actor, "slots": dict(self._slots)}

    @classmethod
    def from_dict(cls, data: dict) -> "GCounter":
        counter = cls(data["actor"])
        counter._slots = {actor: int(count) for actor, count in data["slots"].items()}
        return counter


class PNCounter:
    """Increment/decrement counter built from two G-counters."""

    type_name = "pncounter"

    def __init__(self, actor: str = "a"):
        self.actor = actor
        self._positive = GCounter(actor)
        self._negative = GCounter(actor)

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            self.decrement(-amount)
        else:
            self._positive.increment(amount)

    def decrement(self, amount: int = 1) -> None:
        if amount < 0:
            self.increment(-amount)
        else:
            self._negative.increment(amount)

    def value(self) -> int:
        return self._positive.value() - self._negative.value()

    def merge(self, other: "PNCounter") -> "PNCounter":
        merged = PNCounter(self.actor)
        merged._positive = self._positive.merge(other._positive)
        merged._negative = self._negative.merge(other._negative)
        return merged

    def to_dict(self) -> dict:
        return {
            "type": self.type_name,
            "actor": self.actor,
            "p": self._positive.to_dict(),
            "n": self._negative.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PNCounter":
        counter = cls(data["actor"])
        counter._positive = GCounter.from_dict(data["p"])
        counter._negative = GCounter.from_dict(data["n"])
        return counter


class ORSet:
    """Observed-remove set: elements carry unique add-tags; a remove only
    covers tags it has observed, so concurrent add wins."""

    type_name = "orset"

    def __init__(self, actor: str = "a"):
        self.actor = actor
        self._adds: dict[str, set[str]] = {}     # element -> live tags
        self._removed: dict[str, set[str]] = {}  # element -> tombstoned tags

    def add(self, element: str) -> None:
        tag = f"{self.actor}:{next(_unique)}"
        self._adds.setdefault(element, set()).add(tag)

    def remove(self, element: str) -> None:
        tags = self._adds.get(element, set())
        if tags:
            self._removed.setdefault(element, set()).update(tags)
            self._adds[element] = set()

    def __contains__(self, element: str) -> bool:
        return bool(self._adds.get(element))

    def value(self) -> set[str]:
        return {element for element, tags in self._adds.items() if tags}

    def merge(self, other: "ORSet") -> "ORSet":
        merged = ORSet(self.actor)
        elements = set(self._adds) | set(other._adds)
        for element in elements:
            all_tags = self._all_tags(element) | other._all_tags(element)
            removed = self._removed.get(element, set()) | other._removed.get(
                element, set()
            )
            live = all_tags - removed
            if live:
                merged._adds[element] = live
            if removed:
                merged._removed[element] = removed
        return merged

    def _all_tags(self, element: str) -> set[str]:
        return self._adds.get(element, set()) | self._removed.get(element, set())

    def to_dict(self) -> dict:
        return {
            "type": self.type_name,
            "actor": self.actor,
            "adds": {element: sorted(tags) for element, tags in self._adds.items()},
            "removed": {
                element: sorted(tags) for element, tags in self._removed.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ORSet":
        instance = cls(data["actor"])
        instance._adds = {
            element: set(tags) for element, tags in data["adds"].items()
        }
        instance._removed = {
            element: set(tags) for element, tags in data["removed"].items()
        }
        return instance


class LWWRegister:
    """Last-writer-wins register with a logical clock; ties break by actor
    name so the merge stays deterministic."""

    type_name = "lww"

    def __init__(self, actor: str = "a"):
        self.actor = actor
        self._clock = 0
        self._value: Any = None
        self._writer = actor

    def set(self, value: Any, clock: Optional[int] = None) -> None:
        self._clock = self._clock + 1 if clock is None else clock
        self._value = value
        self._writer = self.actor

    def value(self) -> Any:
        return self._value

    def merge(self, other: "LWWRegister") -> "LWWRegister":
        merged = LWWRegister(self.actor)
        if (other._clock, other._writer) > (self._clock, self._writer):
            winner = other
        else:
            winner = self
        merged._clock = max(self._clock, other._clock)
        merged._value = winner._value
        merged._writer = winner._writer
        return merged

    def to_dict(self) -> dict:
        return {
            "type": self.type_name,
            "actor": self.actor,
            "clock": self._clock,
            "value": self._value,
            "writer": self._writer,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LWWRegister":
        register = cls(data["actor"])
        register._clock = data["clock"]
        register._value = data["value"]
        register._writer = data["writer"]
        return register


class ORMap:
    """Observed-remove map embedding other CRDTs (the Riak map)."""

    type_name = "ormap"

    _FACTORIES = {
        "gcounter": GCounter,
        "pncounter": PNCounter,
        "orset": ORSet,
        "lww": LWWRegister,
    }

    def __init__(self, actor: str = "a"):
        self.actor = actor
        self._entries: dict[str, Any] = {}

    def counter(self, field: str) -> PNCounter:
        return self._get_or_create(field, PNCounter)

    def set_field(self, field: str) -> ORSet:
        return self._get_or_create(field, ORSet)

    def register(self, field: str) -> LWWRegister:
        return self._get_or_create(field, LWWRegister)

    def _get_or_create(self, field: str, factory):
        entry = self._entries.get(field)
        if entry is None:
            entry = factory(self.actor)
            self._entries[field] = entry
        elif not isinstance(entry, factory):
            raise DataModelError(
                f"map field {field!r} already holds a {entry.type_name}"
            )
        return entry

    def remove(self, field: str) -> None:
        self._entries.pop(field, None)

    def fields(self) -> list[str]:
        return sorted(self._entries)

    def value(self) -> dict:
        return {field: entry.value() for field, entry in self._entries.items()}

    def merge(self, other: "ORMap") -> "ORMap":
        merged = ORMap(self.actor)
        for field in set(self._entries) | set(other._entries):
            mine = self._entries.get(field)
            theirs = other._entries.get(field)
            if mine is not None and theirs is not None:
                merged._entries[field] = mine.merge(theirs)
            else:
                merged._entries[field] = mine or theirs
        return merged

    def to_dict(self) -> dict:
        return {
            "type": self.type_name,
            "actor": self.actor,
            "entries": {
                field: entry.to_dict() for field, entry in self._entries.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ORMap":
        instance = cls(data["actor"])
        instance._entries = {
            field: crdt_from_dict(entry) for field, entry in data["entries"].items()
        }
        return instance


def crdt_from_dict(data: dict) -> Any:
    """Rehydrate any CRDT from its stored dict form."""
    factories = dict(ORMap._FACTORIES)
    factories["ormap"] = ORMap
    type_name = data.get("type")
    factory = factories.get(type_name)
    if factory is None:
        raise DataModelError(f"unknown CRDT type {type_name!r}")
    return factory.from_dict(data)
