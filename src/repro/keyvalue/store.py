"""Key/value buckets (the Riak / Oracle NoSQL / Redis-adjacent model).

A :class:`KeyValueBucket` is the simplest veneer over the shared backend:
string keys, arbitrary data-model values, the "Simple API" of slide 70
(store / retrieve / delete) plus:

* TTL expiry on a logical clock (``tick`` advances it — deterministic, per
  DESIGN.md conventions);
* counters and CRDT values (:mod:`repro.keyvalue.crdt`), the Riak data
  types;
* multi-get and prefix scans (DynamoDB-style partition-local queries).

Values stored in a bucket are wrapped in an envelope ``{"value": …,
"expires_at": …}`` so expiry metadata travels with the record through the
central log and any storage view.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.core import datamodel
from repro.core.context import BaseStore, EngineContext
from repro.core.cursor import IteratorScanCursor, ScanCursor, warn_deprecated_scan
from repro.errors import DataModelError
from repro.keyvalue.crdt import crdt_from_dict
from repro.txn.manager import Transaction

__all__ = ["KeyValueBucket"]


class KeyValueBucket(BaseStore):
    """One key/value bucket."""

    model = "kv"

    def __init__(self, context: EngineContext, name: str):
        super().__init__(context, name)
        self._clock = 0  # logical time for TTL

    # -- logical time -------------------------------------------------------------

    def tick(self, steps: int = 1) -> int:
        """Advance the bucket's logical clock (TTL expiry unit)."""
        self._clock += steps
        return self._clock

    @property
    def now(self) -> int:
        return self._clock

    # -- simple API (slide 70) -------------------------------------------------------

    def put(
        self,
        key: str,
        value: Any,
        ttl: Optional[int] = None,
        txn: Optional[Transaction] = None,
    ) -> None:
        """Store *value* under *key*; ``ttl`` is in logical ticks."""
        if not isinstance(key, str):
            raise DataModelError("key/value keys are strings")
        envelope = {
            "value": datamodel.normalize(value),
            "expires_at": None if ttl is None else self._clock + ttl,
        }
        self._put(key, envelope, txn)

    def get(self, key: str, txn: Optional[Transaction] = None) -> Any:
        """Value for *key*, or None when absent or expired."""
        envelope = self._raw_get(key, txn)
        if envelope is None:
            return None
        if self._expired(envelope):
            return None
        return envelope["value"]

    def get_many(
        self, keys: list[str], txn: Optional[Transaction] = None
    ) -> dict[str, Any]:
        """Multi-get: only present, unexpired keys appear in the result."""
        result = {}
        for key in keys:
            value = self.get(key, txn)
            if value is not None:
                result[key] = value
        return result

    def delete(self, key: str, txn: Optional[Transaction] = None) -> bool:
        return self._delete_key(key, txn)

    def keys(self, txn: Optional[Transaction] = None) -> Iterator[str]:
        for key, envelope in self._raw_scan(txn):
            if not self._expired(envelope):
                yield key

    def scan_cursor(
        self,
        txn: Optional[Transaction] = None,
        prefix: Optional[str] = None,
    ) -> ScanCursor:
        """Unified batched scan: ``{"_key": key, "value": value}`` frames
        for every live (unexpired) entry; ``prefix`` narrows to keys
        sharing it (the DynamoDB sort-key pattern, unified here instead of
        the bespoke ``scan_prefix``)."""
        expired = self._expired

        def _frames():
            for key, envelope in self._raw_scan(txn):
                if expired(envelope):
                    continue
                if prefix is not None and not key.startswith(prefix):
                    continue
                yield {"_key": key, "value": envelope["value"]}

        return IteratorScanCursor(_frames())

    def items(self, txn: Optional[Transaction] = None) -> Iterator[tuple[str, Any]]:
        """Deprecated compat shim — use :meth:`scan_cursor` instead."""
        warn_deprecated_scan("KeyValueBucket.items()")
        return (
            (frame["_key"], frame["value"])
            for frame in self.scan_cursor(txn=txn)
        )

    def scan_prefix(
        self, prefix: str, txn: Optional[Transaction] = None
    ) -> list[tuple[str, Any]]:
        """Deprecated compat shim — use ``scan_cursor(prefix=…)``."""
        warn_deprecated_scan(
            "KeyValueBucket.scan_prefix()", "scan_cursor(prefix=…)"
        )
        return sorted(
            (frame["_key"], frame["value"])
            for frame in self.scan_cursor(txn=txn, prefix=prefix)
        )

    def _expired(self, envelope: dict) -> bool:
        expires_at = envelope.get("expires_at")
        return expires_at is not None and expires_at <= self._clock

    def purge_expired(self) -> int:
        """Physically delete expired entries; returns how many."""
        doomed = [
            key
            for key, envelope in self._raw_scan(None)
            if self._expired(envelope)
        ]
        for key in doomed:
            self._delete_key(key)
        return len(doomed)

    # -- counters ---------------------------------------------------------------------

    def increment(
        self, key: str, amount: int = 1, txn: Optional[Transaction] = None
    ) -> int:
        """Atomic numeric counter (creates at 0); returns the new value."""
        current = self.get(key, txn)
        if current is None:
            current = 0
        if datamodel.type_of(current) is not datamodel.TypeTag.NUMBER:
            raise DataModelError(
                f"key {key!r} holds a {datamodel.type_name(current)}, "
                "not a counter"
            )
        new_value = current + amount
        self.put(key, new_value, txn=txn)
        return new_value

    # -- CRDT values (Riak data types, slide 49) -----------------------------------------

    def put_crdt(self, key: str, crdt: Any, txn: Optional[Transaction] = None) -> None:
        """Store a CRDT by its dict form; merges with any stored replica
        instead of overwriting (the convergent write path)."""
        stored = self.get(key, txn)
        if stored is not None:
            crdt = crdt_from_dict(stored).merge(crdt)
        self.put(key, crdt.to_dict(), txn=txn)

    def get_crdt(self, key: str, txn: Optional[Transaction] = None) -> Any:
        stored = self.get(key, txn)
        if stored is None:
            return None
        return crdt_from_dict(stored)
