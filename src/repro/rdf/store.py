"""RDF triple store with the DB2-RDF index layouts (slide 35).

"IBM DB2-RDF stores RDF graphs with four layouts: direct primary (triples +
associated graph, indexed by subject), reverse primary (indexed by object),
direct secondary (triples that share the subject and predicate), reverse
secondary (share the object and predicate)."

:class:`TripleStore` maintains all four as hash maps over the shared
backend's records, and answers SPARQL-style basic graph patterns
(:meth:`match` for one pattern, :meth:`query` for conjunctive patterns with
variables, FILTER, projection, ORDER BY, LIMIT) — the "SPARQL 1.0 + subset
of 1.1 features" of slide 75, including simple aggregates.

Terms are strings; variables start with ``?``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.core.context import BaseStore, EngineContext
from repro.core.cursor import IteratorScanCursor, ScanCursor, warn_deprecated_scan
from repro.errors import QueryError
from repro.txn.manager import Transaction

__all__ = ["Triple", "TripleStore", "is_variable"]

Triple = tuple[str, str, str]


def is_variable(term: str) -> bool:
    """SPARQL variables are spelled ``?name``."""
    return isinstance(term, str) and term.startswith("?")


class TripleStore(BaseStore):
    """One named RDF graph."""

    model = "rdf"

    def __init__(self, context: EngineContext, name: str):
        super().__init__(context, name)
        # The four DB2-RDF layouts, maintained from the central log so they
        # only ever reflect *committed* triples (buffered transactional
        # writes reach the log at commit time).
        self._direct_primary: dict[str, set[Triple]] = defaultdict(set)
        self._reverse_primary: dict[str, set[Triple]] = defaultdict(set)
        self._direct_secondary: dict[tuple[str, str], set[Triple]] = defaultdict(set)
        self._reverse_secondary: dict[tuple[str, str], set[Triple]] = defaultdict(set)
        context.log.subscribe(self._on_log_entry)

    def _on_log_entry(self, entry) -> None:
        from repro.storage.log import LogOp

        if entry.namespace != self.namespace:
            return
        if entry.op is LogOp.DROP_NAMESPACE:
            for layout in (
                self._direct_primary,
                self._reverse_primary,
                self._direct_secondary,
                self._reverse_secondary,
            ):
                layout.clear()
            return
        if entry.op is LogOp.INSERT:
            self._index_add(tuple(entry.value))
        elif entry.op is LogOp.DELETE and entry.before is not None:
            self._index_remove(tuple(entry.before))

    @staticmethod
    def _key(triple: Triple) -> str:
        return "|".join(triple)

    # -- updates -----------------------------------------------------------------

    def add(
        self,
        subject: str,
        predicate: str,
        obj: str,
        txn: Optional[Transaction] = None,
    ) -> bool:
        """Add one triple; returns False when it already exists."""
        for term in (subject, predicate, obj):
            if not isinstance(term, str):
                raise QueryError("RDF terms are strings")
            if is_variable(term):
                raise QueryError("cannot store a variable term")
        triple = (subject, predicate, obj)
        if self._raw_get(self._key(triple), txn) is not None:
            return False
        self._put(self._key(triple), list(triple), txn)
        return True

    def add_many(
        self, triples: Iterable[Triple], txn: Optional[Transaction] = None
    ) -> int:
        return sum(1 for triple in triples if self.add(*triple, txn=txn))

    def remove(
        self,
        subject: str,
        predicate: str,
        obj: str,
        txn: Optional[Transaction] = None,
    ) -> bool:
        triple = (subject, predicate, obj)
        return self._delete_key(self._key(triple), txn)

    def _index_add(self, triple: Triple) -> None:
        subject, predicate, obj = triple
        self._direct_primary[subject].add(triple)
        self._reverse_primary[obj].add(triple)
        self._direct_secondary[(subject, predicate)].add(triple)
        self._reverse_secondary[(obj, predicate)].add(triple)

    def _index_remove(self, triple: Triple) -> None:
        subject, predicate, obj = triple
        self._direct_primary[subject].discard(triple)
        self._reverse_primary[obj].discard(triple)
        self._direct_secondary[(subject, predicate)].discard(triple)
        self._reverse_secondary[(obj, predicate)].discard(triple)

    # -- single-pattern matching ----------------------------------------------------

    def scan_cursor(self, txn: Optional[Transaction] = None) -> ScanCursor:
        """Unified batched scan: each frame is one triple as a
        ``[subject, predicate, object]`` list (the MMQL row shape)."""
        return IteratorScanCursor(
            list(stored) for _key, stored in self._raw_scan(txn)
        )

    def triples(self, txn: Optional[Transaction] = None) -> Iterator[Triple]:
        """Deprecated compat shim — use :meth:`scan_cursor` instead."""
        warn_deprecated_scan("TripleStore.triples()")
        return (tuple(frame) for frame in self.scan_cursor(txn=txn))

    def _scan_triples(self, txn: Optional[Transaction] = None) -> Iterator[Triple]:
        return (tuple(frame) for frame in self.scan_cursor(txn=txn))

    def match(
        self,
        subject: str = "?s",
        predicate: str = "?p",
        obj: str = "?o",
        txn: Optional[Transaction] = None,
    ) -> list[Triple]:
        """Triples matching one pattern; constants select an index layout:

        * subject bound + predicate bound → direct secondary;
        * subject bound → direct primary;
        * object bound + predicate bound → reverse secondary;
        * object bound → reverse primary;
        * nothing bound → full scan.
        """
        if txn is not None:
            candidates: Iterable[Triple] = self._scan_triples(txn)
        elif not is_variable(subject) and not is_variable(predicate):
            candidates = self._direct_secondary.get((subject, predicate), set())
        elif not is_variable(subject):
            candidates = self._direct_primary.get(subject, set())
        elif not is_variable(obj) and not is_variable(predicate):
            candidates = self._reverse_secondary.get((obj, predicate), set())
        elif not is_variable(obj):
            candidates = self._reverse_primary.get(obj, set())
        else:
            candidates = self._scan_triples()
        result = []
        for triple in candidates:
            if not is_variable(subject) and triple[0] != subject:
                continue
            if not is_variable(predicate) and triple[1] != predicate:
                continue
            if not is_variable(obj) and triple[2] != obj:
                continue
            result.append(triple)
        return sorted(result)

    # -- BGP queries --------------------------------------------------------------------

    def query(
        self,
        patterns: list[Triple],
        where: Optional[Callable[[dict], bool]] = None,
        select: Optional[list[str]] = None,
        order_by: Optional[str] = None,
        limit: Optional[int] = None,
        distinct: bool = False,
        txn: Optional[Transaction] = None,
    ) -> list[dict]:
        """Conjunctive basic-graph-pattern query.

        *patterns* is a list of (s, p, o) with ``?var`` terms; returns
        variable bindings as dicts.  ``where`` is the FILTER clause (a
        predicate over a binding dict); ``select`` projects variables;
        ``order_by``/``limit``/``distinct`` behave as in SPARQL.
        """
        if not patterns:
            raise QueryError("a BGP query needs at least one pattern")
        bindings = self._join(patterns, {}, txn)
        results = [binding for binding in bindings if where is None or where(binding)]
        if order_by is not None:
            if not is_variable(order_by):
                raise QueryError("ORDER BY takes a ?variable")
            results.sort(key=lambda binding: binding.get(order_by, ""))
        if select is not None:
            for variable in select:
                if not is_variable(variable):
                    raise QueryError(f"SELECT takes ?variables, got {variable!r}")
            results = [
                {variable: binding.get(variable) for variable in select}
                for binding in results
            ]
        if distinct:
            seen = set()
            unique = []
            for binding in results:
                token = tuple(sorted(binding.items()))
                if token not in seen:
                    seen.add(token)
                    unique.append(binding)
            results = unique
        if limit is not None:
            results = results[:limit]
        return results

    def _join(
        self,
        patterns: list[Triple],
        binding: dict,
        txn: Optional[Transaction],
    ) -> Iterator[dict]:
        if not patterns:
            yield dict(binding)
            return
        # Greedy selectivity: evaluate the pattern with the most bound terms
        # first (constants or already-bound variables).
        def bound_terms(pattern: Triple) -> int:
            return sum(
                1
                for term in pattern
                if not is_variable(term) or term in binding
            )

        best = max(range(len(patterns)), key=lambda i: bound_terms(patterns[i]))
        pattern = patterns[best]
        rest = patterns[:best] + patterns[best + 1:]
        resolved = tuple(
            binding.get(term, term) if is_variable(term) else term
            for term in pattern
        )
        for triple in self.match(*resolved, txn=txn):
            extended = dict(binding)
            consistent = True
            for term, value in zip(pattern, triple):
                if is_variable(term):
                    if term in extended and extended[term] != value:
                        consistent = False
                        break
                    extended[term] = value
            if consistent:
                yield from self._join(rest, extended, txn)

    def count_triples(self, txn: Optional[Transaction] = None) -> int:
        """Number of stored triples (``count`` is the BGP aggregate)."""
        return BaseStore.count(self, txn)

    # -- aggregates (the SPARQL 1.1 subset of slide 75) -----------------------------------

    def count(
        self,
        patterns: list[Triple],
        group_by: Optional[str] = None,
        txn: Optional[Transaction] = None,
    ) -> Any:
        """COUNT over a BGP, optionally grouped by one variable."""
        results = self.query(patterns, txn=txn)
        if group_by is None:
            return len(results)
        groups: dict[str, int] = defaultdict(int)
        for binding in results:
            groups[binding.get(group_by, "")] += 1
        return dict(groups)
