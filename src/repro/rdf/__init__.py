"""RDF model: triple store with DB2-RDF layouts and BGP queries."""

from repro.rdf.store import Triple, TripleStore, is_variable

__all__ = ["Triple", "TripleStore", "is_variable"]
