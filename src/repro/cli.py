"""``repro-shell`` — an interactive MMQL shell.

Usage:

    repro-shell [--wal PATH] [--demo [SCALE]] [-c QUERY] [-f FILE]

* ``--demo`` loads the UniBench e-commerce data set (default scale 1) so
  there is something to query immediately;
* ``--wal`` attaches a write-ahead log (recovering from it first when the
  file already has history);
* ``-c`` runs one query and exits; ``-f`` runs a ``;``-separated script.

Inside the shell:

    mmql> FOR c IN customers FILTER c.credit_limit > 3000 RETURN c.name
    mmql> .explain FOR c IN customers RETURN c
    mmql> .catalog        .stats        .help        .quit

Everything is a plain function over streams, so the shell is unit-testable
without a TTY.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, Optional

from repro.core.database import MultiModelDB
from repro.errors import ReproError

__all__ = ["make_demo_db", "run_statement", "repl", "main"]

_HELP = """\
MMQL shell commands:
  .help                 this message
  .catalog              list collections/tables/graphs/buckets/stores
  .dbstats              record counts, indexes, log, txn and metric counters
  .explain <query>      show the optimized plan without executing
  .advise <query>       recommend indexes for a query's predicates
  .stats                statistics of the last query
  .metrics [json]       dump the engine metrics registry (Prometheus text)
  .plancache [clear|size N]
                        show (or clear/resize) the query plan cache
  .trace [on|off]       print a span tree after each query
  .slowlog [MS|off]     show the slow-query log / set its threshold in ms
  .faults [arm SITE TRIGGER [EFFECT] [seed N] | disarm SITE|all]
                        list / arm / disarm fault-injection failpoints
  .quit                 exit
EXPLAIN ANALYZE <query> executes the query and prints the physical plan
annotated with per-operator rows and wall-time.
Anything else is executed as an MMQL query; rows print as JSON lines."""


def make_demo_db(scale_factor: int = 1) -> MultiModelDB:
    """A database pre-loaded with the UniBench e-commerce data set."""
    from repro.unibench.generator import generate, load_into_multimodel

    db = MultiModelDB()
    load_into_multimodel(db, generate(scale_factor=scale_factor, seed=42))
    return db


def run_statement(db: MultiModelDB, statement: str, out: IO, state: dict) -> None:
    """Execute one shell statement (dot-command or MMQL) against *db*."""
    statement = statement.strip()
    if not statement:
        return
    if statement in (".quit", ".exit"):
        state["done"] = True
        return
    if statement == ".help":
        print(_HELP, file=out)
        return
    if statement == ".catalog":
        for name, kind in db.catalog().items():
            print(f"  {name:<20} {kind}", file=out)
        return
    if statement == ".dbstats":
        from repro.obs import metrics as obs_metrics

        stats = db.stats()
        for name, entry in stats["objects"].items():
            print(
                f"  {name:<20} {entry['kind']:<12} {entry['records']} records",
                file=out,
            )
        print(f"  indexes: {len(stats['indexes'])}", file=out)
        print(f"  log entries: {stats['log_entries']}", file=out)
        print(f"  transactions: {stats['transactions']}", file=out)
        registry = obs_metrics.REGISTRY
        print("  metrics:", file=out)
        for metric_name in (
            "queries_total",
            "query_rows_returned_total",
            "index_lookups_total",
            "plan_cache_hits_total",
            "plan_cache_misses_total",
            "plan_cache_evictions_total",
            "hash_join_builds_total",
            "model_ops_total",
            "txn_commits_total",
            "wal_appends_total",
            "fault_injections_total",
            "recovery_runs_total",
            "query_timeouts_total",
        ):
            print(f"    {metric_name}: {registry.total(metric_name)}", file=out)
        cache = getattr(db, "plan_cache", None)
        if cache is not None:
            cache_stats = cache.stats()
            print(
                f"  plan cache: {cache_stats['size']}/{cache_stats['capacity']} "
                f"entries, {cache_stats['hits']} hits, "
                f"{cache_stats['misses']} misses",
                file=out,
            )
        return
    if statement == ".stats":
        stats = state.get("last_stats")
        if stats is None:
            print(
                "  no query has run yet — run one and .stats will show its "
                "scan/index/write counters",
                file=out,
            )
        else:
            for key, value in stats.items():
                print(f"  {key}: {value}", file=out)
        return
    if statement.startswith(".metrics"):
        from repro.obs import export as obs_export
        from repro.obs import metrics as obs_metrics

        argument = statement[len(".metrics"):].strip().lower()
        if len(obs_metrics.REGISTRY) == 0:
            print("  no metrics recorded yet", file=out)
        elif argument == "json":
            print(obs_export.json_dump(), file=out)
        else:
            print(obs_export.prometheus_text(), file=out)
        return
    if statement.startswith(".plancache"):
        cache = getattr(db, "plan_cache", None)
        if cache is None:
            print("  this database has no plan cache", file=out)
            return
        argument = statement[len(".plancache"):].strip().lower()
        if argument == "clear":
            cache.clear()
            print("  plan cache cleared", file=out)
            return
        if argument.startswith("size"):
            try:
                capacity = int(argument[len("size"):].strip())
            except ValueError:
                print("  usage: .plancache [clear|size N]", file=out)
                return
            cache.resize(capacity)
            print(f"  plan cache capacity set to {cache.capacity}", file=out)
            return
        if argument:
            print("  usage: .plancache [clear|size N]", file=out)
            return
        cache_stats = cache.stats()
        print(
            f"  {cache_stats['size']}/{cache_stats['capacity']} entries; "
            f"{cache_stats['hits']} hits, {cache_stats['misses']} misses, "
            f"{cache_stats['evictions']} evictions, "
            f"{cache_stats['invalidations']} DDL invalidations",
            file=out,
        )
        for entry in reversed(cache.entries()):  # most recently used first
            binds = (
                " @" + ",@".join(entry["bind_shape"])
                if entry["bind_shape"]
                else ""
            )
            flavour = "" if entry["optimized"] else " [unoptimized]"
            query_text = " ".join(entry["query"].split())
            if len(query_text) > 60:
                query_text = query_text[:57] + "..."
            print(
                f"  {entry['hits']:>5} hits  {query_text}{binds}{flavour}",
                file=out,
            )
        return
    if statement.startswith(".trace"):
        from repro.obs import tracing

        argument = statement[len(".trace"):].strip().lower()
        if argument == "on":
            tracing.enable()
            print("  tracing on — span trees print after each query", file=out)
        elif argument == "off":
            tracing.disable()
            print("  tracing off", file=out)
        elif argument == "":
            status = "on" if tracing.is_enabled() else "off"
            print(f"  tracing is {status}; usage: .trace on|off", file=out)
        else:
            print("  usage: .trace on|off", file=out)
        return
    if statement.startswith(".slowlog"):
        from repro.obs import slowlog

        argument = statement[len(".slowlog"):].strip().lower()
        if argument == "off":
            slowlog.set_threshold(None)
            slowlog.clear()
            print("  slow-query log off", file=out)
        elif argument:
            try:
                millis = float(argument)
            except ValueError:
                print("  usage: .slowlog [threshold-ms|off]", file=out)
                return
            slowlog.set_threshold(millis / 1000.0)
            print(f"  slow-query log on: threshold {millis:g} ms", file=out)
        else:
            threshold = slowlog.get_threshold()
            if threshold is None:
                print(
                    "  slow-query log is off — .slowlog <ms> to enable",
                    file=out,
                )
                return
            entries = slowlog.entries()
            print(
                f"  threshold {threshold * 1000:g} ms, "
                f"{len(entries)} slow quer{'y' if len(entries) == 1 else 'ies'}",
                file=out,
            )
            for entry in entries:
                print(
                    f"  {entry['seconds'] * 1000:8.1f} ms  "
                    f"{entry['rows']:>6} rows  {entry['query']}",
                    file=out,
                )
        return
    if statement.startswith(".faults"):
        from repro.fault import registry as fault_registry

        # Importing the durability modules is what registers their sites,
        # so the listing covers the whole engine even on a fresh shell.
        import repro.polyglot.integrator  # noqa: F401
        import repro.storage.checkpoint  # noqa: F401
        import repro.storage.wal  # noqa: F401
        import repro.txn.manager  # noqa: F401

        words = statement[len(".faults"):].strip().split()
        usage = "  usage: .faults [arm SITE TRIGGER [EFFECT] [seed N] | disarm SITE|all]"
        if not words:
            states = fault_registry.FAILPOINTS.states()
            if not states:
                print("  no failpoints registered", file=out)
                return
            for entry in states:
                if entry["armed"]:
                    detail = (
                        f"armed {entry['trigger']} effect={entry['effect']} "
                        f"fires={entry['fires']}"
                    )
                else:
                    detail = "disarmed"
                    if entry["fires"]:
                        detail += f" (fired {entry['fires']})"
                print(f"  {entry['site']:<36} {detail}", file=out)
            return
        command, words = words[0].lower(), words[1:]
        if command == "disarm":
            if len(words) != 1:
                print(usage, file=out)
                return
            if words[0].lower() == "all":
                fault_registry.FAILPOINTS.disarm_all()
                print("  all failpoints disarmed", file=out)
                return
            try:
                fault_registry.FAILPOINTS.disarm(words[0])
            except KeyError:
                print(f"  unknown failpoint {words[0]!r}", file=out)
                return
            print(f"  {words[0]} disarmed", file=out)
            return
        if command == "arm":
            seed = None
            if len(words) >= 2 and words[-2].lower() == "seed":
                try:
                    seed = int(words[-1])
                except ValueError:
                    print(usage, file=out)
                    return
                words = words[:-2]
            if len(words) not in (2, 3):
                print(usage, file=out)
                return
            site, trigger = words[0], words[1]
            effect = words[2].lower() if len(words) == 3 else "crash"
            try:
                fault_registry.FAILPOINTS.arm(site, trigger, effect, seed=seed)
            except KeyError:
                print(f"  unknown failpoint {site!r}", file=out)
                return
            except ValueError as error:
                print(f"error: {error}", file=out)
                return
            print(
                f"  {site} armed: {trigger} effect={effect}"
                + (f" seed={seed}" if seed is not None else ""),
                file=out,
            )
            return
        print(usage, file=out)
        return
    if statement.startswith(".explain"):
        query_text = statement[len(".explain"):].strip()
        if not query_text:
            print("  usage: .explain <query>", file=out)
            return
        try:
            print(db.explain(query_text), file=out)
        except ReproError as error:
            print(f"error: {error}", file=out)
        return
    if statement.startswith(".advise"):
        query_text = statement[len(".advise"):].strip()
        if not query_text:
            print("  usage: .advise <query>", file=out)
            return
        from repro.query.advisor import advise

        try:
            recommendations = advise(db, [query_text])
        except ReproError as error:
            print(f"error: {error}", file=out)
            return
        if not recommendations:
            print("  no new indexes would help this query", file=out)
        for recommendation in recommendations:
            print(f"  {recommendation.describe()}", file=out)
        return
    if statement.startswith("."):
        print(f"unknown command {statement.split()[0]!r}; try .help", file=out)
        return
    try:
        result = db.query(statement)
    except ReproError as error:
        print(f"error: {error}", file=out)
        return
    if result.analyzed is not None:
        # EXPLAIN ANALYZE: the annotated plan is the output, not the rows.
        print(result.analyzed, file=out)
    else:
        for row in result.rows:
            print(json.dumps(row, default=str), file=out)
    state["last_stats"] = result.stats
    print(
        f"-- {len(result.rows)} row(s); scanned {result.stats['scanned']}, "
        f"index lookups {result.stats['index_lookups']}",
        file=out,
    )
    from repro.obs import tracing

    if tracing.is_enabled():
        trace = tracing.last_trace()
        if trace is not None:
            print(tracing.format_span(trace), file=out)


def repl(db: MultiModelDB, source: IO, out: IO, prompt: str = "mmql> ") -> None:
    """Read statements from *source* until EOF or ``.quit``.

    Multi-line queries are supported: a line ending in ``\\`` continues.
    """
    state: dict = {"done": False}
    buffer: list[str] = []
    interactive = out.isatty() if hasattr(out, "isatty") else False
    while not state["done"]:
        if interactive:
            out.write(prompt if not buffer else "....> ")
            out.flush()
        line = source.readline()
        if not line:
            break
        line = line.rstrip("\n")
        if line.endswith("\\"):
            buffer.append(line[:-1])
            continue
        buffer.append(line)
        statement = "\n".join(buffer)
        buffer = []
        run_statement(db, statement, out, state)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-shell", description="interactive MMQL shell"
    )
    parser.add_argument("--wal", help="attach (and recover from) a WAL file")
    parser.add_argument(
        "--demo",
        nargs="?",
        const=1,
        type=int,
        metavar="SCALE",
        help="load the UniBench demo data set",
    )
    parser.add_argument("-c", "--command", help="run one query and exit")
    parser.add_argument("-f", "--file", help="run a ;-separated script")
    args = parser.parse_args(argv)

    if args.demo is not None:
        db = make_demo_db(args.demo)
    else:
        db = MultiModelDB()
    if args.wal:
        import os

        if os.path.exists(args.wal):
            db.recover(args.wal)
        db.attach_wal(args.wal)

    state: dict = {"done": False}
    if args.command:
        run_statement(db, args.command, sys.stdout, state)
        return 0
    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            script = handle.read()
        for statement in script.split(";"):
            run_statement(db, statement, sys.stdout, state)
        return 0
    print("repro MMQL shell — .help for commands", file=sys.stdout)
    repl(db, sys.stdin, sys.stdout)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
