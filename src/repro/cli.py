"""``repro-shell`` — an interactive MMQL shell, a server, and a wire client.

Usage:

    repro-shell [--wal PATH] [--demo [SCALE]] [-c QUERY] [-f FILE]
    repro-shell serve   [--host H] [--port P] [--demo [SCALE]] [--wal PATH]
                        [--max-sessions N] [--max-inflight N] [--queue-depth N]
                        [--checkpoint PATH] [--timeout S] [--max-rows N]
    repro-shell connect [--host H] [--port P] [-c QUERY] [-f FILE]

* ``--demo`` loads the UniBench e-commerce data set (default scale 1) so
  there is something to query immediately;
* ``--wal`` attaches a write-ahead log (recovering from it first when the
  file already has history);
* ``-c`` runs one query and exits; ``-f`` runs a ``;``-separated script;
* ``serve`` hosts the database over the wire protocol (docs/SERVER.md);
* ``connect`` opens the same shell against a running server.

Inside the shell:

    mmql> FOR c IN customers FILTER c.credit_limit > 3000 RETURN c.name
    mmql> .explain FOR c IN customers RETURN c
    mmql> .catalog        .stats        .help        .quit

Everything is a plain function over streams, so the shell is unit-testable
without a TTY.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import IO, Optional

from repro.core.database import MultiModelDB
from repro.errors import ReproError

__all__ = [
    "make_demo_db",
    "run_statement",
    "repl",
    "run_remote_statement",
    "remote_repl",
    "main",
    "serve_main",
    "connect_main",
]

_HELP = """\
MMQL shell commands:
  .help                 this message
  .catalog              list collections/tables/graphs/buckets/stores
  .dbstats              record counts, indexes, log, txn and metric counters
  .explain <query>      show the optimized plan without executing
  .advise [query]       recommend indexes (runtime near-miss log, or a query)
  .rules [list|on NAME|off NAME]
                        list / toggle optimizer rewrite rules
  .stats                statistics of the last query
  .metrics [json]       dump the engine metrics registry (Prometheus text)
  .plancache [clear|size N]
                        show (or clear/resize) the query plan cache
  .batch [N]            show / set the default execution batch size
  .columnar [on|off]    show / toggle columnar segment scans (+ segment stats)
  .trace [on|off]       print a span tree after each query
  .events [N] [KIND]    tail the structured event log (optionally filtered)
  .slowlog [MS|off]     show the slow-query log / set its threshold in ms
  .faults [arm SITE TRIGGER [EFFECT] [seed N] | disarm SITE|all]
                        list / arm / disarm fault-injection failpoints
  .quit                 exit
EXPLAIN ANALYZE <query> executes the query and prints the physical plan
annotated with per-operator rows and wall-time.
Anything else is executed as an MMQL query; rows print as JSON lines."""


def _print_events(tail, argument: str, out: IO) -> None:
    """Shared ``.events [N] [KIND]`` body for the local and remote shells;
    *tail* is any ``(n, kind) -> list[dict]`` source."""
    words = argument.strip().split()
    limit: Optional[int] = 20
    kind: Optional[str] = None
    for word in words:
        if word.isdigit():
            limit = int(word)
        elif word.lower() == "all":
            limit = None
        else:
            kind = word
    entries = tail(limit, kind)
    if not entries:
        suffix = f" of kind {kind!r}" if kind else ""
        print(f"  no events{suffix} recorded yet", file=out)
        return
    for event in entries:
        print(f"  {json.dumps(event, default=str, sort_keys=True)}", file=out)


def make_demo_db(scale_factor: int = 1) -> MultiModelDB:
    """A database pre-loaded with the UniBench e-commerce data set."""
    from repro.unibench.generator import generate, load_into_multimodel

    db = MultiModelDB()
    load_into_multimodel(db, generate(scale_factor=scale_factor, seed=42))
    return db


def run_statement(db: MultiModelDB, statement: str, out: IO, state: dict) -> None:
    """Execute one shell statement (dot-command or MMQL) against *db*."""
    statement = statement.strip()
    if not statement:
        return
    if statement in (".quit", ".exit"):
        state["done"] = True
        return
    if statement == ".help":
        print(_HELP, file=out)
        return
    if statement == ".catalog":
        for name, kind in db.catalog().items():
            print(f"  {name:<20} {kind}", file=out)
        return
    if statement == ".dbstats":
        from repro.obs import metrics as obs_metrics

        stats = db.stats()
        for name, entry in stats["objects"].items():
            print(
                f"  {name:<20} {entry['kind']:<12} {entry['records']} records",
                file=out,
            )
        print(f"  indexes: {len(stats['indexes'])}", file=out)
        print(f"  log entries: {stats['log_entries']}", file=out)
        print(f"  transactions: {stats['transactions']}", file=out)
        registry = obs_metrics.REGISTRY
        print("  metrics:", file=out)
        for metric_name in (
            "queries_total",
            "query_rows_returned_total",
            "index_lookups_total",
            "plan_cache_hits_total",
            "plan_cache_misses_total",
            "plan_cache_evictions_total",
            "hash_join_builds_total",
            "columnar_segments_pruned_total",
            "columnar_kernel_rows_total",
            "columnar_segment_rebuilds_total",
            "model_ops_total",
            "txn_commits_total",
            "wal_appends_total",
            "fault_injections_total",
            "recovery_runs_total",
            "query_timeouts_total",
            "wal_records_shipped_total",
            "failover_total",
            "repl_ack_timeouts_total",
            "server_cursors_reaped_total",
            "cluster_fanout_queries_total",
            "cluster_single_shard_queries_total",
            "cluster_merge_rows_total",
        ):
            print(f"    {metric_name}: {registry.total(metric_name)}", file=out)
        cache = getattr(db, "plan_cache", None)
        if cache is not None:
            cache_stats = cache.stats()
            print(
                f"  plan cache: {cache_stats['size']}/{cache_stats['capacity']} "
                f"entries, {cache_stats['hits']} hits, "
                f"{cache_stats['misses']} misses",
                file=out,
            )
        return
    if statement == ".stats":
        stats = state.get("last_stats")
        if stats is None:
            print(
                "  no query has run yet — run one and .stats will show its "
                "scan/index/write counters",
                file=out,
            )
        else:
            for key, value in stats.items():
                print(f"  {key}: {value}", file=out)
        return
    if statement.startswith(".metrics"):
        from repro.obs import export as obs_export
        from repro.obs import metrics as obs_metrics

        argument = statement[len(".metrics"):].strip().lower()
        if len(obs_metrics.REGISTRY) == 0:
            print("  no metrics recorded yet", file=out)
        elif argument == "json":
            print(obs_export.json_dump(), file=out)
        else:
            print(obs_export.prometheus_text(), file=out)
        return
    if statement.startswith(".plancache"):
        cache = getattr(db, "plan_cache", None)
        if cache is None:
            print("  this database has no plan cache", file=out)
            return
        argument = statement[len(".plancache"):].strip().lower()
        if argument == "clear":
            cache.clear()
            print("  plan cache cleared", file=out)
            return
        if argument.startswith("size"):
            try:
                capacity = int(argument[len("size"):].strip())
            except ValueError:
                print("  usage: .plancache [clear|size N]", file=out)
                return
            cache.resize(capacity)
            print(f"  plan cache capacity set to {cache.capacity}", file=out)
            return
        if argument:
            print("  usage: .plancache [clear|size N]", file=out)
            return
        cache_stats = cache.stats()
        print(
            f"  {cache_stats['size']}/{cache_stats['capacity']} entries; "
            f"{cache_stats['hits']} hits, {cache_stats['misses']} misses, "
            f"{cache_stats['evictions']} evictions, "
            f"{cache_stats['invalidations']} DDL invalidations",
            file=out,
        )
        for entry in reversed(cache.entries()):  # most recently used first
            binds = (
                " @" + ",@".join(entry["bind_shape"])
                if entry["bind_shape"]
                else ""
            )
            flavour = "" if entry["optimized"] else " [unoptimized]"
            query_text = " ".join(entry["query"].split())
            if len(query_text) > 60:
                query_text = query_text[:57] + "..."
            print(
                f"  {entry['hits']:>5} hits  {query_text}{binds}{flavour}",
                file=out,
            )
        return
    if statement.startswith(".batch"):
        argument = statement[len(".batch"):].strip()
        if not argument:
            ceiling = getattr(getattr(db, "guardrails", None), "max_batch_size", None)
            suffix = f" (guardrail ceiling {ceiling})" if ceiling is not None else ""
            print(f"  batch size: {db.batch_size}{suffix}", file=out)
            return
        try:
            width = int(argument)
        except ValueError:
            print("  usage: .batch [N]", file=out)
            return
        if width < 1:
            print("  batch size must be >= 1", file=out)
            return
        db.batch_size = width
        print(f"  batch size set to {db.batch_size}", file=out)
        return
    if statement.startswith(".columnar"):
        argument = statement[len(".columnar"):].strip().lower()
        if argument == "on":
            db.columnar = True
        elif argument == "off":
            db.columnar = False
        elif argument:
            print("  usage: .columnar [on|off]", file=out)
            return
        status = "on" if getattr(db, "columnar", True) else "off"
        segment_stats = db.context.segments.stats()
        print(
            f"  columnar scans {status} — {segment_stats['segments']} "
            f"segments / {segment_stats['rows']} rows over "
            f"{segment_stats['namespaces']} namespaces "
            f"({segment_stats['rebuilds']} rebuilds, "
            f"{segment_stats['appends']} tail appends)",
            file=out,
        )
        return
    if statement.startswith(".trace"):
        from repro.obs import tracing

        argument = statement[len(".trace"):].strip().lower()
        if argument == "on":
            tracing.enable()
            print("  tracing on — span trees print after each query", file=out)
        elif argument == "off":
            tracing.disable()
            print("  tracing off", file=out)
        elif argument == "":
            status = "on" if tracing.is_enabled() else "off"
            print(f"  tracing is {status}; usage: .trace on|off", file=out)
        else:
            print("  usage: .trace on|off", file=out)
        return
    if statement.startswith(".events"):
        from repro.obs import events as obs_events

        _print_events(obs_events.tail, statement[len(".events"):], out)
        return
    if statement.startswith(".slowlog"):
        from repro.obs import slowlog

        argument = statement[len(".slowlog"):].strip().lower()
        if argument == "off":
            slowlog.set_threshold(None)
            slowlog.clear()
            print("  slow-query log off", file=out)
        elif argument:
            try:
                millis = float(argument)
            except ValueError:
                print("  usage: .slowlog [threshold-ms|off]", file=out)
                return
            slowlog.set_threshold(millis / 1000.0)
            print(f"  slow-query log on: threshold {millis:g} ms", file=out)
        else:
            threshold = slowlog.get_threshold()
            if threshold is None:
                print(
                    "  slow-query log is off — .slowlog <ms> to enable",
                    file=out,
                )
                return
            entries = slowlog.entries()
            print(
                f"  threshold {threshold * 1000:g} ms, "
                f"{len(entries)} slow quer{'y' if len(entries) == 1 else 'ies'}",
                file=out,
            )
            for entry in entries:
                print(
                    f"  {entry['seconds'] * 1000:8.1f} ms  "
                    f"{entry['rows']:>6} rows  {entry['query']}",
                    file=out,
                )
        return
    if statement.startswith(".faults"):
        from repro.fault import registry as fault_registry

        # Importing the durability modules is what registers their sites,
        # so the listing covers the whole engine even on a fresh shell.
        import repro.polyglot.integrator  # noqa: F401
        import repro.storage.checkpoint  # noqa: F401
        import repro.storage.wal  # noqa: F401
        import repro.txn.manager  # noqa: F401

        words = statement[len(".faults"):].strip().split()
        usage = "  usage: .faults [arm SITE TRIGGER [EFFECT] [seed N] | disarm SITE|all]"
        if not words:
            states = fault_registry.FAILPOINTS.states()
            if not states:
                print("  no failpoints registered", file=out)
                return
            for entry in states:
                if entry["armed"]:
                    detail = (
                        f"armed {entry['trigger']} effect={entry['effect']} "
                        f"fires={entry['fires']}"
                    )
                else:
                    detail = "disarmed"
                    if entry["fires"]:
                        detail += f" (fired {entry['fires']})"
                print(f"  {entry['site']:<36} {detail}", file=out)
            return
        command, words = words[0].lower(), words[1:]
        if command == "disarm":
            if len(words) != 1:
                print(usage, file=out)
                return
            if words[0].lower() == "all":
                fault_registry.FAILPOINTS.disarm_all()
                print("  all failpoints disarmed", file=out)
                return
            try:
                fault_registry.FAILPOINTS.disarm(words[0])
            except KeyError:
                print(f"  unknown failpoint {words[0]!r}", file=out)
                return
            print(f"  {words[0]} disarmed", file=out)
            return
        if command == "arm":
            seed = None
            if len(words) >= 2 and words[-2].lower() == "seed":
                try:
                    seed = int(words[-1])
                except ValueError:
                    print(usage, file=out)
                    return
                words = words[:-2]
            if len(words) not in (2, 3):
                print(usage, file=out)
                return
            site, trigger = words[0], words[1]
            effect = words[2].lower() if len(words) == 3 else "crash"
            try:
                fault_registry.FAILPOINTS.arm(site, trigger, effect, seed=seed)
            except KeyError:
                print(f"  unknown failpoint {site!r}", file=out)
                return
            except ValueError as error:
                print(f"error: {error}", file=out)
                return
            print(
                f"  {site} armed: {trigger} effect={effect}"
                + (f" seed={seed}" if seed is not None else ""),
                file=out,
            )
            return
        print(usage, file=out)
        return
    if statement.startswith(".explain"):
        query_text = statement[len(".explain"):].strip()
        if not query_text:
            print("  usage: .explain <query>", file=out)
            return
        try:
            print(db.explain(query_text), file=out)
        except ReproError as error:
            print(f"error: {error}", file=out)
        return
    if statement.startswith(".advise"):
        query_text = statement[len(".advise"):].strip()
        from repro.query.advisor import advise

        try:
            # Bare ``.advise`` reads the optimizer's runtime near-miss log;
            # with a query argument it also analyzes that statement.
            recommendations = advise(db, [query_text] if query_text else None)
        except ReproError as error:
            print(f"error: {error}", file=out)
            return
        if not recommendations:
            if query_text:
                print("  no new indexes would help this query", file=out)
            else:
                print(
                    "  no suggestions recorded yet — run some queries, "
                    "or pass a query: .advise <query>",
                    file=out,
                )
        for recommendation in recommendations:
            print(f"  {recommendation.describe()}", file=out)
        return
    if statement.startswith(".rules"):
        argument = statement[len(".rules"):].strip()
        from repro.query.rules import REGISTRY

        toggles = db.optimizer_rules
        if not argument or argument == "list":
            for rule in REGISTRY:
                state_word = (
                    "on" if toggles.is_enabled(rule.name) else "OFF"
                )
                print(
                    f"  [{state_word:>3}] {rule.name}: {rule.description}",
                    file=out,
                )
            return
        parts = argument.split()
        if len(parts) == 2 and parts[0] in ("on", "off"):
            try:
                if parts[0] == "on":
                    toggles.enable(parts[1])
                else:
                    toggles.disable(parts[1])
            except KeyError as error:
                print(f"error: {error.args[0]}", file=out)
                return
            print(f"  {parts[1]} -> {parts[0]}", file=out)
            return
        print("  usage: .rules [list|on NAME|off NAME]", file=out)
        return
    if statement.startswith("."):
        print(f"unknown command {statement.split()[0]!r}; try .help", file=out)
        return
    try:
        result = db.query(statement)
    except ReproError as error:
        print(f"error: {error}", file=out)
        return
    if result.analyzed is not None:
        # EXPLAIN ANALYZE: the annotated plan is the output, not the rows.
        print(result.analyzed, file=out)
    else:
        for row in result.rows:
            print(json.dumps(row, default=str), file=out)
    state["last_stats"] = result.stats
    print(
        f"-- {len(result.rows)} row(s); scanned {result.stats['scanned']}, "
        f"index lookups {result.stats['index_lookups']}",
        file=out,
    )
    from repro.obs import tracing

    if tracing.is_enabled():
        trace = tracing.last_trace()
        if trace is not None:
            print(tracing.format_span(trace), file=out)


def repl(db: MultiModelDB, source: IO, out: IO, prompt: str = "mmql> ") -> None:
    """Read statements from *source* until EOF or ``.quit``.

    Multi-line queries are supported: a line ending in ``\\`` continues.
    """
    state: dict = {"done": False}
    buffer: list[str] = []
    interactive = out.isatty() if hasattr(out, "isatty") else False
    while not state["done"]:
        if interactive:
            out.write(prompt if not buffer else "....> ")
            out.flush()
        line = source.readline()
        if not line:
            break
        line = line.rstrip("\n")
        if line.endswith("\\"):
            buffer.append(line[:-1])
            continue
        buffer.append(line)
        statement = "\n".join(buffer)
        buffer = []
        run_statement(db, statement, out, state)


# ---------------------------------------------------------------------------
# Remote shell (the `connect` subcommand)
# ---------------------------------------------------------------------------

_REMOTE_HELP = """\
Remote MMQL shell commands:
  .help                 this message
  .explain <query>      server-side optimized plan, without executing
  .begin [ISOLATION]    open a transaction on this session
  .commit / .abort      finish the session's transaction
  .set [timeout S|off] [max_rows N|off]
                        session guardrail overrides (host caps still apply)
  .server               server stats: sessions, in-flight, limits
  .replicas             replication status: role, watermarks, subscribers
  .shards               cluster topology: shard roster, placements,
                        per-shard reachability (cluster connections only)
  .info                 server handshake info (version, protocol, limits)
  .trace <query>        run the query traced; print the stitched
                        client+server span tree (one trace across every
                        fetch of the stream)
  .events [N] [KIND]    tail the server's structured event log
  .slowlog [MS|off]     show the server's slow-query log / set threshold
  .quit                 exit
Anything else runs as an MMQL query on the server; rows print as JSON."""


def run_remote_statement(client, statement: str, out: IO, state: dict) -> None:
    """Execute one remote-shell statement (dot-command or MMQL)."""
    statement = statement.strip()
    if not statement:
        return
    if statement in (".quit", ".exit"):
        state["done"] = True
        return
    if statement == ".help":
        print(_REMOTE_HELP, file=out)
        return
    try:
        if statement == ".server":
            stats = client.stats()
            print(
                f"  uptime {stats['uptime_seconds']}s, "
                f"{len(stats['sessions'])} session(s), "
                f"{stats['inflight']} in flight"
                + (", draining" if stats["draining"] else ""),
                file=out,
            )
            for limit, value in stats["limits"].items():
                print(f"  {limit}: {value}", file=out)
            for entry in stats["sessions"]:
                print(
                    f"  session {entry['session']} peer={entry['peer']} "
                    f"requests={entry['requests']} in_txn={entry['in_txn']}",
                    file=out,
                )
            return
        if statement == ".replicas":
            status = client._call("repl_status")
            role = status.get("role", "?")
            print(
                f"  role {role}, last_lsn {status.get('last_lsn')}",
                file=out,
            )
            if role == "replica":
                print(
                    f"  primary {status.get('primary')} "
                    f"connected={status.get('connected')} "
                    f"applied={status.get('applied_lsn')} "
                    f"received={status.get('received_lsn')}",
                    file=out,
                )
            else:
                print(
                    f"  ack_replication: {status.get('ack_replication')}",
                    file=out,
                )
                subscribers = status.get("subscribers") or []
                if not subscribers:
                    print("  no subscribed replicas", file=out)
                for entry in subscribers:
                    print(
                        f"  replica {entry.get('peer')} "
                        f"shipped={entry.get('shipped_lsn')} "
                        f"acked={entry.get('acked_lsn')}",
                        file=out,
                    )
            return
        if statement == ".info":
            for key, value in client.info().items():
                print(f"  {key}: {value}", file=out)
            return
        if statement == ".shards":
            shards_status = getattr(client, "shards_status", None)
            if shards_status is None:
                print(
                    "  not a cluster connection — reconnect with "
                    "`connect --cluster MAP|HOST:PORT`",
                    file=out,
                )
                return
            for entry in shards_status():
                replicas = ", ".join(entry["replicas"]) or "none"
                health = "up" if entry["alive"] else "UNREACHABLE"
                print(
                    f"  shard {entry['shard_id']}: primary "
                    f"{entry['primary']} ({health}), replicas: {replicas}",
                    file=out,
                )
            info = client.info()
            print(
                f"  map v{info['map_version']}, placements: "
                + ", ".join(
                    f"{name}={mode}"
                    for name, mode in info["placements"].items()
                ),
                file=out,
            )
            return
        if statement.startswith(".begin"):
            isolation = statement[len(".begin"):].strip() or "snapshot"
            txn = client.begin(isolation)
            print(f"  transaction {txn} started ({isolation})", file=out)
            return
        if statement == ".commit":
            client.commit()
            print("  committed", file=out)
            return
        if statement == ".abort":
            client.abort()
            print("  aborted", file=out)
            return
        if statement.startswith(".set"):
            words = statement[len(".set"):].strip().split()
            kwargs: dict = {}
            index = 0
            while index < len(words):
                key = words[index].lower()
                if key in ("timeout", "max_rows") and index + 1 < len(words):
                    raw = words[index + 1].lower()
                    if raw == "off":
                        kwargs[key] = None
                    else:
                        kwargs[key] = float(raw) if key == "timeout" else int(raw)
                    index += 2
                else:
                    print(
                        "  usage: .set [timeout S|off] [max_rows N|off]",
                        file=out,
                    )
                    return
            effective = client.set_limits(**kwargs)
            print(
                f"  session limits: timeout={effective['timeout']} "
                f"max_rows={effective['max_rows']}",
                file=out,
            )
            return
        if statement.startswith(".explain"):
            query_text = statement[len(".explain"):].strip()
            if not query_text:
                print("  usage: .explain <query>", file=out)
                return
            print(client.explain(query_text), file=out)
            return
        if statement.startswith(".trace"):
            query_text = statement[len(".trace"):].strip()
            if not query_text:
                print("  usage: .trace <query>", file=out)
                return
            cursor = client.query(query_text, trace=True)
            rows = cursor.rows  # drain so the trace covers every fetch
            if cursor.trace is not None:
                print(cursor.trace.format(), file=out)
            else:
                print(
                    "  (server does not advertise the trace feature)",
                    file=out,
                )
            print(f"-- {len(rows)} row(s)", file=out)
            state["last_stats"] = cursor.stats
            return
        if statement.startswith(".events"):
            _print_events(client.events, statement[len(".events"):], out)
            return
        if statement.startswith(".slowlog"):
            argument = statement[len(".slowlog"):].strip().lower()
            if argument == "off":
                client.slowlog(threshold_ms=None)
                print("  server slow-query log off", file=out)
                return
            if argument:
                try:
                    millis = float(argument)
                except ValueError:
                    print("  usage: .slowlog [threshold-ms|off]", file=out)
                    return
                client.slowlog(threshold_ms=millis)
                print(
                    f"  server slow-query log on: threshold {millis:g} ms",
                    file=out,
                )
                return
            payload = client.slowlog()
            threshold = payload.get("threshold_ms")
            if threshold is None:
                print(
                    "  server slow-query log is off — .slowlog <ms> to enable",
                    file=out,
                )
                return
            entries = payload.get("entries") or []
            print(
                f"  threshold {threshold:g} ms, {len(entries)} "
                f"slow quer{'y' if len(entries) == 1 else 'ies'}",
                file=out,
            )
            for entry in entries:
                correlation = ""
                if entry.get("trace_id"):
                    correlation = f"  trace={entry['trace_id']}"
                print(
                    f"  {entry['seconds'] * 1000:8.1f} ms  "
                    f"{entry['rows']:>6} rows  {entry['query']}{correlation}",
                    file=out,
                )
            return
        if statement.startswith("."):
            print(
                f"unknown command {statement.split()[0]!r}; try .help",
                file=out,
            )
            return
        result = client.query(statement)
    except ReproError as error:
        print(f"error [{error.code}]: {error}", file=out)
        return
    except AttributeError:
        print(
            f"  {statement.split()[0]!r} is not available on this "
            "connection type",
            file=out,
        )
        return
    except (ConnectionError, OSError, ValueError) as error:
        print(f"error: {error}", file=out)
        return
    if result.analyzed is not None:
        print(result.analyzed, file=out)
    else:
        for row in result.rows:
            print(json.dumps(row, default=str), file=out)
    state["last_stats"] = result.stats
    print(
        f"-- {len(result.rows)} row(s); scanned {result.stats['scanned']}, "
        f"index lookups {result.stats['index_lookups']}",
        file=out,
    )


def remote_repl(client, source: IO, out: IO, prompt: str = "mmql*> ") -> None:
    """Like :func:`repl`, but every statement goes over the wire."""
    state: dict = {"done": False}
    buffer: list[str] = []
    interactive = out.isatty() if hasattr(out, "isatty") else False
    while not state["done"]:
        if interactive:
            out.write(prompt if not buffer else "....> ")
            out.flush()
        line = source.readline()
        if not line:
            break
        line = line.rstrip("\n")
        if line.endswith("\\"):
            buffer.append(line[:-1])
            continue
        buffer.append(line)
        statement = "\n".join(buffer)
        buffer = []
        run_remote_statement(client, statement, out, state)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def serve_main(argv: Optional[list[str]] = None) -> int:
    """``repro-shell serve`` — host a database over the wire protocol."""
    from repro import __version__
    from repro.client.client import DEFAULT_PORT
    from repro.server import ReproServer

    parser = argparse.ArgumentParser(
        prog="repro-shell serve", description="serve a database over TCP"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--demo", nargs="?", const=1, type=int, metavar="SCALE",
        help="load the UniBench demo data set",
    )
    parser.add_argument("--wal", help="attach (and recover from) a WAL file")
    parser.add_argument("--max-sessions", type=int, default=64)
    parser.add_argument("--max-inflight", type=int, default=8)
    parser.add_argument("--queue-depth", type=int, default=32)
    parser.add_argument(
        "--checkpoint", metavar="PATH",
        help="write a checkpoint here during graceful shutdown",
    )
    parser.add_argument(
        "--timeout", type=float, metavar="S",
        help="host-wide query timeout cap (db.guardrails.timeout)",
    )
    parser.add_argument(
        "--max-rows", type=int, metavar="N",
        help="host-wide result row cap (db.guardrails.max_rows)",
    )
    parser.add_argument(
        "--telemetry-port", type=int, metavar="P",
        help="serve HTTP /metrics, /healthz, /stats and /events on this "
        "port (0 picks a free one)",
    )
    parser.add_argument(
        "--replica-of", metavar="HOST:PORT",
        help="start as a read replica: subscribe to this primary's WAL "
        "stream and refuse writes (docs/SERVER.md#replication)",
    )
    parser.add_argument(
        "--ack-replication", type=int, default=0, metavar="K",
        help="semi-sync: a write confirms only after K replicas "
        "acknowledged its LSN (0 = asynchronous, the default)",
    )
    parser.add_argument(
        "--ack-timeout", type=float, default=5.0, metavar="S",
        help="how long a semi-sync write waits for replica acks before "
        "failing with a REPLICATION error",
    )
    parser.add_argument(
        "--events-file", metavar="PATH",
        help="append structured events to PATH as JSON lines",
    )
    parser.add_argument(
        "--cluster", metavar="MAP.json",
        help="join a sharded cluster: path to the shard-map JSON "
        "(docs/SERVER.md#cluster); requires --shard-id",
    )
    parser.add_argument(
        "--shard-id", type=int, metavar="N",
        help="this server's shard id in the --cluster map",
    )
    args = parser.parse_args(argv)

    if (args.cluster is None) != (args.shard_id is None):
        parser.error("--cluster and --shard-id go together")
    shard_map = None
    if args.cluster is not None:
        from repro.cluster.shardmap import ShardMap

        shard_map = ShardMap.load(args.cluster)
        if args.shard_id not in shard_map.all_shard_ids():
            parser.error(
                f"--shard-id {args.shard_id} is not in the map "
                f"(shards: {shard_map.all_shard_ids()})"
            )

    if args.replica_of is not None:
        host_part, _, port_part = args.replica_of.rpartition(":")
        if not host_part or not port_part.isdigit():
            parser.error("--replica-of expects HOST:PORT")
        if args.demo is not None or args.wal:
            parser.error(
                "--replica-of populates the database from the primary's "
                "WAL stream; --demo/--wal do not combine with it"
            )

    if args.demo is not None:
        if shard_map is not None:
            # A cluster shard loads only its slice of the demo data set.
            from repro.cluster.bootstrap import load_sharded_unibench
            from repro.unibench.generator import generate

            stand_ins = [
                MultiModelDB() for _ in range(shard_map.num_shards)
            ]
            load_sharded_unibench(
                stand_ins,
                generate(scale_factor=args.demo, seed=42),
                shard_map,
            )
            db = stand_ins[
                shard_map.all_shard_ids().index(args.shard_id)
            ]
        else:
            db = make_demo_db(args.demo)
    else:
        db = MultiModelDB()
    if args.wal:
        import os

        if os.path.exists(args.wal):
            db.recover(args.wal)
        db.attach_wal(args.wal)
    if args.timeout is not None:
        db.guardrails.timeout = args.timeout
    if args.max_rows is not None:
        db.guardrails.max_rows = args.max_rows

    if args.events_file:
        from repro.obs import events as obs_events

        obs_events.attach_file(args.events_file)

    server = ReproServer(
        db,
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        max_inflight=args.max_inflight,
        queue_depth=args.queue_depth,
        checkpoint_path=args.checkpoint,
        telemetry_port=args.telemetry_port,
        replica_of=args.replica_of,
        ack_replication=args.ack_replication,
        ack_timeout=args.ack_timeout,
        shard_id=args.shard_id,
        shard_map=shard_map,
    )
    host, port = server.start_in_thread()
    role = (
        f"replica of {args.replica_of}" if args.replica_of else "primary"
    )
    if args.shard_id is not None:
        role += f", shard {args.shard_id} of {shard_map.num_shards}"
    print(
        f"repro {__version__} serving on {host}:{port} as {role} "
        f"(max {args.max_sessions} sessions, {args.max_inflight} workers; "
        "Ctrl-C for graceful drain)",
        file=sys.stdout,
    )
    if args.ack_replication:
        print(
            f"semi-sync replication: writes wait for "
            f"{args.ack_replication} replica ack(s), "
            f"timeout {args.ack_timeout:g}s",
            file=sys.stdout,
        )
    if server.telemetry_address is not None:
        telemetry_host, telemetry_port = server.telemetry_address
        print(
            f"telemetry on http://{telemetry_host}:{telemetry_port} "
            "(/metrics /healthz /stats /events)",
            file=sys.stdout,
        )
    try:
        import time

        while True:
            time.sleep(0.5)
    except KeyboardInterrupt:
        print("draining…", file=sys.stdout)
    finally:
        server.stop()
        db.close()
        if args.events_file:
            from repro.obs import events as obs_events

            obs_events.detach_file()
    print("server stopped", file=sys.stdout)
    return 0


def connect_main(argv: Optional[list[str]] = None) -> int:
    """``repro-shell connect`` — the shell against a running server."""
    from repro.client import ReproClient
    from repro.client.client import DEFAULT_PORT

    parser = argparse.ArgumentParser(
        prog="repro-shell connect", description="remote MMQL shell"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("-c", "--command", help="run one query and exit")
    parser.add_argument("-f", "--file", help="run a ;-separated script")
    parser.add_argument(
        "--cluster", metavar="MAP|HOST:PORT",
        help="connect to a sharded cluster: a shard-map JSON file, or "
        "any shard's address to fetch the map from",
    )
    args = parser.parse_args(argv)

    if args.cluster is not None:
        import os

        from repro.cluster.client import ClusterClient
        from repro.cluster.shardmap import ShardMap

        try:
            if os.path.exists(args.cluster):
                client = ClusterClient(ShardMap.load(args.cluster))
            else:
                client = ClusterClient(seed=args.cluster)
            client.connect()
        except (ConnectionError, OSError, ReproError) as error:
            print(f"error: cannot join cluster {args.cluster}: {error}",
                  file=sys.stderr)
            return 1
    else:
        try:
            client = ReproClient(host=args.host, port=args.port)
            client.connect()
        except (ConnectionError, OSError) as error:
            print(f"error: cannot reach {args.host}:{args.port}: {error}",
                  file=sys.stderr)
            return 1
    with client:
        state: dict = {"done": False}
        if args.command:
            run_remote_statement(client, args.command, sys.stdout, state)
            return 0
        if args.file:
            with open(args.file, "r", encoding="utf-8") as handle:
                script = handle.read()
            for statement in script.split(";"):
                run_remote_statement(client, statement, sys.stdout, state)
            return 0
        if args.cluster is not None:
            info = client.info()
            print(
                f"connected to a {info['shards']}-shard cluster "
                f"(map v{info['map_version']}) — .help for commands, "
                ".shards for the roster",
                file=sys.stdout,
            )
        else:
            info = client.server_info or {}
            print(
                f"connected to repro {info.get('version')} at "
                f"{args.host}:{args.port} (session {info.get('session')}) — "
                ".help for commands",
                file=sys.stdout,
            )
        remote_repl(client, sys.stdin, sys.stdout)
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "connect":
        return connect_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-shell", description="interactive MMQL shell"
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument("--wal", help="attach (and recover from) a WAL file")
    parser.add_argument(
        "--demo",
        nargs="?",
        const=1,
        type=int,
        metavar="SCALE",
        help="load the UniBench demo data set",
    )
    parser.add_argument("-c", "--command", help="run one query and exit")
    parser.add_argument("-f", "--file", help="run a ;-separated script")
    args = parser.parse_args(argv)

    if args.demo is not None:
        db = make_demo_db(args.demo)
    else:
        db = MultiModelDB()
    if args.wal:
        import os

        if os.path.exists(args.wal):
            db.recover(args.wal)
        db.attach_wal(args.wal)

    state: dict = {"done": False}
    if args.command:
        run_statement(db, args.command, sys.stdout, state)
        return 0
    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            script = handle.read()
        for statement in script.split(";"):
            run_statement(db, statement, sys.stdout, state)
        return 0
    print("repro MMQL shell — .help for commands", file=sys.stdout)
    repl(db, sys.stdin, sys.stdout)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
