"""Wide-column model: CQL-style sparse tables with UDTs and JSON I/O."""

from repro.widecolumn.table import CqlColumn, UserDefinedType, WideColumnTable

__all__ = ["CqlColumn", "UserDefinedType", "WideColumnTable"]
