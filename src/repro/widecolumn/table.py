"""Wide-column tables with CQL-style JSON support (slides 41-46).

"Cassandra — column store with sparse tables… 2015: JSON format (schema of
tables must be defined): keys → column names, JSON values → column values."

This module reproduces the slide examples:

* user-defined types (``CREATE TYPE orderline (product_no text, …)``) via
  :class:`UserDefinedType`;
* tables whose columns may be scalars, UDTs, or ``list<frozen<udt>>``
  (:class:`WideColumnTable` with :class:`CqlColumn`);
* ``INSERT INTO … JSON '{…}'`` — :meth:`WideColumnTable.insert_json`;
* ``SELECT JSON * FROM …`` — :meth:`WideColumnTable.select_json`, which
  prints rows back as JSON exactly like slide 46's
  ``{"id": "Irena", "age": 37, "country": "CZ"}``.

Rows are *sparse*: unset columns simply don't exist in storage (the
wide-column property), and reappear as ``null`` in SELECT JSON output.
Physically the shared :class:`repro.storage.views.ColumnView` holds the
per-column decomposition.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.core import datamodel
from repro.core.context import BaseStore, EngineContext
from repro.core.cursor import warn_deprecated_scan
from repro.errors import ConstraintViolationError, PrimaryKeyError, SchemaError
from repro.txn.manager import Transaction

__all__ = ["UserDefinedType", "CqlColumn", "WideColumnTable"]

_SCALAR_TYPES = ("text", "int", "float", "boolean")


@dataclass(frozen=True)
class UserDefinedType:
    """``CREATE TYPE name (field type, …)`` — fields are scalars or nested
    UDTs (Cassandra allows frozen nesting)."""

    name: str
    fields: tuple[tuple[str, Any], ...]  # (field name, type spec)

    def validate(self, value: Any, context: str) -> dict:
        if datamodel.type_of(value) is not datamodel.TypeTag.OBJECT:
            raise ConstraintViolationError(
                f"{context}: UDT {self.name!r} expects an object"
            )
        unknown = set(value) - {name for name, _spec in self.fields}
        if unknown:
            raise ConstraintViolationError(
                f"{context}: UDT {self.name!r} has no fields {sorted(unknown)}"
            )
        admitted = {}
        for field_name, spec in self.fields:
            if field_name in value:
                admitted[field_name] = _validate_spec(
                    spec, value[field_name], f"{context}.{field_name}"
                )
        return admitted


def _validate_spec(spec: Any, value: Any, context: str) -> Any:
    """Validate one value against a type spec: a scalar type name, a
    :class:`UserDefinedType`, or ``("list", inner_spec)``."""
    if value is None:
        return None
    if isinstance(spec, UserDefinedType):
        return spec.validate(value, context)
    if isinstance(spec, tuple) and spec and spec[0] == "list":
        if datamodel.type_of(value) is not datamodel.TypeTag.ARRAY:
            raise ConstraintViolationError(f"{context}: expected a list")
        return [
            _validate_spec(spec[1], item, f"{context}[{index}]")
            for index, item in enumerate(value)
        ]
    if spec == "text":
        if not isinstance(value, str):
            raise ConstraintViolationError(f"{context}: expected text")
        return value
    if spec == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConstraintViolationError(f"{context}: expected int")
        return value
    if spec == "float":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConstraintViolationError(f"{context}: expected float")
        return float(value)
    if spec == "boolean":
        if not isinstance(value, bool):
            raise ConstraintViolationError(f"{context}: expected boolean")
        return value
    raise SchemaError(f"unknown CQL type spec {spec!r}")


@dataclass(frozen=True)
class CqlColumn:
    """One column: name + type spec (scalar name, UDT, or ("list", spec))."""

    name: str
    spec: Any


class WideColumnTable(BaseStore):
    """A sparse, schema-defined wide-column table."""

    model = "wide"

    def __init__(
        self,
        context: EngineContext,
        name: str,
        columns: list[CqlColumn],
        primary_key: str,
    ):
        super().__init__(context, name)
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate columns in table {name!r}")
        if primary_key not in names:
            raise SchemaError(f"primary key {primary_key!r} is not a column")
        self.columns = {column.name: column for column in columns}
        self.primary_key = primary_key
        # Sparse rows: a column a row never set reads as NULL, which is
        # exactly how the segment builder records it (null set + NULL in
        # the zone map), so columnar scans match the row path.
        context.segments.register(self.namespace, list(self.columns))

    # -- writes ---------------------------------------------------------------

    def insert(self, row: dict, txn: Optional[Transaction] = None) -> Any:
        """Insert a sparse row (only supplied columns are stored)."""
        unknown = set(row) - set(self.columns)
        if unknown:
            raise SchemaError(
                f"table {self.name!r} has no columns {sorted(unknown)} "
                "(the schema of tables must be defined — slide 41)"
            )
        if self.primary_key not in row or row[self.primary_key] is None:
            raise ConstraintViolationError(
                f"table {self.name!r}: primary key {self.primary_key!r} required"
            )
        admitted = {}
        for column_name, value in row.items():
            validated = _validate_spec(
                self.columns[column_name].spec,
                value,
                f"{self.name}.{column_name}",
            )
            if validated is not None:
                admitted[column_name] = validated
        key = admitted[self.primary_key]
        if self._raw_get(key, txn) is not None:
            raise PrimaryKeyError(
                f"table {self.name!r}: duplicate primary key {key!r}"
            )
        self._put(key, admitted, txn)
        return key

    def insert_json(self, text: str, txn: Optional[Transaction] = None) -> Any:
        """``INSERT INTO t JSON '{…}'`` (slide 45)."""
        try:
            row = json.loads(text)
        except json.JSONDecodeError as error:
            raise SchemaError(f"bad JSON payload: {error}") from error
        return self.insert(row, txn)

    def delete(self, key: Any, txn: Optional[Transaction] = None) -> bool:
        return self._delete_key(key, txn)

    # -- reads -----------------------------------------------------------------

    def get(self, key: Any, txn: Optional[Transaction] = None) -> Optional[dict]:
        return self._raw_get(key, txn)

    def rows(self, txn: Optional[Transaction] = None) -> Iterator[dict]:
        """Deprecated compat shim — use :meth:`scan_cursor` instead."""
        warn_deprecated_scan("WideColumnTable.rows()")
        return iter(self.scan_cursor(txn=txn))

    def select_json(
        self,
        where=None,
        txn: Optional[Transaction] = None,
    ) -> list[str]:
        """``SELECT JSON * FROM t`` — each row as a JSON string with every
        schema column present (unset sparse columns as null), in column
        declaration order, like slide 46's output."""
        output = []
        for row in self.scan_cursor(txn=txn):
            if where is not None and not where(row):
                continue
            dense = {
                column_name: row.get(column_name)
                for column_name in self.columns
            }
            output.append(json.dumps(dense))
        return output

    def column_values(self, column: str, txn: Optional[Transaction] = None):
        """The columnar read path (through the shared column view when
        outside a transaction)."""
        if column not in self.columns:
            raise SchemaError(f"table {self.name!r} has no column {column!r}")
        if txn is None:
            return self._context.columns.scan_column(self.namespace, column)
        return iter(
            (key, row[column])
            for key, row in self._raw_scan(txn)
            if column in row
        )
