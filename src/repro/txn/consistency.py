"""Hybrid consistency models for multi-model data (challenge 6, slide 97).

"Graph data and relational data may have different requirements on the
consistency models" — the tutorial's example pairs strictly consistent
relational balances with eventually consistent social-graph edges.

This module simulates a replicated namespace so that the trade-off is
*measurable* (experiment E19).  A :class:`ReplicaSet` holds N replicas; a
write at a given :class:`ConsistencyLevel` synchronously applies to a quorum
of that level's size and leaves the rest to asynchronous anti-entropy
(:meth:`ReplicaSet.tick`).  Reads contact a level-dependent number of
replicas and return the newest version seen.  Costs are counted in
*replica round-trips*, the currency real systems pay in.

Levels:

* ``STRONG``   — write W = N, read R = 1 (read-one/write-all);
* ``QUORUM``   — W = R = ⌊N/2⌋+1 (overlapping majorities ⇒ monotonic reads);
* ``EVENTUAL`` — W = R = 1, convergence only via anti-entropy ticks.

A :class:`ConsistencyPolicy` assigns a level per namespace, which is how the
engine expresses "relational = strong, graph = eventual".
"""

from __future__ import annotations

import enum
import random
from typing import Any, Optional

__all__ = ["ConsistencyLevel", "ConsistencyPolicy", "ReplicaSet"]


class ConsistencyLevel(enum.Enum):
    STRONG = "strong"
    QUORUM = "quorum"
    EVENTUAL = "eventual"


class ConsistencyPolicy:
    """Per-namespace consistency levels with a default."""

    def __init__(self, default: ConsistencyLevel = ConsistencyLevel.STRONG):
        self._default = default
        self._levels: dict[str, ConsistencyLevel] = {}

    def set_level(self, namespace: str, level: ConsistencyLevel | str) -> None:
        if isinstance(level, str):
            level = ConsistencyLevel(level)
        self._levels[namespace] = level

    def level_for(self, namespace: str) -> ConsistencyLevel:
        return self._levels.get(namespace, self._default)

    def as_dict(self) -> dict[str, str]:
        return {namespace: level.value for namespace, level in sorted(self._levels.items())}


class _Replica:
    __slots__ = ("store",)

    def __init__(self):
        # key -> (version, value)
        self.store: dict[Any, tuple[int, Any]] = {}


class ReplicaSet:
    """N replicas of one namespace with level-dependent write/read fan-out."""

    def __init__(self, replicas: int = 3, seed: int = 0):
        if replicas < 1:
            raise ValueError("need at least one replica")
        self._replicas = [_Replica() for _ in range(replicas)]
        self._rng = random.Random(seed)
        self._version = 0
        # pending anti-entropy: list of (replica_index, key, version, value)
        self._pending: list[tuple[int, Any, int, Any]] = []
        self.round_trips = 0

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    def _fanout(self, level: ConsistencyLevel, write: bool) -> int:
        n = len(self._replicas)
        if level is ConsistencyLevel.STRONG:
            return n if write else 1
        if level is ConsistencyLevel.QUORUM:
            return n // 2 + 1
        return 1

    # -- operations -----------------------------------------------------------

    def write(self, key: Any, value: Any, level: ConsistencyLevel) -> int:
        """Write synchronously to the level's quorum; returns round-trips."""
        self._version += 1
        fanout = self._fanout(level, write=True)
        targets = self._rng.sample(range(len(self._replicas)), fanout)
        for index in range(len(self._replicas)):
            if index in targets:
                self._replicas[index].store[key] = (self._version, value)
            else:
                self._pending.append((index, key, self._version, value))
        self.round_trips += fanout
        return fanout

    def read(self, key: Any, level: ConsistencyLevel) -> tuple[Any, int]:
        """Read from the level's quorum; returns (value, round-trips).

        STRONG reads are served by any replica because strong writes hit all
        of them; QUORUM reads overlap the write quorum; EVENTUAL reads one
        random replica and may be stale.
        """
        fanout = self._fanout(level, write=False)
        targets = self._rng.sample(range(len(self._replicas)), fanout)
        best: Optional[tuple[int, Any]] = None
        for index in targets:
            entry = self._replicas[index].store.get(key)
            if entry is not None and (best is None or entry[0] > best[0]):
                best = entry
        self.round_trips += fanout
        return (best[1] if best else None), fanout

    # -- convergence -------------------------------------------------------------

    def tick(self, budget: Optional[int] = None) -> int:
        """Apply up to *budget* pending anti-entropy deliveries (all when
        None); returns how many were applied."""
        if budget is None:
            budget = len(self._pending)
        applied = 0
        while self._pending and applied < budget:
            index, key, version, value = self._pending.pop(0)
            current = self._replicas[index].store.get(key)
            if current is None or current[0] < version:
                self._replicas[index].store[key] = (version, value)
            applied += 1
        return applied

    def staleness(self, key: Any) -> int:
        """Versions the most-behind replica lags for *key* (0 = converged)."""
        versions = [
            replica.store.get(key, (0, None))[0] for replica in self._replicas
        ]
        return max(versions) - min(versions)

    def is_converged(self) -> bool:
        return not self._pending
