"""MVCC transaction manager — cross-model ACID (challenge 6).

The tutorial's strongest argument for multi-model over polyglot persistence
(slides 9 and 23) is that *one* system can "guarantee inter-model data
consistency": a single transaction may touch the customer relation, the
shopping-cart key/value pair, the order document and the social graph, and
either all of it commits or none.  Because every model in this engine writes
through the same central log, that guarantee falls out of one transaction
manager.

Design:

* **Snapshot isolation (default)** — each transaction reads the newest
  version committed at or before its begin timestamp plus its own buffered
  writes; at commit, first-committer-wins write-write conflict detection
  raises :class:`SerializationError`.
* **Serializable** — snapshot machinery plus two-phase locking through
  :class:`repro.txn.locks.LockManager` (S on reads, X on writes), which also
  closes snapshot isolation's write-skew anomaly.
* **Read committed** — reads always see the newest committed version
  (no stable snapshot), writes conflict-checked only against concurrent
  commits to the same key after the *write*, i.e. last-committer-wins is
  prevented but non-repeatable reads are allowed.

Writes are buffered in the transaction's write set and only hit the central
log at commit — so storage views (and therefore every model API and the
query engine) only ever see committed data, and abort is trivial.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.core import datamodel
from repro.errors import (
    InvalidTransactionStateError,
    SerializationError,
)
from repro.fault import registry as fault_registry
from repro.obs import metrics as obs_metrics
from repro.storage.log import CentralLog, LogOp
from repro.txn.locks import LockManager, LockMode

__all__ = ["IsolationLevel", "Transaction", "TransactionManager"]

_TXN_BEGINS = obs_metrics.counter("txn_begins_total")
_TXN_COMMITS = obs_metrics.counter("txn_commits_total")
_TXN_ABORTS = obs_metrics.counter("txn_aborts_total")
_TXN_CONFLICTS = obs_metrics.counter("txn_conflicts_total")
_TXN_ACTIVE = obs_metrics.gauge("txn_active")
_TXN_COMMIT_SECONDS = obs_metrics.histogram("txn_commit_seconds")
_TXN_LOCK_WAIT = obs_metrics.histogram("txn_lock_wait_seconds")

# Failpoint sites bracketing the commit publish: ``begin`` fires after
# validation (nothing published), ``mid_publish`` fires after the data
# records but *before* the COMMIT record (the torn-commit window — recovery
# must discard the transaction), ``end`` fires after the COMMIT record (the
# transaction is durable even though commit() never returned).
_FP_COMMIT_BEGIN = fault_registry.register(
    "txn.commit.begin", "after validation, before any log append"
)
_FP_COMMIT_MID = fault_registry.register(
    "txn.commit.mid_publish", "after data records, before the COMMIT record"
)
_FP_COMMIT_END = fault_registry.register(
    "txn.commit.end", "after the COMMIT record, before commit() returns"
)


def _timed_lock_acquire(locks: LockManager, txn_id: int, resource, mode) -> None:
    """Acquire a lock, charging the wait to the lock-wait histogram."""
    if not obs_metrics.ENABLED:
        locks.acquire(txn_id, resource, mode)
        return
    start = time.perf_counter()
    try:
        locks.acquire(txn_id, resource, mode)
    finally:
        _TXN_LOCK_WAIT.observe(time.perf_counter() - start)


class IsolationLevel(enum.Enum):
    READ_COMMITTED = "read_committed"
    SNAPSHOT = "snapshot"
    SERIALIZABLE = "serializable"


class _TxnStatus(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class _Version:
    """One committed version of a record."""

    commit_ts: int
    value: Any  # None encodes deletion
    txn_id: int


@dataclass
class _PendingWrite:
    op: LogOp
    value: Any
    before: Any


@dataclass
class Transaction:
    """Handle for an open transaction.  Use through the manager (or the
    :class:`repro.core.database.MultiModelDB` session API)."""

    txn_id: int
    begin_ts: int
    isolation: IsolationLevel
    status: _TxnStatus = _TxnStatus.ACTIVE
    writes: dict[tuple[str, Any], _PendingWrite] = field(default_factory=dict)
    read_keys: set[tuple[str, Any]] = field(default_factory=set)

    @property
    def is_active(self) -> bool:
        return self.status is _TxnStatus.ACTIVE


class TransactionManager:
    """Versioned store + commit protocol over a central log."""

    def __init__(self, log: CentralLog, lock_timeout: float = 5.0):
        self._log = log
        self._clock = 0  # logical timestamp: bumped on begin and commit
        self._next_txn_id = 1
        self._versions: dict[tuple[str, Any], list[_Version]] = {}
        self._active: dict[int, Transaction] = {}
        self._locks = LockManager(timeout=lock_timeout)
        self._mutex = threading.RLock()
        self.commits = 0
        self.aborts = 0
        self.conflicts = 0

    # -- lifecycle -------------------------------------------------------------

    def begin(
        self, isolation: IsolationLevel | str = IsolationLevel.SNAPSHOT
    ) -> Transaction:
        if isinstance(isolation, str):
            isolation = IsolationLevel(isolation)
        with self._mutex:
            self._clock += 1
            txn = Transaction(
                txn_id=self._next_txn_id,
                begin_ts=self._clock,
                isolation=isolation,
            )
            self._next_txn_id += 1
            self._active[txn.txn_id] = txn
            if obs_metrics.ENABLED:
                _TXN_BEGINS.inc()
                _TXN_ACTIVE.set(len(self._active))
            return txn

    def commit(self, txn: Transaction) -> None:
        """Validate, assign a commit timestamp, publish to the central log."""
        self._require_active(txn)
        enabled = obs_metrics.ENABLED
        start = time.perf_counter() if enabled else 0.0
        with self._mutex:
            try:
                self._validate(txn)
            except SerializationError:
                self.conflicts += 1
                if enabled:
                    _TXN_CONFLICTS.inc()
                self._finish(txn, _TxnStatus.ABORTED)
                raise
            if _FP_COMMIT_BEGIN.armed:
                _FP_COMMIT_BEGIN.check()
            self._clock += 1
            commit_ts = self._clock
            appended: list[tuple[str, Any]] = []
            try:
                for (namespace, key), write in txn.writes.items():
                    chain = self._versions.setdefault((namespace, key), [])
                    value = None if write.op is LogOp.DELETE else write.value
                    chain.append(_Version(commit_ts, value, txn.txn_id))
                    appended.append((namespace, key))
                    self._log.append(
                        txn.txn_id,
                        write.op,
                        namespace,
                        key,
                        write.value,
                        write.before,
                    )
                if _FP_COMMIT_MID.armed:
                    _FP_COMMIT_MID.check()
                self._log.append(txn.txn_id, LogOp.COMMIT, meta={"ts": commit_ts})
            except BaseException:
                # The publish failed before the COMMIT record reached the
                # log: the transaction did not commit.  Roll back its
                # version-chain entries and finish it as aborted so a
                # recoverable failure (an injected or real I/O error) leaves
                # no dirty versions and no leaked active transaction.
                for chain_key in appended:
                    chain = self._versions.get(chain_key)
                    if (
                        chain
                        and chain[-1].commit_ts == commit_ts
                        and chain[-1].txn_id == txn.txn_id
                    ):
                        chain.pop()
                    if chain is not None and not chain:
                        self._versions.pop(chain_key, None)
                self.aborts += 1
                if enabled:
                    _TXN_ABORTS.inc()
                self._finish(txn, _TxnStatus.ABORTED)
                raise
            self.commits += 1
            self._finish(txn, _TxnStatus.COMMITTED)
            if enabled:
                _TXN_COMMITS.inc()
                _TXN_COMMIT_SECONDS.observe(time.perf_counter() - start)
            # Fires after the COMMIT record: the transaction is durable (and
            # now committed in memory too) even though commit() never
            # returns — the crash-after-commit window.
            if _FP_COMMIT_END.armed:
                _FP_COMMIT_END.check()

    def abort(self, txn: Transaction) -> None:
        self._require_active(txn)
        with self._mutex:
            try:
                if txn.writes:
                    self._log.append(txn.txn_id, LogOp.ABORT)
            finally:
                # Even if the ABORT record cannot be logged (injected or
                # real I/O failure), the in-memory abort must complete:
                # recovery discards uncommitted records with or without it.
                self.aborts += 1
                if obs_metrics.ENABLED:
                    _TXN_ABORTS.inc()
                self._finish(txn, _TxnStatus.ABORTED)

    def _finish(self, txn: Transaction, status: _TxnStatus) -> None:
        txn.status = status
        self._active.pop(txn.txn_id, None)
        self._locks.release_all(txn.txn_id)
        if obs_metrics.ENABLED:
            _TXN_ACTIVE.set(len(self._active))

    def _require_active(self, txn: Transaction) -> None:
        if not txn.is_active:
            raise InvalidTransactionStateError(
                f"transaction {txn.txn_id} is {txn.status.value}"
            )

    # -- reads -------------------------------------------------------------------

    def read(self, txn: Transaction, namespace: str, key: Any) -> Any:
        """Value of (namespace, key) visible to *txn* (None if absent)."""
        self._require_active(txn)
        pending = txn.writes.get((namespace, key))
        if pending is not None:
            return None if pending.op is LogOp.DELETE else pending.value
        if txn.isolation is IsolationLevel.SERIALIZABLE:
            _timed_lock_acquire(
                self._locks, txn.txn_id, (namespace, key), LockMode.SHARED
            )
        txn.read_keys.add((namespace, key))
        with self._mutex:
            return self._visible_value(txn, namespace, key)

    def scan(self, txn: Transaction, namespace: str) -> Iterator[tuple[Any, Any]]:
        """Snapshot-consistent scan of a namespace (committed-visible
        versions merged with the transaction's own writes)."""
        self._require_active(txn)
        with self._mutex:
            keys = {
                key
                for (chain_namespace, key) in self._versions
                if chain_namespace == namespace
            }
            result = {}
            for key in keys:
                value = self._visible_value(txn, namespace, key)
                if value is not None:
                    result[datamodel.hash_value(key)] = (key, value)
        for (write_namespace, key), pending in txn.writes.items():
            if write_namespace != namespace:
                continue
            hashed = datamodel.hash_value(key)
            if pending.op is LogOp.DELETE:
                result.pop(hashed, None)
            else:
                result[hashed] = (key, pending.value)
        return iter(sorted(result.values(), key=lambda kv: datamodel.SortKey(kv[0])))

    def _visible_value(self, txn: Transaction, namespace: str, key: Any) -> Any:
        chain = self._versions.get((namespace, key))
        if not chain:
            return None
        if txn.isolation is IsolationLevel.READ_COMMITTED:
            return chain[-1].value
        visible = None
        for version in chain:
            if version.commit_ts <= txn.begin_ts:
                visible = version
        return visible.value if visible else None

    # -- writes -------------------------------------------------------------------

    def write(
        self,
        txn: Transaction,
        namespace: str,
        key: Any,
        value: Any,
        op: LogOp = LogOp.INSERT,
    ) -> None:
        """Buffer a write (INSERT/UPDATE/DELETE) in the transaction."""
        self._require_active(txn)
        if txn.isolation is IsolationLevel.SERIALIZABLE:
            _timed_lock_acquire(
                self._locks, txn.txn_id, (namespace, key), LockMode.EXCLUSIVE
            )
        before = self.read_committed_latest(namespace, key)
        txn.writes[(namespace, key)] = _PendingWrite(op, value, before)

    def delete(self, txn: Transaction, namespace: str, key: Any) -> None:
        self.write(txn, namespace, key, None, LogOp.DELETE)

    # -- validation ----------------------------------------------------------------

    def _validate(self, txn: Transaction) -> None:
        """First-committer-wins: abort if any written key has a version
        committed after this transaction began."""
        for (namespace, key) in txn.writes:
            chain = self._versions.get((namespace, key), [])
            if chain and chain[-1].commit_ts > txn.begin_ts:
                raise SerializationError(
                    f"write-write conflict on {namespace}:{key!r} "
                    f"(committed at ts {chain[-1].commit_ts} after this "
                    f"transaction began at ts {txn.begin_ts})"
                )

    # -- helpers --------------------------------------------------------------------

    def read_committed_latest(self, namespace: str, key: Any) -> Any:
        chain = self._versions.get((namespace, key))
        return chain[-1].value if chain else None

    def run(self, work, isolation=IsolationLevel.SNAPSHOT, retries: int = 0):
        """Execute ``work(txn)`` in a transaction; commit on success, abort
        on exception.  ``retries`` re-runs on serialization conflicts."""
        attempt = 0
        while True:
            txn = self.begin(isolation)
            try:
                result = work(txn)
            except BaseException:
                if txn.is_active:
                    self.abort(txn)
                raise
            try:
                self.commit(txn)
                return result
            except SerializationError:
                attempt += 1
                if attempt > retries:
                    raise

    def garbage_collect(self) -> int:
        """Drop versions no active transaction can see; returns the count."""
        with self._mutex:
            horizon = min(
                (txn.begin_ts for txn in self._active.values()),
                default=self._clock,
            )
            dropped = 0
            for chain_key, chain in list(self._versions.items()):
                keep_from = 0
                for index in range(len(chain) - 1, -1, -1):
                    if chain[index].commit_ts <= horizon:
                        keep_from = index
                        break
                dropped += keep_from
                del chain[:keep_from]
                if chain and chain[-1].value is None and len(chain) == 1 and chain[0].commit_ts <= horizon:
                    dropped += 1
                    del self._versions[chain_key]
            return dropped

    def drop_namespace(self, namespace: str) -> None:
        """Forget every version chain of *namespace* (DDL path: truncate /
        drop collection).  The caller is responsible for the matching
        DROP_NAMESPACE entry in the central log."""
        with self._mutex:
            for chain_key in [
                chain_key
                for chain_key in self._versions
                if chain_key[0] == namespace
            ]:
                del self._versions[chain_key]

    @property
    def version_count(self) -> int:
        return sum(len(chain) for chain in self._versions.values())

    @property
    def active_count(self) -> int:
        return len(self._active)
