"""Transactions: MVCC, 2PL, and hybrid consistency (challenge 6)."""

from repro.txn.consistency import ConsistencyLevel, ConsistencyPolicy, ReplicaSet
from repro.txn.locks import LockManager, LockMode
from repro.txn.manager import IsolationLevel, Transaction, TransactionManager

__all__ = [
    "ConsistencyLevel",
    "ConsistencyPolicy",
    "ReplicaSet",
    "LockManager",
    "LockMode",
    "IsolationLevel",
    "Transaction",
    "TransactionManager",
]
