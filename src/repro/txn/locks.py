"""Two-phase-locking lock manager with deadlock detection.

Used by the SERIALIZABLE isolation level (challenge 6, slide 97: different
models "may have different requirements on the consistency models" — the
engine offers lock-based serializability where snapshot isolation is not
enough, e.g. for relational balance checks in UniBench Workload C).

Locks are shared/exclusive on arbitrary hashable resources (we lock
``(namespace, key)`` pairs and whole namespaces).  Blocking acquires wait on
a condition variable; before waiting, a waits-for graph cycle check runs and
the *requesting* transaction is killed with :class:`DeadlockError` if it
would close a cycle (wound-wait flavoured: the newcomer dies, so running
transactions finish).
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict
from typing import Hashable

from repro.errors import DeadlockError, LockTimeoutError

__all__ = ["LockMode", "LockManager"]


class LockMode:
    SHARED = "S"
    EXCLUSIVE = "X"


class _LockState:
    __slots__ = ("holders", "mode")

    def __init__(self):
        self.holders: set[int] = set()
        self.mode: str | None = None  # None when free


class LockManager:
    """Thread-safe S/X lock table keyed by resource."""

    def __init__(self, timeout: float = 5.0):
        self._timeout = timeout
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._table: dict[Hashable, _LockState] = defaultdict(_LockState)
        # waits_for[txn] = set of txns it currently waits on
        self._waits_for: dict[int, set[int]] = defaultdict(set)
        self._held: dict[int, set[Hashable]] = defaultdict(set)

    # -- acquisition --------------------------------------------------------

    def acquire(self, txn_id: int, resource: Hashable, mode: str) -> None:
        """Acquire (or upgrade to) *mode* on *resource* for *txn_id*.

        Raises :class:`DeadlockError` when waiting would close a cycle and
        :class:`LockTimeoutError` when the wait exceeds the budget.
        """
        if mode not in (LockMode.SHARED, LockMode.EXCLUSIVE):
            raise ValueError(f"bad lock mode {mode!r}")
        with self._condition:
            deadline = time.monotonic() + self._timeout
            while True:
                state = self._table[resource]
                if self._compatible(state, txn_id, mode):
                    state.holders.add(txn_id)
                    state.mode = self._resulting_mode(state, mode)
                    self._held[txn_id].add(resource)
                    self._waits_for.pop(txn_id, None)
                    return
                blockers = state.holders - {txn_id}
                self._waits_for[txn_id] = set(blockers)
                if self._closes_cycle(txn_id):
                    self._waits_for.pop(txn_id, None)
                    raise DeadlockError(
                        f"transaction {txn_id} would deadlock waiting for "
                        f"{sorted(blockers)} on {resource!r}"
                    )
                self._condition.wait(timeout=0.05)
                if time.monotonic() > deadline:
                    self._waits_for.pop(txn_id, None)
                    raise LockTimeoutError(
                        f"transaction {txn_id} timed out waiting for "
                        f"{resource!r} (mode {mode})"
                    )

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by *txn_id* (end of its second phase)."""
        with self._condition:
            for resource in self._held.pop(txn_id, set()):
                state = self._table.get(resource)
                if state is None:
                    continue
                state.holders.discard(txn_id)
                if not state.holders:
                    state.mode = None
                    self._table.pop(resource, None)
                elif state.mode == LockMode.EXCLUSIVE:
                    # The exclusive holder left; remaining holders (if any)
                    # must have been the same txn, so this cannot happen —
                    # but keep the invariant tight.
                    state.mode = LockMode.SHARED
            self._waits_for.pop(txn_id, None)
            self._condition.notify_all()

    # -- introspection ---------------------------------------------------------

    def holds(self, txn_id: int, resource: Hashable) -> bool:
        with self._lock:
            state = self._table.get(resource)
            return bool(state and txn_id in state.holders)

    def held_resources(self, txn_id: int) -> set:
        with self._lock:
            return set(self._held.get(txn_id, set()))

    # -- internals --------------------------------------------------------------

    @staticmethod
    def _compatible(state: _LockState, txn_id: int, mode: str) -> bool:
        if not state.holders:
            return True
        if state.holders == {txn_id}:
            return True  # re-entrant and upgrade
        if mode == LockMode.SHARED and state.mode == LockMode.SHARED:
            return True
        return False

    @staticmethod
    def _resulting_mode(state: _LockState, mode: str) -> str:
        if state.mode == LockMode.EXCLUSIVE or mode == LockMode.EXCLUSIVE:
            return LockMode.EXCLUSIVE
        return LockMode.SHARED

    def _closes_cycle(self, start: int) -> bool:
        """DFS over the waits-for graph looking for a path back to *start*."""
        stack = list(self._waits_for.get(start, ()))
        seen = set()
        while stack:
            current = stack.pop()
            if current == start:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._waits_for.get(current, ()))
        return False
