"""Sharded cluster tier: hash-partitioned shards, scatter-gather MMQL.

The paper's "what's next" list puts *distributed multi-model processing*
front and center: once a workload spans relational, document, graph and
key/value data, partitioning it across nodes has to respect how the
models join, not just how the bytes split.  This package is that tier
for the repro engine:

* :mod:`~repro.cluster.shardmap` — versioned topology + per-store
  placements (``hash`` with a declared partition key, or ``reference``
  replicated everywhere), with a stability-pinned partition hash.
* :mod:`~repro.cluster.coordinator` — plans one MMQL statement into
  per-shard statements plus a merge (k-way sorted merge, partial
  aggregate combine, global DISTINCT), cutting the pipeline where the
  placement cannot localize a join.
* :mod:`~repro.cluster.client` — ``ClusterClient``: ReproClient-shaped
  facade composing one :class:`~repro.replication.router.ReplicaSet`
  per shard over the wire protocol, with SHARD_MAP_STALE refetch.
* :mod:`~repro.cluster.bootstrap` — sharded UniBench provisioning and
  the in-process ``start_cluster`` harness tests/chaos/CI share.
"""

from repro.cluster.bootstrap import (
    ClusterHandle,
    load_sharded_unibench,
    make_demo_shard_map,
    start_cluster,
)
from repro.cluster.client import ClusterClient
from repro.cluster.coordinator import ClusterPlan, ClusterResult, Coordinator
from repro.cluster.shardmap import (
    ShardEntry,
    ShardMap,
    StorePlacement,
    demo_placements,
    partition_hash,
)

__all__ = [
    "ClusterClient",
    "ClusterHandle",
    "ClusterPlan",
    "ClusterResult",
    "Coordinator",
    "ShardEntry",
    "ShardMap",
    "StorePlacement",
    "demo_placements",
    "load_sharded_unibench",
    "make_demo_shard_map",
    "partition_hash",
    "start_cluster",
]
