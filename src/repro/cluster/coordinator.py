"""The scatter-gather MMQL coordinator.

The coordinator turns one MMQL statement into per-shard statements plus a
merge step, using only information that is *static* per query: the shard
map's placements and the statement's AST.  The planning model:

* Every frame produced while executing a pipeline is **located**: it
  exists on exactly one shard (because some hash-partitioned FOR bound a
  row that lives there) or on every shard identically (reference data and
  broadcast frames).  A query segment is shippable to all shards when
  every hash-store access inside it is **aligned** — reachable from the
  segment's anchor partition value through equality predicates — so that
  each shard computes exactly the assignments whose located rows it owns.
* When an access is *not* aligned (Q1's ``FOR o IN orders FILTER
  o.Order_no == order_no``), the pipeline is **cut**: the prefix runs
  scattered, the coordinator gathers the surviving variable frames, and
  the suffix is broadcast to every shard as ``FOR __cluster_f IN
  @__cluster_frames …`` — the unaligned FOR localizes again because each
  matching row exists on one shard only.
* A terminal COLLECT in a multi-shard segment is split: shards compute
  partial aggregates (the PR 7 accumulator shapes: count/sum fold by
  addition, min/max by comparison, avg ships ``[sum, count]`` as two SUM
  partials), the coordinator combines groups, and any post-COLLECT
  operations are evaluated locally with the real executor over the
  combined groups.
* A terminal SORT in a multi-shard segment becomes a k-way heap merge on
  the shipped sort keys; ``RETURN DISTINCT`` de-duplicates globally with
  the executor's own group-token canonicalization.

Single-shard fast path: when the anchor store's partition key is bound by
an equality predicate to a literal or bind parameter, the whole statement
routes to the owning shard (``fan_out=1``).  DML routes to the owning
shard when the partition value is statically evaluable, broadcasts
otherwise (UPDATE/REMOVE/REPLACE are self-locating: a shard that does not
hold the key no-ops).

Statements the placement model cannot execute correctly raise
:class:`~repro.errors.ClusterUnsupportedError` — an honest refusal
instead of a silently partial answer.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import (
    ClusterError,
    ClusterUnsupportedError,
    ReproError,
    ShardMapStaleError,
    ShardUnavailableError,
)
from repro.obs import metrics as obs_metrics
from repro.query import ast
from repro.query.executor import _group_token
from repro.query.optimizer import optimize
from repro.query.parser import parse
from repro.query.unparse import unparse, unparse_expr
from repro.core.datamodel import compare

from repro.cluster.shardmap import ShardMap

__all__ = ["Coordinator", "ClusterPlan", "SegmentPlan", "ClusterResult"]

#: Reserved identifier prefix for coordinator-generated variables.
_PREFIX = "__cluster_"

#: Functions whose first argument names a store (a string literal in
#: every supported plan); maps function → the store kind family used for
#: placement checks.
_STORE_FUNCS = {
    "DOCUMENT": "keyed",
    "KV_GET": "kv",
    "KV_KEYS": "kv_all",
    "NEIGHBORS": "graph",
    "TRAVERSE": "graph",
    "SHORTEST_PATH": "graph",
    "EDGES": "graph",
    "XPATH": "tree",
    "RDF_MATCH": "triple",
    "GEO_WINDOW": "spatial",
    "GEO_NEAREST": "spatial",
}

#: Aggregate functions with a distributive/algebraic partial form.
_SPLITTABLE_AGGS = ("COUNT", "LENGTH", "SUM", "MIN", "MAX", "AVG")

_WRITE_NODES = (
    ast.InsertOp,
    ast.UpdateOp,
    ast.RemoveOp,
    ast.ReplaceOp,
    ast.UpsertOp,
)

obs_metrics.describe(
    "cluster_fanout_queries_total",
    "Statements the coordinator scattered to more than one shard",
)
obs_metrics.describe(
    "cluster_single_shard_queries_total",
    "Statements the coordinator routed to exactly one shard",
)
obs_metrics.describe(
    "cluster_merge_rows_total",
    "Rows that flowed through the coordinator's merge stage",
)
obs_metrics.describe(
    "cluster_shard_errors_total",
    "Per-shard failures observed during scatter-gather",
)


# ---------------------------------------------------------------------------
# Plan data model
# ---------------------------------------------------------------------------


@dataclass
class SegmentPlan:
    """One shippable slice of the pipeline."""

    ops: list
    multi: bool  # scatter to every shard vs. one shard
    pinned: Optional[int] = None  # single-shard target when known
    anchor_var: Optional[str] = None
    input_vars: list = field(default_factory=list)
    output_vars: Optional[list] = None  # None = final segment
    statement: Optional[str] = None  # rendered shard-side MMQL
    merge: dict = field(default_factory=dict)

    @property
    def final(self) -> bool:
        return self.output_vars is None


@dataclass
class ClusterPlan:
    """What the coordinator decided for one statement."""

    kind: str  # "read" | "dml"
    strategy: str
    segments: list = field(default_factory=list)
    dml: Optional[dict] = None
    fan_out: int = 1

    def describe(self, shard_map: ShardMap) -> str:
        lines = [
            f"cluster plan [strategy={self.strategy} fan_out={self.fan_out} "
            f"shards={shard_map.num_shards} map_version={shard_map.version}]"
        ]
        if self.dml is not None:
            target = self.dml.get("shard")
            where = (
                f"shard {target}" if target is not None
                else f"all {shard_map.num_shards} shards"
            )
            lines.append(f"  dml → {where}: {self.dml['statement']}")
            return "\n".join(lines)
        for index, segment in enumerate(self.segments):
            if segment.multi:
                where = f"scatter({shard_map.num_shards})"
            elif segment.pinned is not None:
                where = f"shard {segment.pinned}"
            else:
                where = "any single shard"
            merge = segment.merge.get("kind", "rows")
            lines.append(f"  segment {index} [{where} merge={merge}]")
            lines.append(f"    {segment.statement}")
            post = segment.merge.get("post_ops")
            if post:
                rendered = " ".join(
                    _operation_text(op) for op in post
                )
                lines.append(f"    coordinator: {rendered}")
        return "\n".join(lines)


def _operation_text(op) -> str:
    from repro.query.unparse import _operation

    return _operation(op)


class ClusterResult:
    """Result of a coordinated statement — quacks like the client's
    :class:`~repro.client.client.ResultCursor` (``rows``, ``stats``,
    ``analyzed``, ``fetch_all``)."""

    def __init__(self, rows, stats, analyzed=None, trace=None):
        self.rows = rows
        self.stats = stats
        self.analyzed = analyzed
        self.trace = trace

    def fetch_all(self) -> list:
        return self.rows

    def __iter__(self):
        return iter(self.rows)


# ---------------------------------------------------------------------------
# AST helpers
# ---------------------------------------------------------------------------


def _conjuncts(condition) -> list:
    if isinstance(condition, ast.BinOp) and condition.op == "AND":
        return _conjuncts(condition.left) + _conjuncts(condition.right)
    return [condition]


def _static_value(expr, binds: dict):
    """Evaluate an expression without a database; returns ``(ok, value)``."""
    if isinstance(expr, ast.Literal):
        return True, expr.value
    if isinstance(expr, ast.BindVar):
        if binds is not None and expr.name in binds:
            return True, binds[expr.name]
        return False, None
    if isinstance(expr, ast.ObjectLiteral):
        out = {}
        for key, value in expr.items:
            ok, evaluated = _static_value(value, binds)
            if not ok:
                return False, None
            out[key] = evaluated
        return True, out
    if isinstance(expr, ast.ArrayLiteral):
        out = []
        for item in expr.items:
            ok, evaluated = _static_value(item, binds)
            if not ok:
                return False, None
            out.append(evaluated)
        return True, out
    return False, None


def _walk_exprs(node):
    """Every expression hanging off one operation (not recursing into
    subquery *operations* — callers handle SubQuery explicitly)."""
    if isinstance(node, ast.ForOp):
        yield node.source
    elif isinstance(node, (ast.TraversalOp,)):
        yield node.start
    elif isinstance(node, ast.ShortestPathOp):
        yield node.start
        yield node.goal
    elif isinstance(node, ast.FilterOp):
        yield node.condition
    elif isinstance(node, ast.LetOp):
        yield node.value
    elif isinstance(node, ast.SortOp):
        for key in node.keys:
            yield key.expr
    elif isinstance(node, ast.CollectOp):
        for _name, expr in node.groups:
            yield expr
        for _name, _func, arg in node.aggregates:
            yield arg
    elif isinstance(node, ast.ReturnOp):
        yield node.expr
    elif isinstance(node, ast.InsertOp):
        yield node.document
    elif isinstance(node, ast.UpdateOp):
        yield node.key
        yield node.changes
    elif isinstance(node, ast.RemoveOp):
        yield node.key
    elif isinstance(node, ast.ReplaceOp):
        yield node.key
        yield node.document
    elif isinstance(node, ast.UpsertOp):
        yield node.search
        yield node.insert_doc
        yield node.update_patch


def _subexprs(expr):
    """The expression and every nested expression, subqueries excluded
    (yielded as :class:`ast.SubQuery` nodes for the caller to recurse)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        yield node
        if isinstance(node, ast.SubQuery):
            continue  # caller recurses with scope rules
        if isinstance(node, (ast.AttrAccess, ast.Expansion, ast.InlineFilter)):
            stack.append(node.subject)
            if isinstance(node, ast.Expansion) and node.suffix is not None:
                stack.append(node.suffix)
            if isinstance(node, ast.InlineFilter):
                stack.append(node.condition)
        elif isinstance(node, ast.IndexAccess):
            stack.extend((node.subject, node.index))
        elif isinstance(node, ast.FuncCall):
            stack.extend(node.args)
        elif isinstance(node, ast.UnaryOp):
            stack.append(node.operand)
        elif isinstance(node, ast.BinOp):
            stack.extend((node.left, node.right))
        elif isinstance(node, ast.RangeExpr):
            stack.extend((node.low, node.high))
        elif isinstance(node, ast.ArrayLiteral):
            stack.extend(node.items)
        elif isinstance(node, ast.ObjectLiteral):
            stack.extend(value for _key, value in node.items)
        elif isinstance(node, ast.Ternary):
            stack.extend((node.condition, node.then, node.otherwise))


def _deep_exprs(ops):
    """Every expression node under *ops*, subquery bodies included."""
    pending = list(ops)
    while pending:
        op = pending.pop()
        for expr in _walk_exprs(op):
            for node in _subexprs(expr):
                yield node
                if isinstance(node, ast.SubQuery):
                    pending.extend(node.query.operations)


def _rewrite_tree(node, table):
    """Structurally replace expressions: any subtree equal to a *table*
    key becomes its value.  Frozen dataclasses make equality the exact
    match predicate; untouched branches are returned as-is."""
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        for old, new in table:
            if node == old:
                return new
        changes = {}
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            rewritten = _rewrite_tree(value, table)
            if rewritten is not value:
                changes[field.name] = rewritten
        return dataclasses.replace(node, **changes) if changes else node
    if isinstance(node, tuple):
        rewritten = tuple(_rewrite_tree(item, table) for item in node)
        return rewritten if rewritten != node else node
    if isinstance(node, list):
        rewritten = [_rewrite_tree(item, table) for item in node]
        return rewritten if rewritten != node else node
    return node


def _member_arg(suffix, frame_vars: set):
    """Turn an expansion suffix over INTO-member frames (``$CURRENT.o.
    total``) into the per-row expression a shard can aggregate *before*
    shipping (``o.total``) — the member frame's fields are exactly the
    variables bound upstream of the COLLECT.  Returns None when the
    suffix cannot be localized (nested element scopes, bare ``$CURRENT``,
    unknown frame fields)."""
    if suffix is None:
        return None
    for node in _subexprs(suffix):
        if isinstance(node, (ast.Expansion, ast.InlineFilter, ast.SubQuery)):
            return None  # inner scopes rebind $CURRENT
    roots = [
        node
        for node in _subexprs(suffix)
        if isinstance(node, ast.AttrAccess)
        and node.subject == ast.VarRef("$CURRENT")
    ]
    if not roots or any(
        root.attribute not in frame_vars for root in roots
    ):
        return None
    member = _rewrite_tree(
        suffix, [(root, ast.VarRef(root.attribute)) for root in roots]
    )
    if any(
        isinstance(node, ast.VarRef) and node.name == "$CURRENT"
        for node in _subexprs(member)
    ):
        return None
    return member


def _bound_vars(op) -> list:
    if isinstance(op, ast.ForOp):
        return [op.var]
    if isinstance(op, ast.TraversalOp):
        return [op.var] + ([op.edge_var] if op.edge_var else [])
    if isinstance(op, ast.ShortestPathOp):
        return [op.var]
    if isinstance(op, ast.LetOp):
        return [op.var]
    if isinstance(op, ast.CollectOp):
        names = [name for name, _expr in op.groups]
        names += [name for name, _func, _arg in op.aggregates]
        if op.count_into:
            names.append(op.count_into)
        if op.into:
            names.append(op.into)
        return names
    return []


def _free_vars_expr(expr, bound: set, out: set) -> None:
    for node in _subexprs(expr):
        if isinstance(node, ast.VarRef):
            if node.name not in bound and node.name != "$CURRENT":
                out.add(node.name)
        elif isinstance(node, ast.SubQuery):
            _free_vars_ops(node.query.operations, set(bound), out)


def _free_vars_ops(ops, bound: set, out: set) -> None:
    for op in ops:
        if isinstance(op, ast.ForOp):
            # The source may be a store name rather than a variable; a
            # store name is never "free" — the shard resolves it.
            if not isinstance(op.source, ast.VarRef):
                _free_vars_expr(op.source, bound, out)
            bound.add(op.var)
            continue
        for expr in _walk_exprs(op):
            _free_vars_expr(expr, bound, out)
        bound.update(_bound_vars(op))


def _free_vars(ops, bound_candidates: list) -> list:
    """Which of *bound_candidates* do *ops* actually consume?  ForOp
    sources get special treatment: a VarRef source counts as a use when
    it names a candidate (array loop over an earlier variable)."""
    used: set = set()
    bound: set = set()
    for op in ops:
        if isinstance(op, ast.ForOp) and isinstance(op.source, ast.VarRef):
            if op.source.name not in bound:
                used.add(op.source.name)
            bound.add(op.var)
            continue
        for expr in _walk_exprs(op):
            _free_vars_expr(expr, bound, used)
        bound.update(_bound_vars(op))
    return [name for name in bound_candidates if name in used]


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------


class Coordinator:
    """Plans and executes MMQL statements against a sharded topology.

    Transport-agnostic: ``execute`` takes a *runner* callable
    ``runner(shard_id, text, bind_vars, analyze, consistency, trace) ->
    (rows, stats, analyzed)`` — the :class:`ClusterClient` supplies one
    backed by per-shard replica sets over the wire protocol."""

    def __init__(self, shard_map: ShardMap):
        self.shard_map = shard_map
        self._rr = 0
        self._rr_lock = threading.Lock()
        self._local_db = None  # lazily-created store-free evaluator
        self._pool = None  # lazily-created scatter thread pool
        self._pool_lock = threading.Lock()

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None

    # -- planning --------------------------------------------------------

    def plan(self, text: str, bind_vars: Optional[dict] = None) -> ClusterPlan:
        query = parse(text)
        binds = bind_vars or {}
        terminal = query.operations[-1] if query.operations else None
        if isinstance(terminal, _WRITE_NODES):
            return self._plan_dml(query, binds)
        if any(
            self._contains_write_subquery(op) for op in query.operations
        ):
            raise ClusterUnsupportedError(
                "writes inside subqueries cannot be routed across shards"
            )
        # Coordinator-side rewrite: only the *ast-safe* rules run here
        # (constant folding, predicate split, filter pushdown) — they emit
        # pure AST that unparses back to MMQL text for the shards.
        # Physical rules (index selection, decorrelation, hash joins) fire
        # shard-locally where the indexes live.
        query = optimize(query, None, ast_only=True)
        return self._plan_read(query, binds)

    def _contains_write_subquery(self, op) -> bool:
        for expr in _walk_exprs(op):
            for node in _subexprs(expr):
                if isinstance(node, ast.SubQuery):
                    sub_ops = node.query.operations
                    if any(isinstance(o, _WRITE_NODES) for o in sub_ops):
                        return True
                    if any(
                        self._contains_write_subquery(o) for o in sub_ops
                    ):
                        return True
        return False

    # .. read planning ...................................................

    def _plan_read(self, query: ast.Query, binds: dict) -> ClusterPlan:
        segments = self._segment(query.operations, binds)
        self._render_segments(segments, binds)
        multi_any = any(segment.multi for segment in segments)
        fan_out = self.shard_map.num_shards if multi_any else 1
        if len(segments) == 1 and segments[0].pinned is not None:
            strategy = "single_shard"
        elif not multi_any:
            strategy = "reference"
        elif len(segments) == 1:
            strategy = "scatter"
        else:
            strategy = "multi_segment"
        return ClusterPlan(
            kind="read",
            strategy=strategy,
            segments=segments,
            fan_out=fan_out,
        )

    def _segment(self, ops: list, binds: dict) -> list:
        """Split the pipeline at unaligned hash-store FORs."""
        segments: list[SegmentPlan] = []
        current: list = []
        anchor: Optional[list] = None  # exprs equal to the partition value
        anchor_var: Optional[str] = None
        multi = False
        pinned: set = set()
        bound: set = set()

        def close() -> None:
            nonlocal current, anchor, anchor_var, multi, pinned
            segment = SegmentPlan(
                ops=current,
                multi=multi,
                pinned=self._pin(pinned) if not multi else None,
                anchor_var=anchor_var,
            )
            segments.append(segment)
            current = []
            anchor = None
            anchor_var = None
            multi = False
            pinned = set()

        index = 0
        while index < len(ops):
            op = ops[index]
            if isinstance(op, ast.ForOp) and self._store_of(op, bound):
                store = op.source.name
                placement = self.shard_map.placement(store)
                if placement.mode == "hash":
                    partition_attr = ast.AttrAccess(
                        ast.VarRef(op.var), placement.partition_key
                    )
                    if anchor is None:
                        anchor = [partition_attr]
                        anchor_var = op.var
                        multi = True
                    elif self._aligned_ahead(
                        partition_attr, anchor, ops[index + 1:]
                    ):
                        anchor.append(partition_attr)
                    else:
                        # Cut: gather frames, broadcast the suffix.
                        close()
                        anchor = [partition_attr]
                        anchor_var = op.var
                        multi = True
                bound.add(op.var)
                current.append(op)
                index += 1
                continue
            if isinstance(op, (ast.TraversalOp, ast.ShortestPathOp)):
                if self.shard_map.is_hashed(op.graph):
                    raise ClusterUnsupportedError(
                        f"graph {op.graph!r} is hash-partitioned; "
                        "traversals need a reference placement"
                    )
            if isinstance(op, ast.CollectOp) and multi:
                # Merge point: partials on the shards, combine + evaluate
                # the (store-free) remainder at the coordinator.
                post_ops = ops[index + 1:]
                self._require_store_free(
                    post_ops, bound | set(_bound_vars(op))
                )
                current.append(op)
                segment = SegmentPlan(
                    ops=current,
                    multi=True,
                    anchor_var=anchor_var,
                )
                segment.merge = {"kind": "collect", "post_ops": post_ops}
                segments.append(segment)
                return self._finish_segments(segments, ops)
            # Expression-level store accesses (DOCUMENT/KV_GET/…).
            for expr in _walk_exprs(op):
                self._check_expr(expr, anchor, binds, pinned, bound, multi)
            if isinstance(op, ast.LetOp) and anchor is not None:
                if any(op.value == known for known in anchor):
                    anchor.append(ast.VarRef(op.var))
            if isinstance(op, ast.FilterOp) and anchor is not None:
                for conjunct in _conjuncts(op.condition):
                    if (
                        isinstance(conjunct, ast.BinOp)
                        and conjunct.op == "=="
                    ):
                        for left, right in (
                            (conjunct.left, conjunct.right),
                            (conjunct.right, conjunct.left),
                        ):
                            if any(right == known for known in anchor) and not any(
                                left == known for known in anchor
                            ):
                                anchor.append(left)
            if isinstance(op, ast.LimitOp) and multi:
                tail = ops[index + 1:]
                if not all(isinstance(o, ast.ReturnOp) for o in tail):
                    raise ClusterUnsupportedError(
                        "LIMIT before further pipeline stages cannot be "
                        "applied per shard; move it to the end of the query"
                    )
            bound.update(_bound_vars(op))
            current.append(op)
            index += 1
        segment = SegmentPlan(
            ops=current,
            multi=multi,
            pinned=self._pin(pinned) if not multi else None,
            anchor_var=anchor_var,
        )
        segments.append(segment)
        return self._finish_segments(segments, ops)

    def _finish_segments(self, segments: list, ops: list) -> list:
        """Assign fast-path pins and inter-segment frame variables."""
        # Single-shard fast path: the anchor partition key is bound by a
        # top-level equality to a static value.
        if len(segments) == 1 and segments[0].multi:
            segments[0].pinned = None  # resolved during render with binds
        # Live variables across each cut: a variable reaches segment k+1
        # only through segment k's output frames, so the candidates are
        # the segment's own bindings plus whatever was shipped into it.
        for position, segment in enumerate(segments[:-1]):
            later_ops: list = []
            for later in segments[position + 1:]:
                later_ops.extend(later.ops)
                post = later.merge.get("post_ops")
                if post:
                    later_ops.extend(post)
            candidates: list = list(segment.input_vars)
            for op in segment.ops:
                for name in _bound_vars(op):
                    if name not in candidates:
                        candidates.append(name)
            live = _free_vars(later_ops, candidates)
            segment.output_vars = live
            segments[position + 1].input_vars = live
        return segments

    def _pin(self, pinned: set) -> Optional[int]:
        if not pinned:
            return None
        if len(pinned) > 1:
            raise ClusterUnsupportedError(
                "statement pins keys on different shards; split it or "
                "use a scatter-friendly predicate"
            )
        return next(iter(pinned))

    def _store_of(self, op: ast.ForOp, bound: set) -> bool:
        return (
            isinstance(op.source, ast.VarRef)
            and op.source.name not in bound
        )

    def _aligned_ahead(self, partition_attr, anchor, ops_ahead) -> bool:
        """Is there an unconditional equality linking *partition_attr* to
        the anchor set in the ops ahead (before the pipeline re-shapes)?"""
        known = list(anchor)
        for op in ops_ahead:
            if isinstance(op, ast.FilterOp):
                for conjunct in _conjuncts(op.condition):
                    if (
                        isinstance(conjunct, ast.BinOp)
                        and conjunct.op == "=="
                    ):
                        sides = (conjunct.left, conjunct.right)
                        for one, other in (sides, sides[::-1]):
                            if one == partition_attr and any(
                                other == expr for expr in known
                            ):
                                return True
            elif isinstance(op, (ast.CollectOp, ast.LimitOp)):
                return False
        return False

    def _check_expr(
        self, expr, anchor, binds, pinned: set, bound: set, multi: bool
    ) -> None:
        for node in _subexprs(expr):
            if isinstance(node, ast.SubQuery):
                self._check_subquery(node.query, anchor, binds, pinned, bound)
            elif isinstance(node, ast.FuncCall):
                self._check_store_func(node, anchor, binds, pinned)

    def _check_store_func(self, node, anchor, binds, pinned: set) -> None:
        if node.name == "FULLTEXT":
            raise ClusterUnsupportedError(
                "FULLTEXT cannot be routed (the coordinator cannot map an "
                "index name to a store placement); run it per shard"
            )
        family = _STORE_FUNCS.get(node.name)
        if family is None or not node.args:
            return
        store_arg = node.args[0]
        if not isinstance(store_arg, ast.Literal) or not isinstance(
            store_arg.value, str
        ):
            raise ClusterUnsupportedError(
                f"{node.name} needs a literal store name under a cluster"
            )
        store = store_arg.value
        placement = self.shard_map.placement(store)
        if placement.mode != "hash":
            return
        if family in ("graph", "tree", "triple", "spatial", "kv_all"):
            raise ClusterUnsupportedError(
                f"{node.name} on hash-partitioned store {store!r} needs a "
                "global view; declare it as a reference store"
            )
        # Point lookups route by the store's *primary* key; that only
        # determines a shard when it doubles as the partition key (KV
        # buckets partition on the key itself, so they always qualify).
        if family == "keyed" and not placement.key_routable:
            raise ClusterUnsupportedError(
                f"{node.name} on {store!r} looks up by "
                f"{placement.primary_key or '_key'!r} but the store is "
                f"partitioned by {placement.partition_key!r}; the owner "
                "shard cannot be derived from the lookup key"
            )
        key_expr = node.args[1] if len(node.args) > 1 else None
        if key_expr is not None and anchor is not None and any(
            key_expr == known for known in anchor
        ):
            return  # aligned: the frame already lives on the owner shard
        if key_expr is not None:
            ok, value = _static_value(key_expr, binds)
            if ok:
                pinned.add(self.shard_map.owner(store, value))
                return
        raise ClusterUnsupportedError(
            f"{node.name}({store!r}, …) key is neither aligned with the "
            "segment's partition value nor statically evaluable"
        )

    def _check_subquery(self, query, anchor, binds, pinned: set, bound) -> None:
        """Subqueries run per frame on the frame's shard: hash FORs inside
        must align with the enclosing anchor (cuts are impossible here)."""
        local_anchor = list(anchor) if anchor else None
        local_bound = set(bound)
        ops = query.operations
        for index, op in enumerate(ops):
            if isinstance(op, ast.ForOp) and self._store_of(op, local_bound):
                store = op.source.name
                placement = self.shard_map.placement(store)
                if placement.mode == "hash":
                    partition_attr = ast.AttrAccess(
                        ast.VarRef(op.var), placement.partition_key
                    )
                    if local_anchor is None or not self._aligned_ahead(
                        partition_attr, local_anchor, ops[index + 1:]
                    ):
                        raise ClusterUnsupportedError(
                            f"subquery over hash-partitioned {store!r} is "
                            "not aligned with the enclosing partition value"
                        )
                    local_anchor.append(partition_attr)
                local_bound.add(op.var)
                continue
            if isinstance(op, (ast.TraversalOp, ast.ShortestPathOp)):
                if self.shard_map.is_hashed(op.graph):
                    raise ClusterUnsupportedError(
                        f"graph {op.graph!r} is hash-partitioned; "
                        "traversals need a reference placement"
                    )
            for expr in _walk_exprs(op):
                self._check_expr(
                    expr, local_anchor, binds, pinned, local_bound, False
                )
            if isinstance(op, ast.LetOp) and local_anchor is not None:
                if any(op.value == known for known in local_anchor):
                    local_anchor.append(ast.VarRef(op.var))
            local_bound.update(_bound_vars(op))

    def _require_store_free(self, ops, bound: set) -> None:
        local_bound = set(bound)
        for op in ops:
            if isinstance(op, ast.ForOp) and self._store_of(op, local_bound):
                raise ClusterUnsupportedError(
                    "pipeline stages after a distributed COLLECT must not "
                    "touch stores"
                )
            if isinstance(op, (ast.TraversalOp, ast.ShortestPathOp)):
                raise ClusterUnsupportedError(
                    "pipeline stages after a distributed COLLECT must not "
                    "touch stores"
                )
            for expr in _walk_exprs(op):
                for node in _subexprs(expr):
                    if isinstance(node, ast.FuncCall) and node.name in (
                        set(_STORE_FUNCS) | {"FULLTEXT"}
                    ):
                        raise ClusterUnsupportedError(
                            "pipeline stages after a distributed COLLECT "
                            "must not touch stores"
                        )
                    if isinstance(node, ast.SubQuery):
                        self._require_store_free(
                            node.query.operations, local_bound
                        )
            local_bound.update(_bound_vars(op))

    # .. rendering .......................................................

    def _render_segments(self, segments: list, binds: dict) -> None:
        for segment in segments:
            prefix = self._input_prefix(segment)
            if not segment.final:
                wrapper = ast.ReturnOp(
                    ast.ObjectLiteral(
                        tuple(
                            (name, ast.VarRef(name))
                            for name in segment.output_vars
                        )
                    ),
                    distinct=False,
                )
                segment.statement = unparse(
                    ast.Query(prefix + segment.ops + [wrapper])
                )
                segment.merge = {"kind": "frames"}
                continue
            self._render_final(segment, prefix, binds)

    def _input_prefix(self, segment: SegmentPlan) -> list:
        if not segment.input_vars:
            return []
        frame_var = _PREFIX + "f"
        prefix: list = [
            ast.ForOp(frame_var, ast.BindVar(_PREFIX + "frames"))
        ]
        prefix += [
            ast.LetOp(name, ast.AttrAccess(ast.VarRef(frame_var), name))
            for name in segment.input_vars
        ]
        return prefix

    def _render_final(self, segment, prefix, binds) -> None:
        ops = segment.ops
        if not segment.multi:
            segment.statement = unparse(ast.Query(prefix + ops))
            segment.merge = {"kind": "rows"}
            return
        # Fast path: anchored scatter whose partition key is statically
        # equality-bound routes to the owner and ships verbatim.
        pinned = self._fast_path_shard(segment, binds)
        if pinned is not None:
            segment.multi = False
            segment.pinned = pinned
            segment.statement = unparse(ast.Query(prefix + ops))
            segment.merge = {"kind": "rows"}
            return
        if segment.merge.get("kind") == "collect":
            self._render_collect(segment, prefix)
            return
        # Tail analysis: [SORT] [LIMIT] RETURN.
        terminal = ops[-1] if ops else None
        if not isinstance(terminal, ast.ReturnOp):
            # Headless pipeline (no RETURN): nothing to merge.
            segment.statement = unparse(ast.Query(prefix + ops))
            segment.merge = {"kind": "concat", "headless": True}
            return
        body = ops[:-1]
        limit: Optional[ast.LimitOp] = None
        sort: Optional[ast.SortOp] = None
        if body and isinstance(body[-1], ast.LimitOp):
            limit = body[-1]
            body = body[:-1]
        if body and isinstance(body[-1], ast.SortOp):
            sort = body[-1]
            body = body[:-1]
        if sort is not None:
            shard_ops = list(body) + [sort]
            if limit is not None:
                shard_ops.append(ast.LimitOp(0, limit.offset + limit.count))
            wrapper = ast.ReturnOp(
                ast.ObjectLiteral(
                    (
                        (
                            _PREFIX + "k",
                            ast.ArrayLiteral(
                                tuple(key.expr for key in sort.keys)
                            ),
                        ),
                        (_PREFIX + "v", terminal.expr),
                    )
                ),
                distinct=terminal.distinct,
            )
            segment.statement = unparse(
                ast.Query(prefix + shard_ops + [wrapper])
            )
            segment.merge = {
                "kind": "sort",
                "ascending": [key.ascending for key in sort.keys],
                "offset": limit.offset if limit else 0,
                "count": limit.count if limit else None,
                "distinct": terminal.distinct,
            }
            return
        shard_ops = list(body)
        if limit is not None:
            shard_ops.append(ast.LimitOp(0, limit.offset + limit.count))
        shard_ops.append(terminal)
        segment.statement = unparse(ast.Query(prefix + shard_ops))
        segment.merge = {
            "kind": "concat",
            "offset": limit.offset if limit else 0,
            "count": limit.count if limit else None,
            "distinct": terminal.distinct,
        }

    def _fast_path_shard(self, segment, binds) -> Optional[int]:
        if segment.anchor_var is None:
            return None
        anchor_store = None
        for op in segment.ops:
            if isinstance(op, ast.ForOp) and op.var == segment.anchor_var:
                anchor_store = (
                    op.source.name
                    if isinstance(op.source, ast.VarRef)
                    else None
                )
                break
        if anchor_store is None or not self.shard_map.is_hashed(anchor_store):
            return None
        partition_attr = ast.AttrAccess(
            ast.VarRef(segment.anchor_var),
            self.shard_map.placement(anchor_store).partition_key,
        )
        for op in segment.ops:
            if not isinstance(op, ast.FilterOp):
                continue
            for conjunct in _conjuncts(op.condition):
                if not (
                    isinstance(conjunct, ast.BinOp) and conjunct.op == "=="
                ):
                    continue
                sides = (conjunct.left, conjunct.right)
                for one, other in (sides, sides[::-1]):
                    if one == partition_attr:
                        ok, value = _static_value(other, binds)
                        if ok:
                            return self.shard_map.owner(anchor_store, value)
        return None

    def _render_collect(self, segment, prefix) -> None:
        collect = segment.ops[-1]
        assert isinstance(collect, ast.CollectOp)
        body = segment.ops[:-1]
        group_names = [name for name, _expr in collect.groups]
        agg_plan: list = []  # (name, func) or (name, "AVG", sum_name, n_name)
        shard_aggregates: list = []
        for position, (name, func, arg) in enumerate(collect.aggregates):
            func = func.upper()
            if func not in _SPLITTABLE_AGGS:
                raise ClusterUnsupportedError(
                    f"AGGREGATE {func} has no distributive partial form; "
                    "COLLECT it on a single shard or use INTO + a local "
                    "expression"
                )
            if func == "AVG":
                sum_name = f"{_PREFIX}a{position}_s"
                n_name = f"{_PREFIX}a{position}_n"
                shard_aggregates.append((sum_name, "SUM", arg))
                shard_aggregates.append(
                    (
                        n_name,
                        "SUM",
                        ast.Ternary(
                            ast.BinOp("==", arg, ast.Literal(None)),
                            ast.Literal(0),
                            ast.Literal(1),
                        ),
                    )
                )
                agg_plan.append((name, "AVG", sum_name, n_name))
            else:
                shard_aggregates.append((name, func, arg))
                agg_plan.append((name, func))
        # INTO-member elision: when the coordinator-side remainder only
        # consumes ``members`` through splittable aggregates, ship the
        # per-shard partials and drop the member frames from the wire —
        # the difference between shipping every grouped row and shipping
        # one number per group per shard.
        into = collect.into
        post_ops = segment.merge.get("post_ops") or []
        if into and post_ops:
            frame_vars = set(segment.input_vars or ())
            for op in body:
                frame_vars.update(_bound_vars(op))
            split = self._split_into_aggregates(
                into, post_ops, frame_vars, len(collect.aggregates)
            )
            if split is not None:
                extra_aggs, extra_plan, post_ops = split
                shard_aggregates.extend(extra_aggs)
                agg_plan.extend(extra_plan)
                segment.merge["post_ops"] = post_ops
                into = None
        shard_collect = ast.CollectOp(
            list(collect.groups),
            collect.count_into,
            into,
            shard_aggregates,
        )
        fields: list = [
            (
                _PREFIX + "k",
                ast.ArrayLiteral(
                    tuple(ast.VarRef(name) for name in group_names)
                ),
            )
        ]
        for entry in agg_plan:
            if entry[1] == "AVG":
                fields.append((entry[2], ast.VarRef(entry[2])))
                fields.append((entry[3], ast.VarRef(entry[3])))
            else:
                fields.append((entry[0], ast.VarRef(entry[0])))
        if collect.count_into:
            fields.append((collect.count_into, ast.VarRef(collect.count_into)))
        if into:
            fields.append((into, ast.VarRef(into)))
        wrapper = ast.ReturnOp(ast.ObjectLiteral(tuple(fields)))
        segment.statement = unparse(
            ast.Query(prefix + body + [shard_collect, wrapper])
        )
        segment.merge.update(
            {
                "kind": "collect",
                "groups": group_names,
                "aggs": agg_plan,
                "count_into": collect.count_into,
                "into": into,
            }
        )

    def _split_into_aggregates(
        self, into: str, post_ops: list, frame_vars: set, offset: int
    ):
        """Rewrite ``AGG(members[*].path)`` uses in the post-COLLECT
        remainder into per-shard AGGREGATE partials.  Returns
        ``(shard_aggregates, agg_plan, rewritten_post_ops)`` or None when
        any use of *into* resists the rewrite (then the member frames
        ship as before)."""
        candidates: dict = {}
        for node in _deep_exprs(post_ops):
            if not isinstance(node, ast.FuncCall) or len(node.args) != 1:
                continue
            func = node.name.upper()
            if func not in _SPLITTABLE_AGGS:
                continue
            arg = node.args[0]
            if (
                isinstance(arg, ast.Expansion)
                and arg.subject == ast.VarRef(into)
            ):
                candidates.setdefault(node)
            elif arg == ast.VarRef(into) and func in ("COUNT", "LENGTH"):
                candidates.setdefault(node)
        if not candidates:
            return None
        table: list = []
        extra_aggs: list = []
        extra_plan: list = []
        for position, call in enumerate(candidates, start=offset):
            func = call.name.upper()
            arg = call.args[0]
            if isinstance(arg, ast.Expansion):
                member = _member_arg(arg.suffix, frame_vars)
                if member is None:
                    return None
            else:
                member = ast.Literal(1)  # COUNT/LENGTH of the group
            name = f"{_PREFIX}m{position}"
            if func == "AVG":
                sum_name, n_name = f"{name}_s", f"{name}_n"
                extra_aggs.append((sum_name, "SUM", member))
                extra_aggs.append(
                    (
                        n_name,
                        "SUM",
                        ast.Ternary(
                            ast.BinOp("==", member, ast.Literal(None)),
                            ast.Literal(0),
                            ast.Literal(1),
                        ),
                    )
                )
                extra_plan.append((name, "AVG", sum_name, n_name))
            elif func in ("COUNT", "LENGTH"):
                extra_aggs.append((name, "LENGTH", member))
                extra_plan.append((name, "LENGTH"))
            else:
                extra_aggs.append((name, func, member))
                extra_plan.append((name, func))
            table.append((call, ast.VarRef(name)))
        rewritten = [_rewrite_tree(op, table) for op in post_ops]
        if into in _free_vars(rewritten, [into]):
            return None  # members consumed beyond splittable aggregates
        return extra_aggs, extra_plan, rewritten

    # -- execution -------------------------------------------------------

    def execute(
        self,
        plan: ClusterPlan,
        bind_vars: Optional[dict],
        runner: Callable,
        analyze: bool = False,
        consistency: Optional[str] = None,
        trace: Any = None,
    ) -> ClusterResult:
        binds = dict(bind_vars or {})
        if plan.kind == "dml":
            return self._execute_dml(plan, binds, runner, consistency, trace)
        return self._execute_read(
            plan, binds, runner, analyze, consistency, trace
        )

    def _next_single_shard(self) -> int:
        with self._rr_lock:
            shard = self.shard_map.all_shard_ids()[
                self._rr % self.shard_map.num_shards
            ]
            self._rr += 1
        return shard

    def _scatter(
        self, shard_ids, statement, binds, runner, analyze, consistency, trace
    ):
        """Run one statement on many shards concurrently; returns
        ``{shard_id: (rows, stats, analyzed)}`` or raises."""
        results: dict = {}
        errors: dict = {}

        def one(shard_id: int) -> None:
            try:
                results[shard_id] = runner(
                    shard_id, statement, binds,
                    analyze=analyze, consistency=consistency, trace=trace,
                )
            except BaseException as error:  # noqa: BLE001 - sorted below
                errors[shard_id] = error

        if len(shard_ids) == 1:
            one(shard_ids[0])
        else:
            # A persistent pool, not per-query threads: scatter happens on
            # every fan-out statement, and thread spawn is pure overhead.
            # The calling thread takes one shard itself, so a query always
            # progresses even when the pool is busy with other statements.
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    from concurrent.futures import ThreadPoolExecutor

                    pool = self._pool = ThreadPoolExecutor(
                        max_workers=max(2, 2 * self.shard_map.num_shards),
                        thread_name_prefix="cluster-scatter",
                    )
            futures = [
                pool.submit(one, shard_id) for shard_id in shard_ids[1:]
            ]
            one(shard_ids[0])
            for future in futures:
                future.result()  # `one` captures; this only joins
        if errors:
            self._raise_scatter_errors(errors)
        return results

    def _raise_scatter_errors(self, errors: dict) -> None:
        if obs_metrics.ENABLED:
            obs_metrics.counter("cluster_shard_errors_total").inc(len(errors))
        for shard_id, error in sorted(errors.items()):
            if isinstance(error, ShardMapStaleError):
                raise error
        for shard_id, error in sorted(errors.items()):
            if isinstance(error, ReproError):
                raise error
        shard_id, error = sorted(errors.items())[0]
        raise ShardUnavailableError(
            f"shard {shard_id} failed during scatter: "
            f"{type(error).__name__}: {error}",
            shard=shard_id,
        ) from error

    def _execute_read(
        self, plan, binds, runner, analyze, consistency, trace
    ) -> ClusterResult:
        frames: Optional[list] = None
        stats_total: dict = {}
        analyzed_parts: list = []
        rows: list = []
        fan_out_seen = 1
        for position, segment in enumerate(plan.segments):
            seg_binds = dict(binds)
            if segment.input_vars:
                seg_binds[_PREFIX + "frames"] = frames or []
            if segment.multi:
                shard_ids = self.shard_map.all_shard_ids()
            else:
                shard_ids = [
                    segment.pinned
                    if segment.pinned is not None
                    else self._next_single_shard()
                ]
            fan_out_seen = max(fan_out_seen, len(shard_ids))
            results = self._scatter(
                shard_ids, segment.statement, seg_binds, runner,
                analyze, consistency, trace,
            )
            self._fold_stats(stats_total, results)
            if analyze:
                for shard_id in sorted(results):
                    shard_analyzed = results[shard_id][2]
                    if shard_analyzed:
                        analyzed_parts.append(
                            (position, shard_id, shard_analyzed)
                        )
            ordered = [results[shard_id] for shard_id in sorted(results)]
            if not segment.final:
                frames = [
                    row for result in ordered for row in result[0]
                ]
                continue
            rows = self._merge_final(segment, ordered, binds)
        merged = len(rows)
        if obs_metrics.ENABLED:
            if fan_out_seen > 1:
                obs_metrics.counter("cluster_fanout_queries_total").inc()
            else:
                obs_metrics.counter("cluster_single_shard_queries_total").inc()
            obs_metrics.counter("cluster_merge_rows_total").inc(merged)
        stats = self._final_stats(stats_total, plan, fan_out_seen, merged)
        analyzed = (
            self._render_analyzed(plan, analyzed_parts, fan_out_seen, merged)
            if analyze
            else None
        )
        return ClusterResult(rows, stats, analyzed=analyzed, trace=trace)

    def _fold_stats(self, total: dict, results: dict) -> None:
        for rows, stats, _analyzed in results.values():
            for key, value in (stats or {}).items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                total[key] = total.get(key, 0) + value

    def _final_stats(self, total, plan, fan_out, merged) -> dict:
        stats = dict(total)
        stats.setdefault("scanned", 0)
        stats.setdefault("index_lookups", 0)
        stats["rows_returned"] = merged
        stats["fan_out"] = fan_out
        stats["cluster_strategy"] = plan.strategy
        stats["cluster_segments"] = len(plan.segments) or 1
        stats["merged_rows"] = merged
        return stats

    def _render_analyzed(self, plan, parts, fan_out, merged) -> str:
        lines = [
            f"cluster {plan.strategy} [fan_out={fan_out} "
            f"shards={self.shard_map.num_shards} "
            f"segments={len(plan.segments) or 1} merged_rows={merged}]"
        ]
        for position, shard_id, text in parts:
            lines.append(f"  segment {position} shard {shard_id}:")
            for line in text.splitlines():
                lines.append(f"    {line}")
        return "\n".join(lines)

    # .. merge implementations ...........................................

    def _merge_final(self, segment, ordered, binds) -> list:
        merge = segment.merge
        kind = merge.get("kind", "rows")
        if kind == "rows":
            return list(ordered[0][0])
        if kind == "concat":
            rows = [row for result in ordered for row in result[0]]
            if merge.get("distinct"):
                rows = _dedupe(rows)
            count = merge.get("count")
            if count is not None:
                offset = merge.get("offset", 0)
                rows = rows[offset:offset + count]
            return rows
        if kind == "sort":
            return self._merge_sorted(segment, ordered)
        if kind == "collect":
            return self._merge_collect(segment, ordered, binds)
        raise ClusterError(f"unknown merge kind {kind!r}")

    def _merge_sorted(self, segment, ordered) -> list:
        merge = segment.merge
        ascending = merge["ascending"]
        streams = [result[0] for result in ordered]
        merged = _kway_merge(streams, ascending)
        rows = [row[_PREFIX + "v"] for row in merged]
        if merge.get("distinct"):
            rows = _dedupe(rows)
        count = merge.get("count")
        if count is not None:
            offset = merge.get("offset", 0)
            rows = rows[offset:offset + count]
        return rows

    def _merge_collect(self, segment, ordered, binds) -> list:
        merge = segment.merge
        group_names = merge["groups"]
        agg_plan = merge["aggs"]
        count_into = merge.get("count_into")
        into = merge.get("into")
        combined: dict = {}
        order: list = []
        for rows, _stats, _analyzed in ordered:
            for row in rows:
                keys = row.get(_PREFIX + "k") or []
                token = tuple(_group_token(value) for value in keys)
                state = combined.get(token)
                if state is None:
                    state = {
                        "keys": keys,
                        "count": 0,
                        "members": [],
                        "aggs": {},
                    }
                    combined[token] = state
                    order.append(token)
                if count_into:
                    state["count"] += row.get(count_into) or 0
                if into:
                    state["members"].extend(row.get(into) or [])
                for entry in agg_plan:
                    name = entry[0]
                    slot = state["aggs"]
                    if entry[1] == "AVG":
                        partial = slot.setdefault(name, [0, 0])
                        partial[0] += row.get(entry[2]) or 0
                        partial[1] += row.get(entry[3]) or 0
                    elif entry[1] in ("COUNT", "LENGTH"):
                        slot[name] = (slot.get(name) or 0) + (
                            row.get(name) or 0
                        )
                    elif entry[1] == "SUM":
                        slot[name] = (slot.get(name) or 0) + (
                            row.get(name) or 0
                        )
                    elif entry[1] in ("MIN", "MAX"):
                        value = row.get(name)
                        if value is None:
                            continue
                        current = slot.get(name)
                        if current is None:
                            slot[name] = value
                        elif entry[1] == "MIN":
                            slot[name] = (
                                value if compare(value, current) < 0
                                else current
                            )
                        else:
                            slot[name] = (
                                value if compare(value, current) > 0
                                else current
                            )
        group_frames: list = []
        for token in order:
            state = combined[token]
            frame = dict(zip(group_names, state["keys"]))
            for entry in agg_plan:
                name = entry[0]
                if entry[1] == "AVG":
                    partial = state["aggs"].get(name) or [0, 0]
                    frame[name] = (
                        partial[0] / partial[1] if partial[1] else None
                    )
                else:
                    value = state["aggs"].get(name)
                    if entry[1] in ("COUNT", "LENGTH", "SUM"):
                        frame[name] = value or 0
                    else:
                        frame[name] = value
            if count_into:
                frame[count_into] = state["count"]
            if into:
                frame[into] = state["members"]
            group_frames.append(frame)
        post_ops = merge.get("post_ops") or []
        if not post_ops:
            return []
        exports = list(group_frames[0].keys()) if group_frames else (
            group_names
            + [entry[0] for entry in agg_plan]
            + ([count_into] if count_into else [])
            + ([into] if into else [])
        )
        return self._local_eval(exports, group_frames, post_ops, binds)

    def _local_eval(self, exports, frames, post_ops, binds) -> list:
        """Evaluate store-free pipeline ops at the coordinator with the
        *real* executor (an empty embedded engine), so expression, sort
        and aggregate semantics are identical to a shard's."""
        if self._local_db is None:
            from repro.core.database import MultiModelDB

            self._local_db = MultiModelDB()
        group_var = _PREFIX + "g"
        ops: list = [ast.ForOp(group_var, ast.BindVar(_PREFIX + "groups"))]
        ops += [
            ast.LetOp(name, ast.AttrAccess(ast.VarRef(group_var), name))
            for name in exports
        ]
        ops += list(post_ops)
        text = unparse(ast.Query(ops))
        local_binds = dict(binds)
        local_binds[_PREFIX + "groups"] = frames
        return self._local_db.query(text, local_binds).rows

    # .. DML .............................................................

    def _plan_dml(self, query: ast.Query, binds: dict) -> ClusterPlan:
        ops = query.operations
        terminal = ops[-1]
        text = unparse(query)
        if len(ops) == 1:
            return self._plan_standalone_dml(terminal, text, binds)
        # Pipeline DML: plan the prefix like a read; the terminal rides in
        # the last segment.  Self-locating statements (UPDATE/REMOVE/
        # REPLACE, where a non-owning shard no-ops) are safe to scatter;
        # INSERT/UPSERT would duplicate rows.
        placement = self.shard_map.placement(terminal.target)
        if isinstance(terminal, (ast.InsertOp, ast.UpsertOp)):
            raise ClusterUnsupportedError(
                f"{type(terminal).__name__.replace('Op', '').upper()} with "
                "a pipeline prefix cannot be routed to owner shards; "
                "issue per-document statements instead"
            )
        segments = self._segment(ops[:-1], binds)
        segments[-1].ops = segments[-1].ops + [terminal]
        if placement.mode == "reference" and any(
            segment.multi for segment in segments
        ):
            # Frames reaching the DML differ per shard only if a hash FOR
            # anchored some segment — then each shard would patch its
            # reference copy differently.
            raise ClusterUnsupportedError(
                f"DML on reference store {terminal.target!r} driven by a "
                "hash-partitioned pipeline would diverge the replicas"
            )
        if placement.mode == "reference":
            # Reference data + reference-only pipeline: every shard must
            # apply the identical statement to stay in sync.
            for segment in segments:
                segment.multi = True
                segment.pinned = None
        self._render_segments(segments, binds)
        final = segments[-1]
        final.merge = {"kind": "concat", "headless": False}
        fan_out = (
            self.shard_map.num_shards
            if any(segment.multi for segment in segments)
            else 1
        )
        return ClusterPlan(
            kind="read",  # executes through the segment machinery
            strategy="dml_scatter" if fan_out > 1 else "dml_single",
            segments=segments,
            fan_out=fan_out,
        )

    def _plan_standalone_dml(self, op, text: str, binds: dict) -> ClusterPlan:
        placement = self.shard_map.placement(op.target)
        if placement.mode == "reference":
            return ClusterPlan(
                kind="dml",
                strategy="dml_broadcast",
                dml={
                    "statement": text,
                    "shard": None,
                    "reference": True,
                },
                fan_out=self.shard_map.num_shards,
            )
        partition_key = placement.partition_key
        shard: Optional[int] = None
        if isinstance(op, ast.InsertOp):
            ok, document = _static_value(op.document, binds)
            if not ok or not isinstance(document, dict):
                raise ClusterUnsupportedError(
                    f"INSERT into hash-partitioned {op.target!r} needs a "
                    "statically evaluable document to pick the owner shard"
                )
            shard = self.shard_map.owner(
                op.target, document.get(partition_key)
            )
        elif isinstance(op, ast.UpsertOp):
            ok, search = _static_value(op.search, binds)
            if ok and isinstance(search, dict) and partition_key in search:
                shard = self.shard_map.owner(op.target, search[partition_key])
            else:
                raise ClusterUnsupportedError(
                    f"UPSERT into hash-partitioned {op.target!r} needs the "
                    f"partition key {partition_key!r} in a statically "
                    "evaluable search document"
                )
        else:  # UPDATE / REMOVE / REPLACE by key
            ok, key = _static_value(op.key, binds)
            if ok and isinstance(key, dict):
                ok = partition_key in key
                key = key.get(partition_key)
            if ok and placement.key_routable:
                # The store's primary key doubles as the partition key, so
                # the key value routes directly.
                shard = self.shard_map.owner(op.target, key)
        if shard is not None:
            return ClusterPlan(
                kind="dml",
                strategy="dml_routed",
                dml={"statement": text, "shard": shard, "reference": False},
                fan_out=1,
            )
        # Partitioned on an attribute the statement does not bind: let
        # every shard try — the owner applies it, the rest no-op.
        return ClusterPlan(
            kind="dml",
            strategy="dml_broadcast",
            dml={"statement": text, "shard": None, "reference": False},
            fan_out=self.shard_map.num_shards,
        )

    def _execute_dml(
        self, plan, binds, runner, consistency, trace
    ) -> ClusterResult:
        info = plan.dml
        if info["shard"] is not None:
            shard_ids = [info["shard"]]
        else:
            shard_ids = self.shard_map.all_shard_ids()
        try:
            results = self._scatter(
                shard_ids, info["statement"], binds, runner,
                False, consistency, trace,
            )
        except ReproError:
            if info["reference"] and len(shard_ids) > 1:
                raise ClusterError(
                    "broadcast DML failed on some shards; reference store "
                    "copies may have diverged — re-issue the statement"
                )
            raise
        stats_total: dict = {}
        self._fold_stats(stats_total, results)
        rows = [
            row
            for shard_id in sorted(results)
            for row in results[shard_id][0]
        ]
        if info["reference"] and len(shard_ids) > 1 and rows:
            # Every shard applied the same statement; report one copy.
            per_shard = len(results[sorted(results)[0]][0])
            rows = rows[:per_shard]
            if "writes" in stats_total:
                total_writes = stats_total["writes"]
                stats_total["writes"] = total_writes // len(shard_ids)
        if obs_metrics.ENABLED:
            if len(shard_ids) > 1:
                obs_metrics.counter("cluster_fanout_queries_total").inc()
            else:
                obs_metrics.counter("cluster_single_shard_queries_total").inc()
        stats = self._final_stats(stats_total, plan, len(shard_ids), len(rows))
        return ClusterResult(rows, stats, trace=trace)


# ---------------------------------------------------------------------------
# Merge helpers
# ---------------------------------------------------------------------------


class _MergeKey:
    """Heap key for the k-way merge: the engine's cross-type total order
    per sort key, direction-aware, with (shard, position) tie-breaks for
    determinism."""

    __slots__ = ("keys", "ascending", "tie")

    def __init__(self, keys, ascending, tie):
        self.keys = keys
        self.ascending = ascending
        self.tie = tie

    def __lt__(self, other: "_MergeKey") -> bool:
        for mine, theirs, ascending in zip(
            self.keys, other.keys, self.ascending
        ):
            verdict = compare(mine, theirs)
            if verdict:
                return verdict < 0 if ascending else verdict > 0
        return self.tie < other.tie


def _kway_merge(streams: list, ascending: list) -> list:
    import heapq

    key_field = _PREFIX + "k"
    heap = []
    for shard_index, rows in enumerate(streams):
        if rows:
            row = rows[0]
            heap.append(
                (
                    _MergeKey(
                        row.get(key_field) or [], ascending, (shard_index, 0)
                    ),
                    shard_index,
                    0,
                )
            )
    heapq.heapify(heap)
    merged: list = []
    while heap:
        _key, shard_index, position = heapq.heappop(heap)
        rows = streams[shard_index]
        merged.append(rows[position])
        following = position + 1
        if following < len(rows):
            row = rows[following]
            heapq.heappush(
                heap,
                (
                    _MergeKey(
                        row.get(key_field) or [],
                        ascending,
                        (shard_index, following),
                    ),
                    shard_index,
                    following,
                ),
            )
    return merged


def _dedupe(rows: list) -> list:
    seen: set = set()
    out: list = []
    for row in rows:
        token = _group_token(row)
        if token in seen:
            continue
        seen.add(token)
        out.append(row)
    return out
