"""``ClusterClient`` — the application's one handle on a sharded cluster.

Composes the stack the repo already has: each shard is a PR-8
:class:`~repro.replication.router.ReplicaSet` (primary + replicas,
consistency levels, failover), the transport is the PR-4 wire protocol,
and the :class:`~repro.cluster.coordinator.Coordinator` decides which
shards see which statement.  The surface mirrors
:class:`~repro.client.client.ReproClient` (``query`` / ``explain`` /
``info`` / context manager), so the UniBench differential harness can
drive embedded, single-server, replicated and sharded deployments with
the same code.

Shard-map staleness is handled here: every shipped statement carries the
map version the plan used; when any shard answers ``SHARD_MAP_STALE``
the client refetches the map (``shard_map`` op, any reachable shard),
rebuilds its per-shard replica sets and replans — once per statement, so
a flapping topology surfaces as an error instead of a livelock.
"""

from __future__ import annotations

import re
import threading
from typing import Any, Optional

from repro.errors import ClusterError, ClusterUnsupportedError, ShardMapStaleError
from repro.obs import tracing

from repro.cluster.coordinator import ClusterResult, Coordinator
from repro.cluster.shardmap import ShardMap

__all__ = ["ClusterClient"]

_EXPLAIN_ANALYZE = re.compile(r"^\s*EXPLAIN\s+ANALYZE\b", re.IGNORECASE)


def _split_address(address) -> tuple:
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return (address[0], int(address[1]))
    host, _, port = str(address).rpartition(":")
    if not host or not port.isdigit():
        raise ClusterError(f"bad shard address {address!r} (want host:port)")
    return (host, int(port))


class ClusterClient:
    """Scatter-gather MMQL over hash-partitioned shards."""

    def __init__(
        self,
        shard_map: Optional[ShardMap] = None,
        seed: Optional[Any] = None,
        consistency: str = "strong",
        trace: Optional[bool] = None,
        **client_options: Any,
    ):
        if shard_map is None and seed is None:
            raise ClusterError("ClusterClient needs a shard_map or a seed")
        self._options = dict(client_options)
        self.consistency = consistency
        self.trace = trace
        self.last_trace = None
        self._lock = threading.RLock()
        self._sets: dict[int, Any] = {}
        self.shard_map: Optional[ShardMap] = shard_map
        self._seed = seed
        if shard_map is not None:
            self.coordinator = Coordinator(shard_map)
        else:
            self.coordinator = None  # built on connect()

    # ------------------------------------------------------------ lifecycle --

    def connect(self) -> "ClusterClient":
        if self.shard_map is None:
            self._adopt_map(self._fetch_map_from(self._seed))
        elif self.coordinator is None:
            self.coordinator = Coordinator(self.shard_map)
        return self

    def close(self) -> None:
        with self._lock:
            if self.coordinator is not None:
                self.coordinator.close()
            for replica_set in self._sets.values():
                try:
                    replica_set.close()
                except Exception:
                    pass
            self._sets.clear()

    def __enter__(self) -> "ClusterClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- topology --

    def _fetch_map_from(self, address) -> ShardMap:
        from repro.client.client import ReproClient

        host, port = _split_address(address)
        with ReproClient(host=host, port=port, **self._options) as probe:
            payload = probe.shard_map()
        return ShardMap.from_json(payload["shard_map"])

    def _adopt_map(self, shard_map: ShardMap) -> None:
        with self._lock:
            self.shard_map = shard_map
            if self.coordinator is not None:
                self.coordinator.close()
            self.coordinator = Coordinator(shard_map)
            for replica_set in self._sets.values():
                try:
                    replica_set.close()
                except Exception:
                    pass
            self._sets.clear()

    def refetch_map(self) -> ShardMap:
        """Pull a fresh map from any reachable shard (seed as fallback)
        and rebuild the per-shard routing."""
        candidates: list = []
        current = self.shard_map
        if current is not None:
            for entry in current.shards:
                candidates.append(entry.primary)
                candidates.extend(entry.replicas)
        if self._seed is not None:
            candidates.append(self._seed)
        last_error: Optional[BaseException] = None
        for candidate in candidates:
            try:
                fresh = self._fetch_map_from(candidate)
            except Exception as error:  # keep probing the roster
                last_error = error
                continue
            self._adopt_map(fresh)
            return fresh
        raise ClusterError(
            "could not refetch the shard map from any shard"
        ) from last_error

    def _replica_set(self, shard_id: int):
        with self._lock:
            replica_set = self._sets.get(shard_id)
            if replica_set is None:
                from repro.client.client import ReproClient
                from repro.replication.router import ReplicaSet

                entry = self.shard_map.entry(shard_id)
                version = self.shard_map.version
                options = dict(self._options)

                def factory(host=None, port=None, **kwargs):
                    merged = {**options, **kwargs}
                    client = ReproClient(host=host, port=port, **merged)
                    client.shard_map_version = version
                    return client

                replica_set = ReplicaSet(
                    _split_address(entry.primary),
                    [_split_address(replica) for replica in entry.replicas],
                    consistency=self.consistency,
                    client_factory=factory,
                )
                self._sets[shard_id] = replica_set
            return replica_set

    # -------------------------------------------------------------- queries --

    def _runner(
        self, shard_id, text, bind_vars, analyze, consistency, trace
    ):
        replica_set = self._replica_set(shard_id)
        cursor = replica_set.query(
            text,
            bind_vars,
            consistency=consistency,
            analyze=analyze,
            trace=trace,
        )
        rows = cursor.fetch_all()
        return rows, dict(cursor.stats or {}), cursor.analyzed

    def _new_trace(self, force: Optional[bool] = None):
        wanted = force if force is not None else (
            self.trace if self.trace is not None else tracing.is_enabled()
        )
        if not wanted:
            return None
        from repro.client.client import StitchedTrace

        return StitchedTrace(tracing.new_trace_id())

    def query(
        self,
        text: str,
        bind_vars: Optional[dict] = None,
        analyze: bool = False,
        consistency: Optional[str] = None,
        trace: Optional[bool] = None,
        **_ignored: Any,
    ) -> ClusterResult:
        """Plan and run one MMQL statement across the cluster.

        One :class:`StitchedTrace` spans the whole scatter — every
        per-shard RPC lands in the same trace, which is how a fan-out
        query stays one story in the trace viewer."""
        self.connect()
        match = _EXPLAIN_ANALYZE.match(text)
        if match:
            text = text[match.end():]
            analyze = True
        stitched = self._new_trace(force=trace)
        try:
            result = self._query_once(
                text, bind_vars, analyze, consistency, stitched
            )
        except ShardMapStaleError:
            self.refetch_map()
            result = self._query_once(
                text, bind_vars, analyze, consistency, stitched
            )
        if stitched is not None:
            self.last_trace = stitched
        return result

    def _query_once(
        self, text, bind_vars, analyze, consistency, stitched
    ) -> ClusterResult:
        plan = self.coordinator.plan(text, bind_vars)
        result = self.coordinator.execute(
            plan,
            bind_vars,
            self._runner,
            analyze=analyze,
            consistency=consistency,
            trace=stitched,
        )
        return result

    def explain(self, text: str, bind_vars: Optional[dict] = None) -> str:
        """The coordinator's plan: strategy, fan-out, per-segment shard
        statements — the cluster analogue of the embedded EXPLAIN."""
        self.connect()
        match = _EXPLAIN_ANALYZE.match(text)
        if match:
            text = text[match.end():]
        plan = self.coordinator.plan(text, bind_vars)
        return plan.describe(self.shard_map)

    def begin(self, isolation: str = "snapshot"):
        raise ClusterUnsupportedError(
            "distributed transactions are not supported: a cluster "
            "statement may touch several shards and there is no cross-"
            "shard commit protocol — use single-statement writes (they "
            "route atomically to one shard) or run transactions against "
            "one shard's replica set directly"
        )

    # -------------------------------------------------------------- status --

    def info(self) -> dict:
        self.connect()
        return {
            "cluster": True,
            "shards": self.shard_map.num_shards,
            "map_version": self.shard_map.version,
            "placements": {
                name: placement.mode
                for name, placement in sorted(
                    self.shard_map.placements.items()
                )
            },
        }

    def shards_status(self) -> list:
        """Per-shard roster + reachability — the ``.shards`` dot-command."""
        self.connect()
        report = []
        for entry in self.shard_map.shards:
            replica_set = self._replica_set(entry.shard_id)
            try:
                status = replica_set.status()
                alive = replica_set.heartbeat()
            except Exception as error:
                status, alive = {"error": str(error)}, False
            report.append(
                {
                    "shard_id": entry.shard_id,
                    "primary": entry.primary,
                    "replicas": list(entry.replicas),
                    "alive": alive,
                    "status": status,
                }
            )
        return report

    def __repr__(self) -> str:
        shards = self.shard_map.num_shards if self.shard_map else "?"
        return f"<ClusterClient shards={shards} consistency={self.consistency}>"
