"""Provision a sharded cluster: DDL everywhere, rows where they belong.

Mirrors :func:`repro.unibench.generator.load_into_multimodel` exactly —
same schemas, same indexes — but routes every row through the shard
map's placements: hash-partitioned rows land only on their owner shard,
reference rows land on every shard.  DDL (and index DDL) is applied to
*all* shards regardless of placement, so any shard can run any aligned
statement.

Also provides :func:`start_cluster`, the in-process harness the tests,
the chaos runs and CI's cluster-smoke job share: N
:class:`~repro.server.server.ReproServer` shards (optionally one with a
read replica) on OS-picked ports, a matching versioned
:class:`~repro.cluster.shardmap.ShardMap`, and a
:class:`~repro.cluster.client.ClusterClient` wired to it.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cluster.shardmap import ShardMap, StorePlacement, demo_placements

__all__ = [
    "load_sharded_unibench",
    "make_demo_shard_map",
    "start_cluster",
    "ClusterHandle",
]


def _owner(shard_map: ShardMap, store: str, value) -> Optional[int]:
    """Owner shard for one row's partition value, or None = everywhere."""
    if shard_map.is_hashed(store):
        return shard_map.owner(store, value)
    return None


def _route(shard_map: ShardMap, store: str, value, sinks: list, apply) -> None:
    owner = _owner(shard_map, store, value)
    for shard_id, sink in enumerate(sinks):
        if owner is None or owner == shard_id:
            apply(sink)


def load_sharded_unibench(
    dbs: list,
    data,
    shard_map: ShardMap,
    with_indexes: bool = True,
) -> None:
    """Populate one :class:`MultiModelDB` per shard from *data*.

    ``dbs[i]`` receives shard ``i``'s slice; ``len(dbs)`` must equal
    ``shard_map.num_shards``."""
    from repro.relational.schema import Column, ColumnType, TableSchema

    if len(dbs) != shard_map.num_shards:
        raise ValueError(
            f"{len(dbs)} databases for {shard_map.num_shards} shards"
        )

    tables = []
    for db in dbs:
        db.create_table(
            TableSchema(
                "customers",
                [
                    Column("id", ColumnType.INTEGER, nullable=False),
                    Column("name", ColumnType.STRING, nullable=False),
                    Column("city", ColumnType.STRING),
                    Column("credit_limit", ColumnType.INTEGER),
                ],
                primary_key="id",
            )
        )
        tables.append(db.table("customers"))
    key = shard_map.placement("customers").partition_key or "id"
    for row in data.customers:
        _route(
            shard_map, "customers", row.get(key), tables,
            lambda table, row=row: table.insert(row),
        )

    # The social graph: vertices and edges follow the store's placement
    # (reference in the demo profile — every shard gets the whole graph,
    # which is what keeps traversals shard-local).
    if shard_map.is_hashed("social"):
        raise NotImplementedError(
            "hash-partitioned graphs are not provisioned by this loader"
        )
    for db in dbs:
        social = db.create_graph("social")
        for row in data.customers:
            social.add_vertex(str(row["id"]), {"name": row["name"]})
        for source, target in data.knows_edges:
            social.add_edge(source, target, label="knows")

    products = [db.create_collection("products") for db in dbs]
    key = shard_map.placement("products").partition_key or "_key"
    for product in data.products:
        _route(
            shard_map, "products", product.get(key), products,
            lambda sink, product=product: sink.insert(product),
        )

    orders = [db.create_collection("orders") for db in dbs]
    key = shard_map.placement("orders").partition_key or "_key"
    for order in data.orders:
        _route(
            shard_map, "orders", order.get(key), orders,
            lambda sink, order=order: sink.insert(order),
        )

    carts = [db.create_bucket("cart") for db in dbs]
    for customer_id, order_no in data.carts.items():
        _route(
            shard_map, "cart", customer_id, carts,
            lambda sink, k=customer_id, v=order_no: sink.put(k, v),
        )

    feedback = [db.create_collection("feedback") for db in dbs]
    key = shard_map.placement("feedback").partition_key or "_key"
    for review in data.feedback:
        _route(
            shard_map, "feedback", review.get(key), feedback,
            lambda sink, review=review: sink.insert(review),
        )

    if shard_map.is_hashed("vendors"):
        raise NotImplementedError(
            "hash-partitioned triple stores are not provisioned by this "
            "loader"
        )
    for db in dbs:
        db.create_triple_store("vendors").add_many(data.vendor_triples)

    if with_indexes:
        for db, order_sink, product_sink, feedback_sink in zip(
            dbs, orders, products, feedback
        ):
            order_sink.create_index("Order_no", kind="hash")
            order_sink.create_index("customer_id", kind="hash")
            product_sink.create_index("category", kind="hash")
            feedback_sink.create_index("product_no", kind="hash")
            db.context.indexes.create_index(
                feedback_sink.namespace, ("text",), kind="fulltext",
                name="feedback_text",
            )


def make_demo_shard_map(
    addresses: list,
    replicas: Optional[dict] = None,
    version: int = 1,
) -> ShardMap:
    """A demo-profile map over *addresses* (``host:port`` per shard)."""
    shards = []
    for shard_id, address in enumerate(addresses):
        shards.append(
            {
                "shard_id": shard_id,
                "primary": address,
                "replicas": list((replicas or {}).get(shard_id, ())),
            }
        )
    return ShardMap(shards, demo_placements(), version=version)


class ClusterHandle:
    """Everything :func:`start_cluster` stood up, torn down in one call."""

    def __init__(self, servers, replica_servers, shard_map, dbs):
        self.servers = servers
        self.replica_servers = replica_servers
        self.shard_map = shard_map
        self.dbs = dbs

    def client(self, **options) -> Any:
        from repro.cluster.client import ClusterClient

        return ClusterClient(self.shard_map, **options)

    def stop(self) -> None:
        for server in self.replica_servers + self.servers:
            try:
                server.stop()
            except Exception:
                pass

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_cluster(
    num_shards: int = 3,
    data: Any = None,
    scale_factor: int = 1,
    seed: int = 42,
    replica_for: Optional[int] = None,
    placements: Optional[dict] = None,
    with_indexes: bool = True,
    **server_options: Any,
) -> ClusterHandle:
    """Start *num_shards* in-process shard servers holding the UniBench
    data set, sliced by the demo placement profile.

    ``replica_for`` optionally attaches one WAL-shipping read replica to
    that shard (exercising the full ReplicaSet path under the
    coordinator).  Returns a :class:`ClusterHandle`."""
    from repro.core.database import MultiModelDB
    from repro.server.server import ReproServer
    from repro.unibench.generator import generate

    if data is None:
        data = generate(scale_factor=scale_factor, seed=seed)
    store_placements = {
        name: (
            placement
            if isinstance(placement, StorePlacement)
            else StorePlacement(
                placement.get("mode"),
                placement.get("partition_key"),
                placement.get("primary_key"),
            )
        )
        for name, placement in (placements or demo_placements()).items()
    }
    # Provision on a placeholder map (addresses unknown until bind); the
    # partition assignment only depends on num_shards + placements, which
    # don't change when the real addresses are filled in.
    routing_map = ShardMap(
        [f"pending:{9000 + shard_id}" for shard_id in range(num_shards)],
        store_placements,
    )
    dbs = [MultiModelDB() for _ in range(num_shards)]
    load_sharded_unibench(dbs, data, routing_map, with_indexes=with_indexes)

    servers = []
    addresses = []
    try:
        for shard_id, db in enumerate(dbs):
            server = ReproServer(
                db, port=0, shard_id=shard_id, **server_options
            )
            server.start_in_thread()
            servers.append(server)
            addresses.append(f"{server.host}:{server.port}")
        replica_servers = []
        replicas: dict = {}
        if replica_for is not None:
            replica_db = _provision_replica_db(
                data, routing_map, replica_for, with_indexes
            )
            replica = ReproServer(
                replica_db,
                port=0,
                shard_id=replica_for,
                replica_of=addresses[replica_for],
                **server_options,
            )
            replica.start_in_thread()
            replica_servers.append(replica)
            replicas[replica_for] = [f"{replica.host}:{replica.port}"]
        shard_map = ShardMap(
            [
                {
                    "shard_id": shard_id,
                    "primary": address,
                    "replicas": replicas.get(shard_id, []),
                }
                for shard_id, address in enumerate(addresses)
            ],
            store_placements,
        )
        for server in servers + replica_servers:
            server.shard_map = shard_map
        return ClusterHandle(servers, replica_servers, shard_map, dbs)
    except BaseException:
        for server in servers:
            try:
                server.stop()
            except Exception:
                pass
        raise


def _provision_replica_db(data, routing_map, shard_id, with_indexes):
    """A fresh database holding exactly shard *shard_id*'s slice —
    replicas are provisioned like their primary (DDL + snapshot), then
    the WAL stream keeps them converged."""
    from repro.core.database import MultiModelDB

    stand_ins = [MultiModelDB() for _ in range(routing_map.num_shards)]
    load_sharded_unibench(stand_ins, data, routing_map,
                          with_indexes=with_indexes)
    return stand_ins[shard_id]
