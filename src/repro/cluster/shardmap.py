"""Shard topology: which shard owns which slice of which store.

A :class:`ShardMap` is the cluster's one piece of shared configuration:
the shard roster (primary + replica addresses per shard) and a
**placement** per store.  Two placement modes cover the multi-model
catalog:

* ``hash`` — the store's keyspace is partitioned: a row lives on exactly
  one shard, chosen by a stability-pinned hash of its **partition key**
  (a declared attribute for tables/collections, the key itself for
  KV buckets).  Scatter reads touch every shard; a query that binds the
  partition key with an equality predicate routes to one.
* ``reference`` — the store is fully replicated on every shard (the
  classic small-dimension-table treatment).  Reads are served by any one
  shard; writes broadcast to all.

The hash is **pinned**: md5 over a canonicalized scalar rendering
(``1``, ``1.0`` and ``"1"`` co-locate, booleans stay distinct), so the
row→shard assignment survives interpreter restarts and Python upgrades —
``hash()`` randomization can never silently reshuffle a cluster.

The map carries a ``version``; every coordinator request ships the
version it planned against, and a shard configured with a different one
answers ``SHARD_MAP_STALE`` so the client refetches (``shard_map`` op)
and replans instead of routing rows with a dead topology.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from repro.errors import ClusterError

__all__ = ["ShardMap", "ShardEntry", "StorePlacement", "demo_placements"]

#: Placement assumed for stores the map does not mention: replicate
#: everywhere.  Broadcast writes keep every shard's copy identical, and
#: any single shard can answer reads — correct by construction, just not
#: partitioned.
DEFAULT_MODE = "reference"


@dataclass(frozen=True)
class StorePlacement:
    """How one store's data is laid out across the shards."""

    mode: str  # "hash" | "reference"
    partition_key: Optional[str] = None  # attribute name (hash mode only)
    #: The store's primary lookup key (``_key`` for collections, the
    #: declared pk for tables).  When it equals ``partition_key``, point
    #: lookups (``DOCUMENT``, ``UPDATE key``) route straight to the owner.
    primary_key: Optional[str] = None

    def __post_init__(self):
        if self.mode not in ("hash", "reference"):
            raise ClusterError(f"unknown placement mode {self.mode!r}")
        if self.mode == "hash" and not self.partition_key:
            raise ClusterError("hash placement needs a partition_key")

    @property
    def key_routable(self) -> bool:
        """True when the primary key doubles as the partition key, so a
        primary-key value alone determines the owner shard."""
        return (
            self.mode == "hash"
            and self.primary_key is not None
            and self.primary_key == self.partition_key
        )


@dataclass
class ShardEntry:
    """One shard: its id, primary address, and optional replica
    addresses (each shard is a PR-8 replica set of its own)."""

    shard_id: int
    primary: str  # "host:port"
    replicas: tuple = ()


def _canonical(value) -> str:
    """Stable scalar rendering for partition hashing.  Numeric values and
    their string spellings co-locate (customer ``id`` 1 joins cart key
    ``"1"``); booleans are tagged so ``True`` never collides with ``1``."""
    if isinstance(value, bool):
        return f"b:{int(value)}"
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, str):
        stripped = value.strip()
        try:
            return _canonical(int(stripped))
        except ValueError:
            pass
        try:
            return _canonical(float(stripped))
        except ValueError:
            pass
        return value
    # Containers and exotica: JSON with sorted keys is deterministic.
    return json.dumps(value, sort_keys=True, default=str)


def partition_hash(value) -> int:
    """The pinned 32-bit partition hash of one key value."""
    digest = hashlib.md5(_canonical(value).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class ShardMap:
    """Versioned shard topology + per-store placements."""

    def __init__(
        self,
        shards: list,
        placements: Optional[dict] = None,
        version: int = 1,
    ):
        if not shards:
            raise ClusterError("a shard map needs at least one shard")
        entries = []
        for index, shard in enumerate(shards):
            if isinstance(shard, ShardEntry):
                entries.append(shard)
            elif isinstance(shard, str):
                entries.append(ShardEntry(index, shard))
            else:
                entries.append(
                    ShardEntry(
                        int(shard.get("shard_id", index)),
                        shard["primary"],
                        tuple(shard.get("replicas") or ()),
                    )
                )
        self.shards = entries
        self.placements: dict[str, StorePlacement] = {}
        for name, placement in (placements or {}).items():
            if not isinstance(placement, StorePlacement):
                placement = StorePlacement(
                    placement.get("mode", DEFAULT_MODE),
                    placement.get("partition_key"),
                    placement.get("primary_key"),
                )
            self.placements[name] = placement
        self.version = int(version)

    # -- lookups ---------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def placement(self, store: str) -> StorePlacement:
        return self.placements.get(store) or StorePlacement(DEFAULT_MODE)

    def is_hashed(self, store: str) -> bool:
        return self.placement(store).mode == "hash"

    def owner(self, store: str, value) -> int:
        """Shard id owning *value* of *store*'s partition key."""
        placement = self.placement(store)
        if placement.mode != "hash":
            raise ClusterError(
                f"store {store!r} is not hash-partitioned; every shard "
                "holds it"
            )
        return partition_hash(value) % self.num_shards

    def all_shard_ids(self) -> list[int]:
        return [entry.shard_id for entry in self.shards]

    def entry(self, shard_id: int) -> ShardEntry:
        for candidate in self.shards:
            if candidate.shard_id == shard_id:
                return candidate
        raise ClusterError(f"no shard {shard_id} in this map")

    # -- persistence -----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "shards": [
                {
                    "shard_id": entry.shard_id,
                    "primary": entry.primary,
                    "replicas": list(entry.replicas),
                }
                for entry in self.shards
            ],
            "placements": {
                name: {
                    "mode": placement.mode,
                    "partition_key": placement.partition_key,
                    "primary_key": placement.primary_key,
                }
                for name, placement in sorted(self.placements.items())
            },
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ShardMap":
        return cls(
            payload.get("shards") or [],
            payload.get("placements") or {},
            payload.get("version", 1),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as sink:
            json.dump(self.to_json(), sink, indent=2, sort_keys=True)
            sink.write("\n")

    @classmethod
    def load(cls, path: str) -> "ShardMap":
        with open(path, "r", encoding="utf-8") as source:
            return cls.from_json(json.load(source))

    def bumped(self, shards: Optional[list] = None) -> "ShardMap":
        """A new map (version + 1), optionally with a new shard roster."""
        rebuilt = ShardMap.from_json(self.to_json())
        if shards is not None:
            rebuilt.shards = ShardMap(shards).shards
        rebuilt.version = self.version + 1
        return rebuilt

    def __repr__(self) -> str:
        return (
            f"<ShardMap v{self.version} shards={self.num_shards} "
            f"stores={len(self.placements)}>"
        )


def demo_placements() -> dict:
    """The UniBench placement profile: the big co-partitionable stores
    hash on the keys the workload joins through (customers↔orders on the
    customer id, products↔feedback on the product number); the small
    cross-cutting stores — the social graph, the cart KV bucket, the
    vendor triples — replicate as reference data so traversals and
    per-friend lookups stay shard-local."""
    return {
        "customers": StorePlacement("hash", "id", primary_key="id"),
        "orders": StorePlacement("hash", "customer_id", primary_key="_key"),
        "products": StorePlacement("hash", "product_no", primary_key="_key"),
        "feedback": StorePlacement("hash", "product_no", primary_key="_key"),
        "cart": StorePlacement("reference"),
        "social": StorePlacement("reference"),
        "vendors": StorePlacement("reference"),
    }
