"""The central logical log — the OctopusDB idea (slides 15-16).

"All data is collected in a central log, i.e. all insert and update
operations create logical log-entries in that log.  Based on that log, define
several types of optional storage views."

Every mutation in the engine, whatever the data model, is appended here as a
:class:`LogEntry`.  Storage views (:mod:`repro.storage.views`) subscribe to
the log and maintain materialized representations — a row store, a column
store, indexes.  This is what makes the engine "one size fits all" at the
storage layer: the query optimizer's index-selection problem and the view
maintenance problem collapse into storage-view selection, exactly as the
tutorial describes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.errors import StorageError
from repro.fault import registry as fault_registry

__all__ = ["LogOp", "LogEntry", "CentralLog"]

# Fires *before* the entry is created: a crash here leaves the log (and
# therefore every subscribed view and the WAL shadow) untouched.
_FP_APPEND = fault_registry.register(
    "log.append", "central-log append, before entry creation and fan-out"
)


class LogOp(enum.Enum):
    """Logical operation kinds recorded in the central log."""

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    CREATE_NAMESPACE = "create_namespace"
    DROP_NAMESPACE = "drop_namespace"
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogEntry:
    """One immutable logical log record.

    ``namespace`` is the fully qualified store name (``"doc:orders"``,
    ``"rel:customers"``, ``"graph:knows"`` …); ``key`` is the record's
    primary key within it.  ``before`` carries the pre-image for updates and
    deletes so views (and recovery undo) can be maintained incrementally.
    """

    lsn: int
    txn_id: int
    op: LogOp
    namespace: str = ""
    key: Any = None
    value: Any = None
    before: Any = None
    meta: dict = field(default_factory=dict)

    def is_data_op(self) -> bool:
        """True for entries that change records (not txn/checkpoint marks)."""
        return self.op in (LogOp.INSERT, LogOp.UPDATE, LogOp.DELETE)


class CentralLog:
    """Append-only in-memory logical log with subscriber fan-out.

    Subscribers (storage views) are invoked synchronously on append, in
    registration order, so a view is always consistent with the log tail the
    moment :meth:`append` returns.
    """

    def __init__(self):
        self._entries: list[LogEntry] = []
        self._subscribers: list[Callable[[LogEntry], None]] = []
        self._next_lsn = 1
        # Number of entries dropped from the front by truncation; the entry
        # at list position i always has lsn == _offset + i + 1.
        self._offset = 0

    # -- writing -----------------------------------------------------------

    def append(
        self,
        txn_id: int,
        op: LogOp,
        namespace: str = "",
        key: Any = None,
        value: Any = None,
        before: Any = None,
        meta: Optional[dict] = None,
    ) -> LogEntry:
        """Create, store and fan out a new log entry; returns it."""
        if _FP_APPEND.armed:
            _FP_APPEND.check()
        entry = LogEntry(
            lsn=self._next_lsn,
            txn_id=txn_id,
            op=op,
            namespace=namespace,
            key=key,
            value=value,
            before=before,
            meta=meta or {},
        )
        self._next_lsn += 1
        self._entries.append(entry)
        for subscriber in self._subscribers:
            subscriber(entry)
        return entry

    # -- subscription ------------------------------------------------------

    def subscribe(self, callback: Callable[[LogEntry], None]) -> None:
        """Register a view-maintenance callback for future entries."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[LogEntry], None]) -> None:
        self._subscribers.remove(callback)

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    @property
    def last_lsn(self) -> int:
        """LSN of the most recent entry (0 when the log is empty)."""
        return self._next_lsn - 1

    def entries_since(self, lsn: int) -> Iterator[LogEntry]:
        """Yield entries with ``entry.lsn > lsn`` in LSN order."""
        # The retained log is dense in LSN, so position math suffices.
        start = max(lsn - self._offset, 0)
        if start >= len(self._entries):
            return iter(())
        return iter(self._entries[start:])

    def entry_at(self, lsn: int) -> LogEntry:
        """Return the entry with exactly this LSN."""
        position = lsn - self._offset - 1
        if not 0 <= position < len(self._entries):
            raise StorageError(f"no log entry with lsn {lsn}")
        return self._entries[position]

    # -- truncation --------------------------------------------------------

    def truncate_before(self, lsn: int) -> int:
        """Drop entries with ``entry.lsn < lsn`` (after a checkpoint has
        made them redundant).  Returns the number of dropped entries.

        LSNs keep counting from where they were — the log stays dense in
        *position* terms via the recorded offset.
        """
        keep_from = len(self._entries)
        for index, entry in enumerate(self._entries):
            if entry.lsn >= lsn:
                keep_from = index
                break
        del self._entries[:keep_from]
        self._offset += keep_from
        return keep_from
