"""Storage substrate: central logical log, storage views, pages, WAL, LSM.

See DESIGN.md §3 and slides 15-16 (OctopusDB), 41 (SSTables), 78-82
(index-backed views).
"""

from repro.storage.log import CentralLog, LogEntry, LogOp
from repro.storage.lsm import LsmTree, SSTable, TOMBSTONE
from repro.storage.pages import (
    PAGE_SIZE,
    BufferPool,
    PageFile,
    RecordHeap,
    RecordId,
    SlottedPage,
)
from repro.storage.views import ColumnView, IndexView, LogOnlyView, RowView
from repro.storage.wal import WriteAheadLog, recover, replay_into

__all__ = [
    "CentralLog",
    "LogEntry",
    "LogOp",
    "LsmTree",
    "SSTable",
    "TOMBSTONE",
    "PAGE_SIZE",
    "BufferPool",
    "PageFile",
    "RecordHeap",
    "RecordId",
    "SlottedPage",
    "ColumnView",
    "IndexView",
    "LogOnlyView",
    "RowView",
    "WriteAheadLog",
    "recover",
    "replay_into",
]
