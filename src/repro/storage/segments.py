"""Columnar segments with zone maps — the analytic storage format.

The batched executor (PR 5) removed per-row *pipeline* overhead, but its
batches are still lists of per-row frame dicts: every scanned row pays a
``dict(frame)`` copy and every aggregate pays a compiled-closure call.
This module adds the storage half of the fix, the "specialized engine per
workload class" the tutorial's challenge #5 asks for:

* each registered namespace (relational and wide-column tables) is
  decomposed into fixed-size **column segments** (:data:`SEGMENT_ROWS`
  rows).  Inside a segment every column is a typed ``array`` (``'q'`` for
  int-only columns, ``'d'`` for float-only) or a plain object list for
  strings/mixed values, plus a null set and per-segment **min/max zone
  maps** under the engine's cross-type total order
  (:func:`repro.core.datamodel.compare` — NULL sorts lowest, so pruning
  stays conservative for NULL and mixed-type columns);
* a :class:`ColumnBatch` carries (segment, selection vector) through the
  executor pipeline next to ordinary row batches; operators that do not
  understand columns get an exact lazy :meth:`ColumnBatch.to_rows` pivot
  — segments keep references to the *stored* row dicts, so the pivot
  reproduces precisely what a row scan would have produced.

Maintenance follows the central-log architecture: :class:`SegmentManager`
is a :class:`repro.storage.views.StorageView` subscriber, so it only sees
**committed** entries.  INSERTs append incrementally to the tail segment
(degrading a typed column to an object list when a value no longer fits);
UPDATE/DELETE mark the namespace dirty and the next scan rebuilds from
the row view — which also makes recovery free: after a WAL replay the
row view is authoritative and the first scan rebuilds the segments from
it.
"""

from __future__ import annotations

import threading
from array import array
from typing import Any, Iterable, Optional

from repro.core import datamodel
from repro.obs import metrics as obs_metrics
from repro.storage.log import CentralLog, LogEntry, LogOp
from repro.storage.views import RowView, StorageView

__all__ = [
    "SEGMENT_ROWS",
    "ColumnSegment",
    "ColumnBatch",
    "SegmentManager",
    "segment_may_match",
]

#: Rows per segment: small enough that a pruned segment skips real work,
#: large enough that the per-segment bookkeeping (zone-map check, batch
#: object) amortizes to noise over the typed-array kernels.
SEGMENT_ROWS = 1024

#: Column storage kinds.
_KIND_INT = "q"
_KIND_FLOAT = "d"
_KIND_OBJECT = "obj"

_MISSING = object()

obs_metrics.describe(
    "columnar_segment_rebuilds_total",
    "Columnar segment rebuilds from the row view (after update/delete).",
)
obs_metrics.describe(
    "columnar_segments_pruned_total",
    "Segments skipped entirely by zone-map pruning.",
)
obs_metrics.describe(
    "columnar_kernel_rows_total",
    "Rows processed by vectorized columnar kernels, by kernel type.",
)


def _classify(values: list) -> str:
    """Pick the storage kind for a freshly built column."""
    kind: Optional[str] = None
    for value in values:
        if value is None:
            continue
        value_type = type(value)
        if value_type is int:
            candidate = _KIND_INT
        elif value_type is float:
            candidate = _KIND_FLOAT
        else:
            return _KIND_OBJECT
        if kind is None:
            kind = candidate
        elif kind != candidate:
            # Mixed int/float stays an object list so stored values round-
            # trip exactly (1 stays int, 1.0 stays float).
            return _KIND_OBJECT
    return kind if kind is not None else _KIND_OBJECT


class ColumnSegment:
    """One fixed-size run of rows, decomposed per column.

    ``rows`` holds the *stored* record dicts (the same objects the row
    view holds), which is what makes :meth:`ColumnBatch.to_rows` exact.
    ``columns[name]`` is an ``array('q')``/``array('d')`` (nulls stored as
    a 0 sentinel, tracked in ``nulls[name]``) or a plain list;
    ``zone_min``/``zone_max`` cover **all** values of the column
    including NULLs, under the model total order."""

    __slots__ = ("rows", "columns", "kinds", "nulls", "zone_min", "zone_max")

    def __init__(self, rows: list, column_names: Iterable[str]):
        self.rows = rows
        self.columns: dict[str, Any] = {}
        self.kinds: dict[str, str] = {}
        self.nulls: dict[str, set] = {}
        self.zone_min: dict[str, Any] = {}
        self.zone_max: dict[str, Any] = {}
        sort_key = datamodel.SortKey
        for name in column_names:
            values = [row.get(name) for row in rows]
            kind = _classify(values)
            if kind == _KIND_OBJECT:
                column: Any = values
            else:
                try:
                    column = array(
                        kind,
                        [0 if value is None else value for value in values],
                    )
                except OverflowError:
                    # An int outside the 64-bit range: keep objects.
                    kind = _KIND_OBJECT
                    column = values
            nulls = {
                position
                for position, value in enumerate(values)
                if value is None
            }
            self.columns[name] = column
            self.kinds[name] = kind
            if nulls:
                self.nulls[name] = nulls
            if values:
                self.zone_min[name] = min(values, key=sort_key)
                self.zone_max[name] = max(values, key=sort_key)

    def __len__(self) -> int:
        return len(self.rows)

    def _degrade(self, name: str) -> list:
        """Convert a typed column to an object list (a value arrived that
        no longer fits the array type)."""
        column = self.columns[name]
        nulls = self.nulls.get(name, ())
        values = [
            None if position in nulls else value
            for position, value in enumerate(column)
        ]
        self.columns[name] = values
        self.kinds[name] = _KIND_OBJECT
        return values

    def append(self, row: dict) -> None:
        """Append one stored row, maintaining columns and zone maps."""
        position = len(self.rows)
        self.rows.append(row)
        compare = datamodel.compare
        for name, column in self.columns.items():
            value = row.get(name)
            kind = self.kinds[name]
            if value is None:
                self.nulls.setdefault(name, set()).add(position)
                column.append(0 if kind != _KIND_OBJECT else None)
            elif kind == _KIND_INT and type(value) is int:
                try:
                    column.append(value)
                except OverflowError:
                    self._degrade(name).append(value)
            elif kind == _KIND_FLOAT and type(value) is float:
                column.append(value)
            elif kind == _KIND_OBJECT:
                column.append(value)
            else:
                self._degrade(name).append(value)
            if name not in self.zone_min:
                self.zone_min[name] = value
                self.zone_max[name] = value
            else:
                if compare(value, self.zone_min[name]) < 0:
                    self.zone_min[name] = value
                if compare(value, self.zone_max[name]) > 0:
                    self.zone_max[name] = value


def segment_may_match(
    segment: ColumnSegment, column: str, op: str, value: Any
) -> bool:
    """Conservative zone-map check: ``False`` only when **no** row of the
    segment can satisfy ``column <op> value`` under the model total order.

    NULL has the lowest type tag, so a column containing NULLs gets
    ``zone_min == None`` — which correctly keeps the segment alive for
    ``<``/``<=`` predicates (NULL compares below every number) and lets
    ``>``/``>=``/``==`` prune through NULLs."""
    zone_min = segment.zone_min.get(column, _MISSING)
    if zone_min is _MISSING:
        return True
    compare = datamodel.compare
    low = compare(zone_min, value)
    high = compare(segment.zone_max[column], value)
    if op == "==":
        return low <= 0 <= high
    if op == ">":
        return high > 0
    if op == ">=":
        return high >= 0
    if op == "<":
        return low < 0
    if op == "<=":
        return low <= 0
    return True


class ColumnBatch:
    """A pipeline batch in columnar form: one segment view plus an
    optional selection vector (row positions that survived filtering).

    Columnar-aware operators (filter kernels, COLLECT aggregates, RETURN
    projections) read the typed columns directly; everything else —
    probes, SORT, LIMIT slicing, nested FOR, DML — falls back through the
    sequence protocol, which pivots lazily (and exactly) to the row
    frames a row scan would have produced."""

    __slots__ = ("var", "base", "segment", "length", "selection", "_rows")

    def __init__(
        self,
        var: str,
        base: dict,
        segment: ColumnSegment,
        length: int,
        selection: Optional[list] = None,
    ):
        self.var = var
        self.base = base
        self.segment = segment
        #: Row count captured at scan time — the tail segment may grow
        #: concurrently; positions >= length are never read.
        self.length = length
        self.selection = selection
        self._rows: Optional[list] = None

    def indices(self):
        """Selected row positions, scan order."""
        if self.selection is None:
            return range(self.length)
        return self.selection

    def with_selection(self, selection: list) -> "ColumnBatch":
        return ColumnBatch(
            self.var, self.base, self.segment, self.length, selection
        )

    def to_rows(self) -> list:
        """Pivot to ordinary frame batches (cached).  Exact: the stored
        row dicts are reused, so sparse wide-column rows, nested values
        and object identity all match the row-scan path."""
        rows = self._rows
        if rows is None:
            stored = self.segment.rows
            var = self.var
            base = self.base
            if base:
                rows = []
                for position in self.indices():
                    frame = dict(base)
                    frame[var] = stored[position]
                    rows.append(frame)
            else:
                rows = [{var: stored[position]} for position in self.indices()]
            self._rows = rows
        return rows

    def __len__(self) -> int:
        if self.selection is None:
            return self.length
        return len(self.selection)

    def __iter__(self):
        return iter(self.to_rows())

    def __getitem__(self, item):
        return self.to_rows()[item]


class _Namespace:
    __slots__ = ("column_names", "segments", "dirty", "rebuilds", "appends")

    def __init__(self, column_names: tuple):
        self.column_names = column_names
        self.segments: list[ColumnSegment] = []
        #: Dirty until the first scan builds the segments; set again by
        #: UPDATE/DELETE (lazy rebuild keeps random writes cheap).
        self.dirty = True
        self.rebuilds = 0
        self.appends = 0


class SegmentManager(StorageView):
    """Maintains columnar segments for registered namespaces from the
    central log (commit-time entries only, like every storage view).

    * ``register(namespace, columns)`` — called by the relational and
      wide-column stores at creation; the first scan builds segments from
      the row view (so registering over existing data, or after a WAL
      replay, just works).
    * INSERT appends to the tail segment incrementally (zone maps update
      in place); UPDATE/DELETE mark the namespace dirty and the next scan
      rebuilds; DROP resets.
    * ``segments_for_scan`` returns a snapshot list of
      ``(segment, row_count)`` pairs — the captured count shields readers
      from concurrent tail appends.
    """

    name = "segments"

    def __init__(
        self,
        log: CentralLog,
        rows: RowView,
        segment_rows: int = SEGMENT_ROWS,
    ):
        self._rows = rows
        self._spaces: dict[str, _Namespace] = {}
        self._lock = threading.RLock()
        self.segment_rows = max(int(segment_rows), 1)
        super().__init__(log, subscribe=True)

    # -- registration ------------------------------------------------------

    def register(self, namespace: str, column_names: Iterable[str]) -> None:
        """(Re)register a namespace for columnar maintenance."""
        with self._lock:
            self._spaces[namespace] = _Namespace(tuple(column_names))

    def registered(self, namespace: str) -> bool:
        return namespace in self._spaces

    # -- log maintenance ---------------------------------------------------

    def _apply_data(self, entry: LogEntry) -> None:
        space = self._spaces.get(entry.namespace)
        if space is None:
            return
        with self._lock:
            if entry.op is LogOp.INSERT and not space.dirty:
                self._append(space, entry.value)
            else:
                # UPDATE/DELETE (or an INSERT before the first build):
                # positions shift or values change in place — rebuild
                # lazily on the next scan.
                space.dirty = True

    def _drop_namespace(self, namespace: str) -> None:
        space = self._spaces.get(namespace)
        if space is None:
            return
        with self._lock:
            space.segments = []
            space.dirty = True

    def _append(self, space: _Namespace, row: Any) -> None:
        if not isinstance(row, dict):
            space.dirty = True
            return
        segments = space.segments
        if not segments or len(segments[-1]) >= self.segment_rows:
            segments.append(ColumnSegment([], space.column_names))
        segments[-1].append(row)
        space.appends += 1

    # -- scanning ----------------------------------------------------------

    def _rebuild(self, namespace: str, space: _Namespace) -> None:
        rows = [value for _key, value in self._rows.scan(namespace)]
        width = self.segment_rows
        space.segments = [
            ColumnSegment(rows[start:start + width], space.column_names)
            for start in range(0, len(rows), width)
        ]
        space.dirty = False
        space.rebuilds += 1
        if obs_metrics.ENABLED:
            obs_metrics.counter("columnar_segment_rebuilds_total").inc()

    def segments_for_scan(
        self, namespace: str
    ) -> Optional[list[tuple[ColumnSegment, int]]]:
        """Snapshot of ``(segment, captured_row_count)`` pairs for a scan,
        or ``None`` when the namespace is not registered.  Rebuilds first
        when dirty."""
        with self._lock:
            space = self._spaces.get(namespace)
            if space is None:
                return None
            if space.dirty:
                self._rebuild(namespace, space)
            return [
                (segment, len(segment))
                for segment in space.segments
                if len(segment)
            ]

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "namespaces": len(self._spaces),
                "segments": sum(
                    len(space.segments) for space in self._spaces.values()
                ),
                "rows": sum(
                    len(segment)
                    for space in self._spaces.values()
                    for segment in space.segments
                ),
                "rebuilds": sum(
                    space.rebuilds for space in self._spaces.values()
                ),
                "appends": sum(
                    space.appends for space in self._spaces.values()
                ),
            }
