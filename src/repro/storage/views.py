"""Storage views over the central log (OctopusDB, slides 15-16).

"Based on that log, define several types of optional storage views. The query
optimization, view maintenance, and index selection problems suddenly become
a single problem: storage view selection."

Four view kinds are provided, matching the architectures the tutorial
surveys:

* :class:`LogOnlyView` — nothing materialized; every read replays the log
  (the OctopusDB baseline, and the slowest point of experiment E15);
* :class:`RowView` — a primary row store (key → record), the OLTP layout;
* :class:`ColumnView` — per-attribute columns (HPE Vertica / Cassandra
  style), the scan/analytics layout;
* :class:`IndexView` — a secondary index on one document path, backed by any
  index structure from :mod:`repro.indexes`.

Views only apply *committed* effects when driven through
:class:`repro.txn.manager.TransactionManager`; when used standalone (as in
the storage benchmarks) every entry applies immediately.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterator, Optional

from repro.core import datamodel
from repro.errors import StorageError
from repro.storage.log import CentralLog, LogEntry, LogOp

__all__ = ["StorageView", "LogOnlyView", "RowView", "ColumnView", "IndexView"]


class StorageView:
    """Base class: a materialized structure maintained from the log."""

    name = "view"

    def __init__(self, log: CentralLog, subscribe: bool = True):
        self._log = log
        self._applied_lsn = 0
        if subscribe:
            log.subscribe(self.apply)

    def apply(self, entry: LogEntry) -> None:
        """Incorporate one log entry (idempotent per LSN)."""
        if entry.lsn <= self._applied_lsn:
            return
        self._applied_lsn = entry.lsn
        if entry.is_data_op():
            self._apply_data(entry)
        elif entry.op is LogOp.DROP_NAMESPACE:
            self._drop_namespace(entry.namespace)

    def catch_up(self) -> int:
        """Replay any log entries this view has not seen yet; returns the
        number applied.  Used after creating a view on an existing log."""
        applied = 0
        for entry in self._log.entries_since(self._applied_lsn):
            self.apply(entry)
            applied += 1
        return applied

    # Subclass API -----------------------------------------------------

    def _apply_data(self, entry: LogEntry) -> None:
        raise NotImplementedError

    def _drop_namespace(self, namespace: str) -> None:
        raise NotImplementedError


class LogOnlyView(StorageView):
    """No materialization: reads replay the whole log (slide 16 baseline).

    Point reads and scans are O(log length); the storage-view benchmark
    (E15) uses this as the floor every materialized view is compared to.
    """

    name = "log-only"

    def _apply_data(self, entry: LogEntry) -> None:
        # Nothing is materialized, by design.
        return

    def _drop_namespace(self, namespace: str) -> None:
        return

    def get(self, namespace: str, key: Any) -> Any:
        """Replay the log to find the latest value for (namespace, key)."""
        value = None
        for entry in self._log:
            if entry.op is LogOp.DROP_NAMESPACE and entry.namespace == namespace:
                value = None
            if not entry.is_data_op() or entry.namespace != namespace:
                continue
            if datamodel.values_equal(entry.key, key):
                value = None if entry.op is LogOp.DELETE else entry.value
        return value

    def scan(self, namespace: str) -> Iterator[tuple[Any, Any]]:
        """Replay the log and yield the live (key, value) pairs."""
        state: dict[int, tuple[Any, Any]] = {}
        for entry in self._log:
            if entry.op is LogOp.DROP_NAMESPACE and entry.namespace == namespace:
                state.clear()
            if not entry.is_data_op() or entry.namespace != namespace:
                continue
            hashed = datamodel.hash_value(entry.key)
            if entry.op is LogOp.DELETE:
                state.pop(hashed, None)
            else:
                state[hashed] = (entry.key, entry.value)
        return iter(list(state.values()))


class RowView(StorageView):
    """Primary row store: namespace → {key → record}.

    This is the view every model API reads through by default; point reads
    are O(1) and scans stream the dict values.
    """

    name = "row"

    def __init__(self, log: CentralLog, subscribe: bool = True):
        super().__init__(log, subscribe)
        self._rows: dict[str, dict[Any, Any]] = defaultdict(dict)

    def _apply_data(self, entry: LogEntry) -> None:
        rows = self._rows[entry.namespace]
        if entry.op is LogOp.DELETE:
            rows.pop(entry.key, None)
        else:
            rows[entry.key] = entry.value

    def _drop_namespace(self, namespace: str) -> None:
        self._rows.pop(namespace, None)

    def get(self, namespace: str, key: Any) -> Any:
        return self._rows.get(namespace, {}).get(key)

    def contains(self, namespace: str, key: Any) -> bool:
        return key in self._rows.get(namespace, {})

    def scan(self, namespace: str) -> Iterator[tuple[Any, Any]]:
        return iter(list(self._rows.get(namespace, {}).items()))

    def keys(self, namespace: str) -> Iterator[Any]:
        return iter(list(self._rows.get(namespace, {}).keys()))

    def count(self, namespace: str) -> int:
        return len(self._rows.get(namespace, {}))

    def namespaces(self) -> list[str]:
        return sorted(self._rows)


class ColumnView(StorageView):
    """Column-oriented view: namespace → {attribute → {key → value}}.

    Only top-level attributes of object records are decomposed (nested
    values stay intact inside their column), matching Vertica flex tables
    where the map holds whole values per key.  Non-object records land in
    the pseudo-column ``"$value"``.
    """

    name = "column"

    VALUE_COLUMN = "$value"

    def __init__(self, log: CentralLog, subscribe: bool = True):
        super().__init__(log, subscribe)
        self._columns: dict[str, dict[str, dict[Any, Any]]] = defaultdict(
            lambda: defaultdict(dict)
        )
        # Track which columns each key populated so deletes are exact.
        self._row_columns: dict[str, dict[Any, tuple[str, ...]]] = defaultdict(dict)

    def _apply_data(self, entry: LogEntry) -> None:
        columns = self._columns[entry.namespace]
        row_columns = self._row_columns[entry.namespace]
        previous = row_columns.pop(entry.key, ())
        for column in previous:
            columns[column].pop(entry.key, None)
        if entry.op is LogOp.DELETE:
            return
        record = entry.value
        if datamodel.type_of(record) is datamodel.TypeTag.OBJECT:
            for attribute, value in record.items():
                columns[attribute][entry.key] = value
            row_columns[entry.key] = tuple(record.keys())
        else:
            columns[self.VALUE_COLUMN][entry.key] = record
            row_columns[entry.key] = (self.VALUE_COLUMN,)

    def _drop_namespace(self, namespace: str) -> None:
        self._columns.pop(namespace, None)
        self._row_columns.pop(namespace, None)

    def column_names(self, namespace: str) -> list[str]:
        return sorted(self._columns.get(namespace, {}))

    def scan_column(self, namespace: str, column: str) -> Iterator[tuple[Any, Any]]:
        """Yield (key, value) for one attribute — the analytics fast path."""
        return iter(list(self._columns.get(namespace, {}).get(column, {}).items()))

    def count(self, namespace: str) -> int:
        return len(self._row_columns.get(namespace, {}))


class IndexView(StorageView):
    """A secondary index maintained from the log.

    ``index`` is any object with the small index protocol from
    :mod:`repro.indexes.base` (``insert(key, rid)``, ``delete(key, rid)``,
    ``search(key)``, optionally ``range_search``).  ``path`` selects which
    part of the record is indexed (empty path indexes the whole record).
    """

    name = "index"

    def __init__(
        self,
        log: CentralLog,
        namespace: str,
        path: tuple,
        index: Any,
        subscribe: bool = True,
    ):
        self.namespace = namespace
        self.path = tuple(path)
        self.index = index
        super().__init__(log, subscribe)

    def _extract(self, record: Any) -> Any:
        if not self.path:
            return record
        return datamodel.deep_get(record, self.path)

    def _apply_data(self, entry: LogEntry) -> None:
        if entry.namespace != self.namespace:
            return
        if entry.op in (LogOp.UPDATE, LogOp.DELETE) and entry.before is not None:
            self.index.delete(self._extract(entry.before), entry.key)
        if entry.op in (LogOp.INSERT, LogOp.UPDATE):
            indexed = self._extract(entry.value)
            if indexed is not None:
                self.index.insert(indexed, entry.key)

    def _drop_namespace(self, namespace: str) -> None:
        if namespace == self.namespace:
            self.index.clear()

    def search(self, value: Any) -> list[Any]:
        """Primary keys of records whose indexed value equals *value*."""
        return self.index.search(value)

    def range_search(self, low: Any, high: Any, **kwargs) -> list[Any]:
        if not hasattr(self.index, "range_search"):
            raise StorageError(
                f"index view on {self.namespace}:{self.path} does not "
                "support range search"
            )
        return self.index.range_search(low, high, **kwargs)
