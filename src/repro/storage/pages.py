"""Slotted pages, a page file, a buffer pool, and a record heap.

The tutorial surveys engines whose storage bottoms out in pages (PostgreSQL,
DB2, Oracle) — this module is that substrate.  It is used by the persistence
path and by the storage benchmarks; the in-memory row view remains the fast
path for queries.

Layout of a slotted page (all integers big-endian, 4 bytes):

    [ slot_count | free_offset | slot_0 (off,len) | slot_1 … ]  …  [ data ]

Records grow from the end of the page toward the slot directory.  Deleted
slots keep their entry with length 0 (tombstone) so record ids stay stable;
space is reclaimed by :meth:`SlottedPage.compact`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import PageError

__all__ = ["PAGE_SIZE", "RecordId", "SlottedPage", "PageFile", "BufferPool", "RecordHeap"]

PAGE_SIZE = 4096
_HEADER = struct.Struct(">II")  # slot_count, free_offset
_SLOT = struct.Struct(">II")  # offset, length


@dataclass(frozen=True, order=True)
class RecordId:
    """Stable address of a record: (page number, slot number)."""

    page: int
    slot: int

    def __repr__(self) -> str:
        return f"rid({self.page},{self.slot})"


class SlottedPage:
    """One fixed-size page with a slot directory."""

    def __init__(self, data: Optional[bytearray] = None):
        if data is None:
            self._data = bytearray(PAGE_SIZE)
            self._set_header(0, PAGE_SIZE)
        else:
            if len(data) != PAGE_SIZE:
                raise PageError(f"page must be {PAGE_SIZE} bytes, got {len(data)}")
            self._data = bytearray(data)

    # -- header/slot accessors ------------------------------------------------

    def _header(self) -> tuple[int, int]:
        return _HEADER.unpack_from(self._data, 0)

    def _set_header(self, slot_count: int, free_offset: int) -> None:
        _HEADER.pack_into(self._data, 0, slot_count, free_offset)

    def _slot(self, slot: int) -> tuple[int, int]:
        return _SLOT.unpack_from(self._data, _HEADER.size + slot * _SLOT.size)

    def _set_slot(self, slot: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self._data, _HEADER.size + slot * _SLOT.size, offset, length)

    # -- public API ------------------------------------------------------------

    @property
    def slot_count(self) -> int:
        return self._header()[0]

    def free_space(self) -> int:
        """Bytes available for one more record (including its slot entry)."""
        slot_count, free_offset = self._header()
        directory_end = _HEADER.size + (slot_count + 1) * _SLOT.size
        return max(free_offset - directory_end, 0)

    def insert(self, record: bytes) -> int:
        """Store *record*, returning its slot number."""
        if len(record) > PAGE_SIZE - _HEADER.size - _SLOT.size:
            raise PageError(
                f"record of {len(record)} bytes can never fit in a page"
            )
        if len(record) + _SLOT.size > self.free_space():
            raise PageError("page full")
        slot_count, free_offset = self._header()
        new_offset = free_offset - len(record)
        self._data[new_offset:free_offset] = record
        self._set_slot(slot_count, new_offset, len(record))
        self._set_header(slot_count + 1, new_offset)
        return slot_count

    def read(self, slot: int) -> bytes:
        offset, length = self._checked_slot(slot)
        if length == 0:
            raise PageError(f"slot {slot} is deleted")
        return bytes(self._data[offset:offset + length])

    def delete(self, slot: int) -> None:
        """Tombstone the slot (record ids of other slots stay valid)."""
        self._checked_slot(slot)
        self._set_slot(slot, 0, 0)

    def is_live(self, slot: int) -> bool:
        _offset, length = self._checked_slot(slot)
        return length > 0

    def records(self) -> Iterator[tuple[int, bytes]]:
        """Yield (slot, record) for live slots."""
        for slot in range(self.slot_count):
            offset, length = self._slot(slot)
            if length:
                yield slot, bytes(self._data[offset:offset + length])

    def compact(self) -> dict[int, int]:
        """Rewrite the page dropping tombstones; returns {old_slot: new_slot}."""
        live = list(self.records())
        self._data = bytearray(PAGE_SIZE)
        self._set_header(0, PAGE_SIZE)
        mapping = {}
        for old_slot, record in live:
            mapping[old_slot] = self.insert(record)
        return mapping

    def to_bytes(self) -> bytes:
        return bytes(self._data)

    def _checked_slot(self, slot: int) -> tuple[int, int]:
        if not 0 <= slot < self.slot_count:
            raise PageError(f"slot {slot} out of range (page has {self.slot_count})")
        return self._slot(slot)


class PageFile:
    """A growable array of pages, optionally backed by a real file."""

    def __init__(self, path: Optional[str] = None):
        self._path = path
        self._pages: list[bytearray] = []
        if path is not None:
            self._load()

    def _load(self) -> None:
        try:
            with open(self._path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return
        if len(raw) % PAGE_SIZE:
            raise PageError(f"{self._path} is not a whole number of pages")
        for start in range(0, len(raw), PAGE_SIZE):
            self._pages.append(bytearray(raw[start:start + PAGE_SIZE]))

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def allocate(self) -> int:
        self._pages.append(bytearray(SlottedPage().to_bytes()))
        return len(self._pages) - 1

    def read_page(self, page_number: int) -> bytearray:
        if not 0 <= page_number < len(self._pages):
            raise PageError(f"page {page_number} does not exist")
        return bytearray(self._pages[page_number])

    def write_page(self, page_number: int, data: bytes) -> None:
        if not 0 <= page_number < len(self._pages):
            raise PageError(f"page {page_number} does not exist")
        if len(data) != PAGE_SIZE:
            raise PageError("page data has wrong size")
        self._pages[page_number] = bytearray(data)

    def sync(self) -> None:
        """Write all pages back to the backing file (no-op when in-memory)."""
        if self._path is None:
            return
        with open(self._path, "wb") as handle:
            for page in self._pages:
                handle.write(page)


class BufferPool:
    """LRU buffer pool over a :class:`PageFile` with hit/miss accounting."""

    def __init__(self, file: PageFile, capacity: int = 64):
        if capacity < 1:
            raise ValueError("buffer pool needs capacity >= 1")
        self._file = file
        self._capacity = capacity
        self._frames: dict[int, SlottedPage] = {}
        self._dirty: set[int] = set()
        self._lru: list[int] = []
        self.hits = 0
        self.misses = 0

    def get(self, page_number: int) -> SlottedPage:
        if page_number in self._frames:
            self.hits += 1
            self._lru.remove(page_number)
            self._lru.append(page_number)
            return self._frames[page_number]
        self.misses += 1
        if len(self._frames) >= self._capacity:
            self._evict()
        page = SlottedPage(self._file.read_page(page_number))
        self._frames[page_number] = page
        self._lru.append(page_number)
        return page

    def mark_dirty(self, page_number: int) -> None:
        if page_number not in self._frames:
            raise PageError(f"page {page_number} is not resident")
        self._dirty.add(page_number)

    def _evict(self) -> None:
        victim = self._lru.pop(0)
        page = self._frames.pop(victim)
        if victim in self._dirty:
            self._file.write_page(victim, page.to_bytes())
            self._dirty.discard(victim)

    def flush(self) -> None:
        """Write every dirty resident page back."""
        for page_number in sorted(self._dirty):
            self._file.write_page(page_number, self._frames[page_number].to_bytes())
        self._dirty.clear()
        self._file.sync()


class RecordHeap:
    """A heap of variable-length records over pages + buffer pool.

    Records are opaque bytes; callers serialize with
    :func:`repro.core.datamodel.canonical_json`.
    """

    def __init__(self, file: Optional[PageFile] = None, pool_capacity: int = 64):
        self._file = file or PageFile()
        self._pool = BufferPool(self._file, pool_capacity)
        self._last_page: Optional[int] = (
            self._file.page_count - 1 if self._file.page_count else None
        )
        self._live = 0
        if self._file.page_count:
            self._live = sum(
                1
                for page_number in range(self._file.page_count)
                for _ in SlottedPage(self._file.read_page(page_number)).records()
            )

    @property
    def pool(self) -> BufferPool:
        return self._pool

    def __len__(self) -> int:
        return self._live

    def insert(self, record: bytes) -> RecordId:
        if self._last_page is not None:
            page = self._pool.get(self._last_page)
            if page.free_space() >= len(record) + 8:
                slot = page.insert(record)
                self._pool.mark_dirty(self._last_page)
                self._live += 1
                return RecordId(self._last_page, slot)
        self._last_page = self._file.allocate()
        page = self._pool.get(self._last_page)
        slot = page.insert(record)
        self._pool.mark_dirty(self._last_page)
        self._live += 1
        return RecordId(self._last_page, slot)

    def read(self, rid: RecordId) -> bytes:
        return self._pool.get(rid.page).read(rid.slot)

    def delete(self, rid: RecordId) -> None:
        self._pool.get(rid.page).delete(rid.slot)
        self._pool.mark_dirty(rid.page)
        self._live -= 1

    def update(self, rid: RecordId, record: bytes) -> RecordId:
        """Replace a record; may relocate (returns the new rid)."""
        self.delete(rid)
        return self.insert(record)

    def scan(self) -> Iterator[tuple[RecordId, bytes]]:
        for page_number in range(self._file.page_count):
            page = self._pool.get(page_number)
            for slot, record in page.records():
                yield RecordId(page_number, slot), record

    def flush(self) -> None:
        self._pool.flush()
