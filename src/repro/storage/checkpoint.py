"""Checkpoints: bounding recovery time and log growth.

A checkpoint materializes the committed state (every namespace of the row
view) plus the covering LSN into one JSON file.  Recovery then becomes
*load checkpoint + replay the WAL tail*, and the WAL can be truncated up to
the checkpoint LSN — the standard protocol, applied to the central logical
log.

Checkpoints must be taken at a quiescent point (no active transactions);
:meth:`Checkpointer.write` asserts this via the transaction manager when
one is supplied.  Because the engine publishes a transaction's writes to
the log atomically (writes + COMMIT appended back-to-back under the commit
mutex), any LSN between transactions is a consistent cut.
"""

from __future__ import annotations

import contextlib
import json
import os
from typing import Any, Optional

from repro.core.datamodel import canonical_json
from repro.errors import RecoveryError, SimulatedCrash
from repro.fault import io as fault_io
from repro.fault import registry as fault_registry
from repro.obs import metrics as obs_metrics
from repro.storage.log import CentralLog, LogOp
from repro.storage.views import RowView
from repro.storage.wal import WriteAheadLog

__all__ = ["write_checkpoint", "load_checkpoint", "recover_from_checkpoint", "truncate_wal"]

_FORMAT_VERSION = 1

_CHECKPOINTS_WRITTEN = obs_metrics.counter("checkpoints_written_total")
_RECOVERY_RUNS = obs_metrics.counter("recovery_runs_total")

# Failpoint sites on the checkpoint publish path.  A crash at any of them
# must leave either the previous checkpoint or no checkpoint — never a
# truncated one (write-tmp + fsync + rename + dir fsync).
_FP_WRITE = fault_registry.register(
    "checkpoint.write", "writing the checkpoint JSON to the temp file"
)
_FP_FSYNC = fault_registry.register(
    "checkpoint.fsync", "fsync of the temp checkpoint file"
)
_FP_RENAME = fault_registry.register(
    "checkpoint.rename", "atomic rename of temp over the checkpoint"
)
_FP_DIR_FSYNC = fault_registry.register(
    "checkpoint.dir_fsync", "directory fsync making the rename durable"
)


def write_checkpoint(
    path: str,
    rows: RowView,
    log: CentralLog,
    transactions: Any = None,
) -> int:
    """Write a checkpoint file covering everything up to the current LSN;
    returns that LSN.  Refuses when transactions are still active."""
    if transactions is not None and transactions.active_count:
        raise RecoveryError(
            f"cannot checkpoint with {transactions.active_count} active "
            "transaction(s)"
        )
    lsn = log.last_lsn
    snapshot = {
        "version": _FORMAT_VERSION,
        "lsn": lsn,
        "namespaces": {
            namespace: [[key, value] for key, value in rows.scan(namespace)]
            for namespace in rows.namespaces()
        },
    }
    # Crash-safe publish: write the whole snapshot to a temp file, fsync it
    # (the bytes, not just the metadata, must be on disk *before* the
    # rename), atomically rename over the live checkpoint, then fsync the
    # directory so the rename itself survives a power cut.  A crash at any
    # point leaves either the old checkpoint or none — never a torn one.
    temp_path = path + ".tmp"
    try:
        with open(temp_path, "w", encoding="utf-8") as handle:
            fault_io.write(handle, canonical_json(snapshot), _FP_WRITE)
            fault_io.fsync(handle, _FP_FSYNC)
        fault_io.rename(temp_path, path, _FP_RENAME)
    except SimulatedCrash:
        # A crashed process cannot clean up: the orphan temp file stays on
        # disk, and recovery must (and does) ignore it.
        raise
    except BaseException:
        # Leave no stale temp file behind on a recoverable failure.
        with contextlib.suppress(OSError):
            os.remove(temp_path)
        raise
    fault_io.dir_fsync(path, _FP_DIR_FSYNC)
    if obs_metrics.ENABLED:
        _CHECKPOINTS_WRITTEN.inc()
    return lsn


def load_checkpoint(path: str) -> tuple[int, dict]:
    """Read a checkpoint file; returns (covered lsn, {namespace: pairs})."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except FileNotFoundError:
        return 0, {}
    except json.JSONDecodeError as error:
        raise RecoveryError(f"corrupt checkpoint {path!r}: {error}") from error
    if snapshot.get("version") != _FORMAT_VERSION:
        raise RecoveryError(
            f"checkpoint {path!r} has version {snapshot.get('version')!r}, "
            f"expected {_FORMAT_VERSION}"
        )
    return snapshot["lsn"], snapshot["namespaces"]


def recover_from_checkpoint(
    checkpoint_path: str,
    wal_path: str,
    log: CentralLog,
) -> tuple[int, int]:
    """Rebuild state into *log*: checkpoint contents first, then the WAL
    tail (committed transactions with lsn beyond the checkpoint).

    Returns (records from checkpoint, records redone from the WAL tail).
    """
    if obs_metrics.ENABLED:
        _RECOVERY_RUNS.inc()
    covered_lsn, namespaces = load_checkpoint(checkpoint_path)
    from_checkpoint = 0
    for namespace, pairs in namespaces.items():
        for key, value in pairs:
            log.append(0, LogOp.INSERT, namespace, key, value)
            from_checkpoint += 1

    records = [
        record
        for record in WriteAheadLog.read_records(wal_path)
        if record["lsn"] > covered_lsn
    ]
    committed = {
        record["txn"] for record in records if record["op"] == LogOp.COMMIT.value
    }
    aborted = {
        record["txn"] for record in records if record["op"] == LogOp.ABORT.value
    }
    data_ops = {LogOp.INSERT.value, LogOp.UPDATE.value, LogOp.DELETE.value}
    redone = 0
    for record in records:
        if record["op"] in data_ops:
            if record["txn"] in committed and record["txn"] not in aborted:
                log.append(
                    record["txn"],
                    LogOp(record["op"]),
                    record["ns"],
                    record["key"],
                    record["value"],
                    record["before"],
                )
                redone += 1
        elif record["op"] == LogOp.DROP_NAMESPACE.value:
            log.append(record["txn"], LogOp.DROP_NAMESPACE, record["ns"])
    return from_checkpoint, redone


def truncate_wal(wal_path: str, up_to_lsn: int) -> int:
    """Drop WAL records covered by a checkpoint; returns how many were
    dropped.  Rewrites the file atomically."""
    kept_lines = []
    dropped = 0
    for record in WriteAheadLog.read_records(wal_path):
        if record["lsn"] > up_to_lsn:
            kept_lines.append(record)
        else:
            dropped += 1
    temp_path = wal_path + ".tmp"
    with WriteAheadLog(temp_path, sync=False) as wal:
        for record in kept_lines:
            wal.append(
                record["lsn"],
                record["txn"],
                record["op"],
                record["ns"],
                record["key"],
                record["value"],
                record["before"],
            )
    os.replace(temp_path, wal_path)
    return dropped
