"""Checkpoints: bounding recovery time and log growth.

A checkpoint materializes the committed state (every namespace of the row
view) plus the covering LSN into one JSON file.  Recovery then becomes
*load checkpoint + replay the WAL tail*, and the WAL can be truncated up to
the checkpoint LSN — the standard protocol, applied to the central logical
log.

Checkpoints must be taken at a quiescent point (no active transactions);
:meth:`Checkpointer.write` asserts this via the transaction manager when
one is supplied.  Because the engine publishes a transaction's writes to
the log atomically (writes + COMMIT appended back-to-back under the commit
mutex), any LSN between transactions is a consistent cut.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional

from repro.core.datamodel import canonical_json
from repro.errors import RecoveryError
from repro.storage.log import CentralLog, LogOp
from repro.storage.views import RowView
from repro.storage.wal import WriteAheadLog

__all__ = ["write_checkpoint", "load_checkpoint", "recover_from_checkpoint", "truncate_wal"]

_FORMAT_VERSION = 1


def write_checkpoint(
    path: str,
    rows: RowView,
    log: CentralLog,
    transactions: Any = None,
) -> int:
    """Write a checkpoint file covering everything up to the current LSN;
    returns that LSN.  Refuses when transactions are still active."""
    if transactions is not None and transactions.active_count:
        raise RecoveryError(
            f"cannot checkpoint with {transactions.active_count} active "
            "transaction(s)"
        )
    lsn = log.last_lsn
    snapshot = {
        "version": _FORMAT_VERSION,
        "lsn": lsn,
        "namespaces": {
            namespace: [[key, value] for key, value in rows.scan(namespace)]
            for namespace in rows.namespaces()
        },
    }
    temp_path = path + ".tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(snapshot))
    os.replace(temp_path, path)  # atomic publish
    return lsn


def load_checkpoint(path: str) -> tuple[int, dict]:
    """Read a checkpoint file; returns (covered lsn, {namespace: pairs})."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except FileNotFoundError:
        return 0, {}
    except json.JSONDecodeError as error:
        raise RecoveryError(f"corrupt checkpoint {path!r}: {error}") from error
    if snapshot.get("version") != _FORMAT_VERSION:
        raise RecoveryError(
            f"checkpoint {path!r} has version {snapshot.get('version')!r}, "
            f"expected {_FORMAT_VERSION}"
        )
    return snapshot["lsn"], snapshot["namespaces"]


def recover_from_checkpoint(
    checkpoint_path: str,
    wal_path: str,
    log: CentralLog,
) -> tuple[int, int]:
    """Rebuild state into *log*: checkpoint contents first, then the WAL
    tail (committed transactions with lsn beyond the checkpoint).

    Returns (records from checkpoint, records redone from the WAL tail).
    """
    covered_lsn, namespaces = load_checkpoint(checkpoint_path)
    from_checkpoint = 0
    for namespace, pairs in namespaces.items():
        for key, value in pairs:
            log.append(0, LogOp.INSERT, namespace, key, value)
            from_checkpoint += 1

    records = [
        record
        for record in WriteAheadLog.read_records(wal_path)
        if record["lsn"] > covered_lsn
    ]
    committed = {
        record["txn"] for record in records if record["op"] == LogOp.COMMIT.value
    }
    aborted = {
        record["txn"] for record in records if record["op"] == LogOp.ABORT.value
    }
    data_ops = {LogOp.INSERT.value, LogOp.UPDATE.value, LogOp.DELETE.value}
    redone = 0
    for record in records:
        if record["op"] in data_ops:
            if record["txn"] in committed and record["txn"] not in aborted:
                log.append(
                    record["txn"],
                    LogOp(record["op"]),
                    record["ns"],
                    record["key"],
                    record["value"],
                    record["before"],
                )
                redone += 1
        elif record["op"] == LogOp.DROP_NAMESPACE.value:
            log.append(record["txn"], LogOp.DROP_NAMESPACE, record["ns"])
    return from_checkpoint, redone


def truncate_wal(wal_path: str, up_to_lsn: int) -> int:
    """Drop WAL records covered by a checkpoint; returns how many were
    dropped.  Rewrites the file atomically."""
    kept_lines = []
    dropped = 0
    for record in WriteAheadLog.read_records(wal_path):
        if record["lsn"] > up_to_lsn:
            kept_lines.append(record)
        else:
            dropped += 1
    temp_path = wal_path + ".tmp"
    with WriteAheadLog(temp_path, sync=False) as wal:
        for record in kept_lines:
            wal.append(
                record["lsn"],
                record["txn"],
                record["op"],
                record["ns"],
                record["key"],
                record["value"],
                record["before"],
            )
    os.replace(temp_path, wal_path)
    return dropped
