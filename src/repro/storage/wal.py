"""Write-ahead log with redo recovery.

The tutorial's multi-model pitch (slide 23) includes "one system implements
fault tolerance".  This module provides that for the whole engine: every
logical change is written to a WAL file *before* it is acknowledged, commits
append a commit record, and :func:`recover` rebuilds a consistent central
log from the file by redoing exactly the operations of committed
transactions — uncommitted tails are discarded (redo-only, no undo needed,
because views are rebuilt from scratch on recovery).

Records are length-free JSON lines prefixed with a CRC32 checksum; a torn
final line (simulated crash mid-write) is detected and dropped.  Early seed
WALs predate the checksum prefix and are plain JSON lines — the read path
still accepts those (parsed, but with no integrity check to offer), so an
upgraded engine can recover a pre-checksum data directory in place.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from typing import Any, Iterator, Optional

from repro.core.datamodel import canonical_json
from repro.errors import WalError
from repro.fault import io as fault_io
from repro.fault import registry as fault_registry
from repro.obs import metrics as obs_metrics
from repro.storage.log import CentralLog, LogOp

__all__ = ["WriteAheadLog", "entry_to_record", "recover", "replay_into"]

# Module-level metric handles: created once, cheap to touch, survive
# registry resets.
_WAL_APPENDS = obs_metrics.counter("wal_appends_total")
_WAL_FSYNCS = obs_metrics.counter("wal_fsyncs_total")
_WAL_APPEND_SECONDS = obs_metrics.histogram("wal_append_seconds")
_WAL_REPLAYED = obs_metrics.counter("wal_records_replayed_total")
_RECOVERY_RUNS = obs_metrics.counter("recovery_runs_total")
_WAL_CRC_FAILURES = obs_metrics.counter("wal_crc_failures_total")

# Failpoint sites on the WAL durability path (see docs/ROBUSTNESS.md).
_FP_APPEND_WRITE = fault_registry.register(
    "wal.append.write", "writing one WAL record line"
)
_FP_APPEND_FSYNC = fault_registry.register(
    "wal.append.fsync", "per-append fsync (sync=True)"
)
_FP_FLUSH_FSYNC = fault_registry.register(
    "wal.flush.fsync", "explicit WriteAheadLog.flush()"
)
_FP_CLOSE_FSYNC = fault_registry.register(
    "wal.close.fsync", "final fsync on clean close"
)


class WriteAheadLog:
    """Durable, append-only JSON-line WAL.

    ``sync`` controls whether each append flushes to the OS (the benchmark
    harness toggles it to show the durability/throughput trade-off).
    """

    def __init__(self, path: str, sync: bool = True):
        self.path = path
        self._sync = sync
        self._file = open(path, "a", encoding="utf-8")
        self._records_written = 0

    # -- writing -------------------------------------------------------------

    def append(
        self,
        lsn: int,
        txn_id: int,
        op: str,
        namespace: str = "",
        key: Any = None,
        value: Any = None,
        before: Any = None,
    ) -> None:
        """Append one WAL record and (optionally) flush it."""
        enabled = obs_metrics.ENABLED
        start = time.perf_counter() if enabled else 0.0
        body = {
            "lsn": lsn,
            "txn": txn_id,
            "op": op,
            "ns": namespace,
            "key": key,
            "value": value,
            "before": before,
        }
        payload = canonical_json(body)
        checksum = zlib.crc32(payload.encode("utf-8"))
        line = f"{checksum:08x} {payload}\n"
        if _FP_APPEND_WRITE.armed:
            fault_io.write(self._file, line, _FP_APPEND_WRITE)
        else:
            self._file.write(line)
        if self._sync:
            if _FP_APPEND_FSYNC.armed:
                fault_io.fsync(self._file, _FP_APPEND_FSYNC)
            else:
                self._file.flush()
                os.fsync(self._file.fileno())
            if enabled:
                _WAL_FSYNCS.inc()
        self._records_written += 1
        if enabled:
            _WAL_APPENDS.inc()
            _WAL_APPEND_SECONDS.observe(time.perf_counter() - start)

    def log_entry(self, entry) -> None:
        """Adapter: subscribe this to a :class:`CentralLog` to shadow it."""
        self.append(
            entry.lsn,
            entry.txn_id,
            entry.op.value,
            entry.namespace,
            entry.key,
            entry.value,
            entry.before,
        )

    def flush(self) -> None:
        fault_io.fsync(self._file, _FP_FLUSH_FSYNC)
        if obs_metrics.ENABLED:
            _WAL_FSYNCS.inc()

    def close(self) -> None:
        """Fsync, then close.  A clean shutdown must leave the tail durable:
        flush-without-fsync hands the bytes to the OS but survives neither a
        power cut nor the torture harness's crash simulation."""
        if not self._file.closed:
            fault_io.fsync(self._file, _FP_CLOSE_FSYNC)
            if obs_metrics.ENABLED:
                _WAL_FSYNCS.inc()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def records_written(self) -> int:
        return self._records_written

    # -- reading -------------------------------------------------------------

    @staticmethod
    def read_records(path: str, strict: bool = False) -> Iterator[dict]:
        """Yield WAL records from *path*, verifying checksums.

        Corruption semantics, pinned down:

        * **Mid-file corruption** — a bad line *followed by valid records* —
          always raises :class:`WalError`, regardless of ``strict``: it
          cannot be a crash artifact (appends are sequential), so the log
          is damaged and redo from it would be unsound.
        * **Tail corruption** — bad line(s) at the very end — is the
          expected signature of a crash mid-append.  By default the torn
          tail is silently dropped and the stream ends; with
          ``strict=True`` it raises instead (for integrity audits that
          must distinguish "cleanly closed" from "crashed").
        """
        if not os.path.exists(path):
            return
        pending_bad: Optional[int] = None
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.rstrip("\n")
                if not line:
                    continue
                record = WriteAheadLog._parse_line(line)
                if record is None:
                    if pending_bad is None:
                        pending_bad = line_number
                    continue
                if pending_bad is not None:
                    raise WalError(
                        f"corrupt WAL record at line {pending_bad} of {path} "
                        "followed by valid records (mid-file corruption)"
                    )
                yield record
        if pending_bad is not None and strict:
            raise WalError(
                f"corrupt WAL tail at line {pending_bad} of {path} "
                "(crash artifact; re-read with strict=False to drop it)"
            )

    @staticmethod
    def _parse_line(line: str) -> Optional[dict]:
        if line.startswith("{"):
            # Legacy checksum-less record (pre-CRC seed WAL): nothing to
            # verify, but a parseable object is still a valid record.
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                return None
            return record if isinstance(record, dict) else None
        parts = line.split(" ", 1)
        if len(parts) != 2 or len(parts[0]) != 8:
            return None
        try:
            checksum = int(parts[0], 16)
        except ValueError:
            return None
        if zlib.crc32(parts[1].encode("utf-8")) != checksum:
            if obs_metrics.ENABLED:
                _WAL_CRC_FAILURES.inc()
            return None
        try:
            record = json.loads(parts[1])
        except json.JSONDecodeError:
            return None
        return record if isinstance(record, dict) else None


def entry_to_record(entry) -> dict:
    """A :class:`~repro.storage.log.LogEntry` as the JSON-safe WAL-record
    dict the wire ships (the same shape :meth:`WriteAheadLog.append` logs
    and :func:`replay_into` consumes)."""
    return {
        "lsn": entry.lsn,
        "txn": entry.txn_id,
        "op": entry.op.value,
        "ns": entry.namespace,
        "key": entry.key,
        "value": entry.value,
        "before": entry.before,
    }


def replay_into(path: str, log: CentralLog) -> tuple[int, int]:
    """Redo recovery: replay the committed transactions of the WAL at *path*
    into *log* (whose subscribers — the storage views — rebuild themselves).

    Returns ``(redone_ops, discarded_ops)``.  Operations of transactions
    without a commit record are discarded; aborted transactions likewise.
    """
    if obs_metrics.ENABLED:
        _RECOVERY_RUNS.inc()
    records = list(WriteAheadLog.read_records(path))
    committed = {
        record["txn"]
        for record in records
        if record["op"] == LogOp.COMMIT.value
    }
    aborted = {
        record["txn"]
        for record in records
        if record["op"] == LogOp.ABORT.value
    }
    redone = 0
    discarded = 0
    data_ops = {LogOp.INSERT.value, LogOp.UPDATE.value, LogOp.DELETE.value}
    structural = {LogOp.CREATE_NAMESPACE.value, LogOp.DROP_NAMESPACE.value}
    for record in records:
        op = record["op"]
        if op in data_ops:
            if record["txn"] in committed and record["txn"] not in aborted:
                log.append(
                    record["txn"],
                    LogOp(op),
                    record["ns"],
                    record["key"],
                    record["value"],
                    record["before"],
                )
                redone += 1
            else:
                discarded += 1
        elif op in structural:
            log.append(record["txn"], LogOp(op), record["ns"])
    if obs_metrics.ENABLED:
        _WAL_REPLAYED.inc(redone)
    return redone, discarded


def recover(path: str) -> tuple[CentralLog, int, int]:
    """Build a fresh central log from the WAL at *path*.

    Convenience wrapper: callers attach their views to the returned log by
    calling ``view.catch_up()`` after construction, or pass the log to a new
    engine instance.
    """
    log = CentralLog()
    redone, discarded = replay_into(path, log)
    return log, redone, discarded
