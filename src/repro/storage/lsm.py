"""Log-structured merge tree: memtable + SSTables (slide 41).

"Cassandra — column store with sparse tables.  SSTables (Sorted String
Tables) — proposed in Google system Bigtable."

A faithful small LSM: writes go to a sorted in-memory *memtable*; when it
exceeds its budget it is flushed to an immutable :class:`SSTable` (a sorted
run with a sparse index); reads check the memtable then SSTables newest-
first; deletes write tombstones; :meth:`LsmTree.compact` merges all runs,
dropping shadowed versions and tombstones.  Range scans merge all runs with
a heap.

Keys are strings (Bigtable/Cassandra semantics); values are any data-model
value.
"""

from __future__ import annotations

import bisect
import heapq
import time
from typing import Any, Iterator, Optional

from repro.obs import metrics as obs_metrics

__all__ = ["SSTable", "LsmTree", "TOMBSTONE"]

_LSM_PUTS = obs_metrics.counter("lsm_puts_total")
_LSM_GETS = obs_metrics.counter("lsm_gets_total")
_LSM_FLUSHES = obs_metrics.counter("lsm_flushes_total")
_LSM_COMPACTIONS = obs_metrics.counter("lsm_compactions_total")
_LSM_FLUSH_SECONDS = obs_metrics.histogram("lsm_flush_seconds")
_LSM_COMPACTION_SECONDS = obs_metrics.histogram("lsm_compaction_seconds")


class _Tombstone:
    """Sentinel marking a deleted key inside a run."""

    def __repr__(self) -> str:
        return "<tombstone>"


TOMBSTONE = _Tombstone()


class SSTable:
    """Immutable sorted run with a sparse index every *stride* keys."""

    def __init__(self, items: list[tuple[str, Any]], stride: int = 16):
        # items must arrive sorted and key-unique (the memtable guarantees it).
        self._keys = [key for key, _value in items]
        self._values = [value for _key, value in items]
        self._stride = max(stride, 1)
        self._sparse = [
            (self._keys[position], position)
            for position in range(0, len(self._keys), self._stride)
        ]

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def sparse_index_size(self) -> int:
        return len(self._sparse)

    def get(self, key: str) -> tuple[bool, Any]:
        """(found, value) — value may be TOMBSTONE."""
        position = self._locate(key)
        if position is not None:
            return True, self._values[position]
        return False, None

    def _locate(self, key: str) -> Optional[int]:
        # Sparse index narrows the search window; then binary search within.
        window = bisect.bisect_right([entry[0] for entry in self._sparse], key)
        start = self._sparse[window - 1][1] if window else 0
        end = min(start + self._stride, len(self._keys))
        position = bisect.bisect_left(self._keys, key, start, end)
        if position < len(self._keys) and self._keys[position] == key:
            return position
        return None

    def items(self) -> Iterator[tuple[str, Any]]:
        return iter(zip(self._keys, self._values))

    def range(self, low: Optional[str], high: Optional[str]) -> Iterator[tuple[str, Any]]:
        start = 0 if low is None else bisect.bisect_left(self._keys, low)
        for position in range(start, len(self._keys)):
            key = self._keys[position]
            if high is not None and key > high:
                return
            yield key, self._values[position]


class LsmTree:
    """Memtable + levelled list of SSTables (newest first)."""

    def __init__(self, memtable_limit: int = 256, sstable_stride: int = 16):
        if memtable_limit < 1:
            raise ValueError("memtable limit must be positive")
        self._limit = memtable_limit
        self._stride = sstable_stride
        self._memtable: dict[str, Any] = {}
        self._sstables: list[SSTable] = []  # newest first
        self.flushes = 0
        self.compactions = 0

    # -- writes --------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        if not isinstance(key, str):
            raise TypeError("LSM keys are strings (Bigtable semantics)")
        if obs_metrics.ENABLED:
            _LSM_PUTS.inc()
        self._memtable[key] = value
        if len(self._memtable) >= self._limit:
            self.flush()

    def delete(self, key: str) -> None:
        """Write a tombstone; the key may live in older runs."""
        self.put(key, TOMBSTONE)

    def flush(self) -> None:
        """Freeze the memtable into a new SSTable."""
        if not self._memtable:
            return
        enabled = obs_metrics.ENABLED
        start = time.perf_counter() if enabled else 0.0
        items = sorted(self._memtable.items())
        self._sstables.insert(0, SSTable(items, self._stride))
        self._memtable = {}
        self.flushes += 1
        if enabled:
            _LSM_FLUSHES.inc()
            _LSM_FLUSH_SECONDS.observe(time.perf_counter() - start)

    # -- reads ---------------------------------------------------------------

    def get(self, key: str) -> Any:
        """Latest value for *key*, or None when absent/deleted."""
        if obs_metrics.ENABLED:
            _LSM_GETS.inc()
        if key in self._memtable:
            value = self._memtable[key]
            return None if value is TOMBSTONE else value
        for run in self._sstables:
            found, value = run.get(key)
            if found:
                return None if value is TOMBSTONE else value
        return None

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def range(
        self, low: Optional[str] = None, high: Optional[str] = None
    ) -> Iterator[tuple[str, Any]]:
        """Merged, de-duplicated range scan across all runs, in key order."""
        sources: list[Iterator[tuple[str, Any]]] = []
        memtable_items = sorted(
            (key, value)
            for key, value in self._memtable.items()
            if (low is None or key >= low) and (high is None or key <= high)
        )
        sources.append(iter(memtable_items))
        for run in self._sstables:
            sources.append(run.range(low, high))
        # Heap-merge; ties broken by source age (0 = memtable = newest).
        heap: list[tuple[str, int, Any, Iterator]] = []
        for age, source in enumerate(sources):
            for key, value in source:
                heap.append((key, age, value, source))
                break
        heapq.heapify(heap)
        last_key: Optional[str] = None
        while heap:
            key, age, value, source = heapq.heappop(heap)
            for next_key, next_value in source:
                heapq.heappush(heap, (next_key, age, next_value, source))
                break
            if key == last_key:
                continue  # an older version, shadowed
            last_key = key
            if value is not TOMBSTONE:
                yield key, value

    def items(self) -> Iterator[tuple[str, Any]]:
        return self.range()

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # -- maintenance -----------------------------------------------------------

    def compact(self) -> None:
        """Merge every run into one, dropping shadowed versions and
        tombstones entirely (full compaction makes tombstones reclaimable)."""
        enabled = obs_metrics.ENABLED
        start = time.perf_counter() if enabled else 0.0
        merged = list(self.range())
        self._memtable = {}
        self._sstables = [SSTable(merged, self._stride)] if merged else []
        self.compactions += 1
        if enabled:
            _LSM_COMPACTIONS.inc()
            _LSM_COMPACTION_SECONDS.observe(time.perf_counter() - start)

    @property
    def sstable_count(self) -> int:
        return len(self._sstables)

    @property
    def memtable_size(self) -> int:
        return len(self._memtable)
