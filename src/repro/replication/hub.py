"""Primary-side replication bookkeeping: subscribers and semi-sync acks.

One :class:`ReplicationHub` lives in each :class:`ReproServer`.  The
server's event loop does all the mutation (``wal_subscribe`` registers,
the per-connection ship task advances ``shipped_lsn``, incoming ``ack``
frames advance ``acked_lsn``), so the hub needs no locking of its own —
only an :class:`asyncio.Condition` so semi-sync writers can wait for
acknowledgements.

**Semi-sync** (``ack_replication=K > 0``): after a write executes, the
server blocks the response until at least K subscribers have acknowledged
an LSN at or past the write.  Because replicas apply strictly in LSN
order, an ack for LSN N covers every record at or below N — so a
positively-acknowledged write exists on K replicas, and promotion (which
picks the largest ``applied_lsn``) can never lose it.  That is the whole
"zero committed-write loss" argument, and the chaos harness checks it.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from repro.errors import ReplicationError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics

__all__ = ["ReplicationHub", "Subscriber"]


class Subscriber:
    """One subscribed replica connection."""

    __slots__ = ("session_id", "peer", "shipped_lsn", "acked_lsn",
                 "subscribed_at", "task")

    def __init__(self, session_id: int, peer: str, from_lsn: int):
        self.session_id = session_id
        self.peer = peer
        self.shipped_lsn = from_lsn
        self.acked_lsn = from_lsn
        self.subscribed_at = time.time()
        #: The ship task streaming to this subscriber (cancelled on
        #: unsubscribe/shutdown).
        self.task: Optional[asyncio.Task] = None

    def describe(self) -> dict:
        return {
            "session": self.session_id,
            "peer": self.peer,
            "shipped_lsn": self.shipped_lsn,
            "acked_lsn": self.acked_lsn,
            "uptime_seconds": round(time.time() - self.subscribed_at, 3),
        }


class ReplicationHub:
    """Subscriber registry + ack condition, owned by the server loop."""

    def __init__(self):
        self._subscribers: dict[int, Subscriber] = {}
        self._ack_cond: Optional[asyncio.Condition] = None

    def _condition(self) -> asyncio.Condition:
        if self._ack_cond is None:
            self._ack_cond = asyncio.Condition()
        return self._ack_cond

    # -- registry ------------------------------------------------------------

    def subscribe(self, session_id: int, peer: str, from_lsn: int) -> Subscriber:
        existing = self._subscribers.pop(session_id, None)
        if existing is not None and existing.task is not None:
            existing.task.cancel()
        subscriber = Subscriber(session_id, peer, from_lsn)
        self._subscribers[session_id] = subscriber
        obs_events.emit(
            "wal_subscriber_joined",
            session_id=session_id,
            peer=peer,
            from_lsn=from_lsn,
        )
        return subscriber

    def unsubscribe(self, session_id: int) -> None:
        subscriber = self._subscribers.pop(session_id, None)
        if subscriber is None:
            return
        if subscriber.task is not None:
            subscriber.task.cancel()
        obs_events.emit(
            "wal_subscriber_left",
            session_id=session_id,
            peer=subscriber.peer,
            shipped_lsn=subscriber.shipped_lsn,
            acked_lsn=subscriber.acked_lsn,
        )

    def shutdown(self) -> None:
        for session_id in list(self._subscribers):
            self.unsubscribe(session_id)

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def describe(self) -> list[dict]:
        return [sub.describe() for sub in self._subscribers.values()]

    # -- acks ----------------------------------------------------------------

    def acked_count(self, lsn: int) -> int:
        return sum(
            1 for sub in self._subscribers.values() if sub.acked_lsn >= lsn
        )

    async def record_ack(self, session_id: int, lsn: int) -> None:
        subscriber = self._subscribers.get(session_id)
        if subscriber is None or not isinstance(lsn, int):
            return
        if lsn > subscriber.acked_lsn:
            subscriber.acked_lsn = lsn
            condition = self._condition()
            async with condition:
                condition.notify_all()

    async def wait_for_acks(
        self, lsn: int, count: int, timeout: float
    ) -> None:
        """Block until *count* subscribers have acked *lsn*, or raise
        :class:`ReplicationError` after *timeout* — the write is durable
        and committed **locally** either way; what the error withholds is
        the replication guarantee, so the client knows this write might
        not survive a primary failure."""
        if count <= 0 or self.acked_count(lsn) >= count:
            return
        condition = self._condition()
        deadline = time.monotonic() + timeout
        async with condition:
            while self.acked_count(lsn) < count:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    if obs_metrics.ENABLED:
                        obs_metrics.counter("repl_ack_timeouts_total").inc()
                    obs_events.emit(
                        "repl_ack_timeout",
                        lsn=lsn,
                        want=count,
                        have=self.acked_count(lsn),
                        subscribers=self.subscriber_count,
                    )
                    raise ReplicationError(
                        f"semi-sync: {count} replica ack(s) for lsn {lsn} "
                        f"did not arrive within {timeout}s "
                        f"({self.acked_count(lsn)}/{count} acked, "
                        f"{self.subscriber_count} subscribed) — the write "
                        "is committed locally but may not be replicated"
                    )
                try:
                    await asyncio.wait_for(condition.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    continue  # loop re-checks and raises via the deadline
