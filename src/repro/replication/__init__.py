"""WAL-shipping replication: primary → N read replicas, client failover.

The ROADMAP's "millions of users" target needs reads to scale past one
node and the service to survive losing that node.  This package provides
both halves on top of the existing single-node engine:

* **Shipping** — a primary :class:`~repro.server.server.ReproServer`
  streams its central-log entries (the same records its WAL shadows) to
  subscribed replicas as unsolicited ``{"ship": ...}`` frames on the
  ordinary wire protocol; :class:`~repro.replication.hub.ReplicationHub`
  keeps the per-subscriber bookkeeping and the semi-sync ack state.
* **Applying** — each replica runs a
  :class:`~repro.replication.replica.WalPuller` background thread whose
  :class:`~repro.replication.apply.ReplicationApplier` replays committed
  transactions into the replica's own :class:`MultiModelDB` through the
  central log — exactly the path crash recovery uses — and tracks
  ``received``/``applied`` LSN watermarks keyed by *primary* LSNs.
* **Routing** — :class:`~repro.replication.router.ReplicaSet` is the
  client-side entry point: it sends writes and ``strong`` reads to the
  primary, load-balances ``eventual`` reads across replicas, makes
  ``bounded`` reads wait for a replica watermark, and on primary loss
  promotes the most-caught-up replica and retries non-transactional work.

Replicas are provisioned with the same DDL as the primary (DDL is not
replicated); from then on the shipped stream keeps primary and replica
logs LSN-aligned, which is what makes promotion seamless — a promoted
replica's log continues in the same LSN space its peers already track.
"""

from __future__ import annotations

import dataclasses
from functools import lru_cache

from repro.query import ast as _ast

__all__ = [
    "ReplicationApplier",
    "ReplicationHub",
    "ReplicaSet",
    "WalPuller",
    "statement_writes",
]

#: AST operations that mutate data; anything else is a read.
_WRITE_NODES = (
    _ast.InsertOp,
    _ast.UpdateOp,
    _ast.RemoveOp,
    _ast.ReplaceOp,
    _ast.UpsertOp,
)


def _contains_write(node) -> bool:
    if isinstance(node, _WRITE_NODES):
        return True
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        return any(
            _contains_write(getattr(node, field.name))
            for field in dataclasses.fields(node)
        )
    if isinstance(node, (list, tuple)):
        return any(_contains_write(item) for item in node)
    if isinstance(node, dict):
        return any(_contains_write(value) for value in node.values())
    return False


@lru_cache(maxsize=1024)
def statement_writes(text: str) -> bool:
    """Does this MMQL statement mutate data (INSERT/UPDATE/REMOVE/REPLACE/
    UPSERT anywhere in its AST, subqueries included)?

    Used for routing (writes go to the primary) and for the replica-side
    ``NOT_PRIMARY`` gate.  A statement that does not parse is treated as a
    read — the engine will raise the real parse error with full position
    info, which beats a routing-layer guess.
    """
    from repro.query.parser import parse

    try:
        query = parse(text)
    except Exception:
        return False
    return _contains_write(query)


from repro.replication.apply import ReplicationApplier  # noqa: E402
from repro.replication.hub import ReplicationHub  # noqa: E402
from repro.replication.replica import WalPuller  # noqa: E402
from repro.replication.router import ReplicaSet  # noqa: E402
