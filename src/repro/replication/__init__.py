"""WAL-shipping replication: primary → N read replicas, client failover.

The ROADMAP's "millions of users" target needs reads to scale past one
node and the service to survive losing that node.  This package provides
both halves on top of the existing single-node engine:

* **Shipping** — a primary :class:`~repro.server.server.ReproServer`
  streams its central-log entries (the same records its WAL shadows) to
  subscribed replicas as unsolicited ``{"ship": ...}`` frames on the
  ordinary wire protocol; :class:`~repro.replication.hub.ReplicationHub`
  keeps the per-subscriber bookkeeping and the semi-sync ack state.
* **Applying** — each replica runs a
  :class:`~repro.replication.replica.WalPuller` background thread whose
  :class:`~repro.replication.apply.ReplicationApplier` replays committed
  transactions into the replica's own :class:`MultiModelDB` through the
  central log — exactly the path crash recovery uses — and tracks
  ``received``/``applied`` LSN watermarks keyed by *primary* LSNs.
* **Routing** — :class:`~repro.replication.router.ReplicaSet` is the
  client-side entry point: it sends writes and ``strong`` reads to the
  primary, load-balances ``eventual`` reads across replicas, makes
  ``bounded`` reads wait for a replica watermark, and on primary loss
  promotes the most-caught-up replica and retries non-transactional work.

Replicas are provisioned with the same DDL as the primary (DDL is not
replicated); from then on the shipped stream keeps primary and replica
logs LSN-aligned, which is what makes promotion seamless — a promoted
replica's log continues in the same LSN space its peers already track.
"""

from __future__ import annotations

from repro.query.classify import statement_writes

from repro.replication.apply import ReplicationApplier
from repro.replication.hub import ReplicationHub
from repro.replication.replica import WalPuller
from repro.replication.router import ReplicaSet

__all__ = [
    "ReplicationApplier",
    "ReplicationHub",
    "ReplicaSet",
    "WalPuller",
    "statement_writes",
]
