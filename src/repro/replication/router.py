"""``ReplicaSet`` — client-side router over a primary and N read replicas.

The application-facing half of replication: one object that owns a
:class:`~repro.client.client.ReproClient` per node and decides, per
statement, where it runs:

* **writes** (detected with :func:`repro.query.classify.statement_writes`)
  and **strong** reads → the primary, always;
* **eventual** reads → round-robin across replicas (primary as fallback
  when none is reachable) — lowest latency, no freshness promise;
* **bounded** reads → a replica, but only after ``repl_wait`` confirms
  its applied watermark has reached the session's last-seen primary LSN
  (tracked automatically from every write response); when the replica
  cannot catch up within ``bounded_timeout``, the read falls back to the
  primary rather than returning stale rows.

**Failover.**  Any transport-level failure against the primary (reset,
refused, retry exhaustion) triggers :meth:`failover`: poll every replica
for its ``applied_lsn``, promote the most-caught-up one (ties break in
favour of configuration order), re-point the survivors at it, and retry
the failed statement there.  In-flight **transactions** are the explicit
exception — the server-side transaction died with the primary, so the
router raises :class:`~repro.errors.FailoverInProgressError` instead of
silently re-targeting, and the application decides whether to re-run the
transaction.  Non-transactional statements retry transparently (they are
at-least-once: use idempotent statements — UPSERT, keyed INSERT — when
that matters).

Consistency-level names follow
:class:`repro.txn.consistency.ConsistencyLevel`: ``strong`` | ``bounded``
(a pragmatic reading of QUORUM for a single-primary topology) |
``eventual``.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.errors import FailoverInProgressError, NotPrimaryError
from repro.fault.retry import RetryExhaustedError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.query.classify import statement_writes

__all__ = ["ReplicaSet"]

#: Errors that mean "this node is gone", triggering failover.
_TRANSPORT_ERRORS = (ConnectionError, OSError, RetryExhaustedError)

_LEVELS = ("strong", "bounded", "eventual")


class ReplicaSet:
    """Route statements across one primary and its read replicas."""

    def __init__(
        self,
        primary: tuple,
        replicas: Optional[list] = None,
        consistency: str = "strong",
        bounded_timeout: float = 5.0,
        client_factory=None,
        sleep=None,
        **client_options: Any,
    ):
        if consistency not in _LEVELS:
            raise ValueError(
                f"unknown consistency {consistency!r} (use one of {_LEVELS})"
            )
        if client_factory is None:
            from repro.client.client import ReproClient

            client_factory = ReproClient
        self._factory = client_factory
        self._options = dict(client_options)
        if sleep is not None or "sleep" not in self._options:
            self._options["sleep"] = sleep
        self.consistency = consistency
        self.bounded_timeout = bounded_timeout
        self._lock = threading.RLock()
        self._primary_addr = (primary[0], int(primary[1]))
        self._replica_addrs: list[tuple] = [
            (host, int(port)) for host, port in (replicas or [])
        ]
        self._clients: dict[tuple, Any] = {}
        self._rr = 0
        self._in_txn = False
        self._failing_over = False
        #: Highest primary LSN observed in any response — the freshness
        #: token ``bounded`` reads wait for.
        self.last_seen_lsn = 0
        self.failovers = 0

    # ------------------------------------------------------------- topology --

    @property
    def primary_address(self) -> tuple:
        return self._primary_addr

    @property
    def replica_addresses(self) -> list[tuple]:
        return list(self._replica_addrs)

    def _client(self, addr: tuple) -> Any:
        client = self._clients.get(addr)
        if client is None:
            client = self._factory(host=addr[0], port=addr[1], **self._options)
            self._clients[addr] = client
        return client

    def _drop_client(self, addr: tuple) -> None:
        client = self._clients.pop(addr, None)
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    def close(self) -> None:
        with self._lock:
            for addr in list(self._clients):
                self._drop_client(addr)

    def __enter__(self) -> "ReplicaSet":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- routing --

    def query(
        self,
        text: str,
        bind_vars: Optional[dict] = None,
        consistency: Optional[str] = None,
        **query_options: Any,
    ) -> Any:
        """Run one MMQL statement at the right node; returns the client's
        :class:`~repro.client.client.ResultCursor`."""
        level = consistency or self.consistency
        if level not in _LEVELS:
            raise ValueError(
                f"unknown consistency {level!r} (use one of {_LEVELS})"
            )
        writes = statement_writes(text)
        with self._lock:
            if writes or level == "strong" or self._in_txn:
                return self._on_primary(text, bind_vars, writes, query_options)
            if level == "eventual":
                return self._on_any_replica(text, bind_vars, query_options)
            return self._bounded_read(text, bind_vars, query_options)

    def _note_lsn(self, cursor: Any) -> Any:
        stats = getattr(cursor, "stats", None) or {}
        lsn = stats.get("last_lsn")
        if isinstance(lsn, int) and lsn > self.last_seen_lsn:
            self.last_seen_lsn = lsn
        return cursor

    def _on_primary(self, text, bind_vars, writes, query_options,
                    hops: int = 0) -> Any:
        if hops > max(len(self._replica_addrs) + 1, 3):
            raise FailoverInProgressError(
                "no stable primary found after repeated redirects/failovers"
            )
        try:
            cursor = self._client(self._primary_addr).query(
                text, bind_vars, **query_options
            )
            # Drain eagerly: a cursor is session state on the node that
            # served it, and the router may fail that node over between
            # fetches — a complete result has no such hazard.
            cursor.fetch_all()
            return self._note_lsn(cursor)
        except NotPrimaryError as error:
            # Stale topology: the node we believed primary was re-pointed
            # (or we raced its demotion).  Its error names the real one.
            self._adopt_primary_hint(error)
            return self._on_primary(text, bind_vars, writes, query_options,
                                    hops + 1)
        except _TRANSPORT_ERRORS as error:
            self._primary_lost(error)
            return self._on_primary(text, bind_vars, writes, query_options,
                                    hops + 1)

    def _on_any_replica(self, text, bind_vars, query_options) -> Any:
        attempts = max(len(self._replica_addrs), 1)
        for _ in range(attempts):
            if not self._replica_addrs:
                break
            addr = self._replica_addrs[self._rr % len(self._replica_addrs)]
            self._rr += 1
            try:
                cursor = self._client(addr).query(
                    text, bind_vars, **query_options
                )
                cursor.fetch_all()
                return self._note_lsn(cursor)
            except _TRANSPORT_ERRORS:
                self._drop_client(addr)
                continue
        # No replica answered: the primary serves the read.
        return self._on_primary(text, bind_vars, False, query_options)

    def _bounded_read(self, text, bind_vars, query_options) -> Any:
        token = self.last_seen_lsn
        for addr in self._replica_order():
            try:
                client = self._client(addr)
                waited = client._call(
                    "repl_wait", lsn=token, timeout=self.bounded_timeout
                )
                if not waited.get("reached"):
                    continue  # too far behind; try the next replica
                cursor = client.query(text, bind_vars, **query_options)
                cursor.fetch_all()
                return self._note_lsn(cursor)
            except _TRANSPORT_ERRORS:
                self._drop_client(addr)
                continue
        # Nobody is caught up (or reachable): the primary is by
        # definition at the watermark.
        return self._on_primary(text, bind_vars, False, query_options)

    def _replica_order(self) -> list[tuple]:
        if not self._replica_addrs:
            return []
        start = self._rr % len(self._replica_addrs)
        self._rr += 1
        return self._replica_addrs[start:] + self._replica_addrs[:start]

    # --------------------------------------------------------- transactions --

    def begin(self, isolation: str = "snapshot") -> int:
        with self._lock:
            txn = self._client(self._primary_addr).begin(isolation)
            self._in_txn = True
            return txn

    def commit(self) -> None:
        with self._lock:
            try:
                self._client(self._primary_addr).commit()
            except _TRANSPORT_ERRORS as error:
                self._in_txn = False
                raise FailoverInProgressError(
                    "primary lost mid-transaction; the transaction was "
                    "rolled back server-side and must be re-run"
                ) from error
            self._in_txn = False

    def abort(self) -> None:
        with self._lock:
            try:
                self._client(self._primary_addr).abort()
            except _TRANSPORT_ERRORS:
                pass  # the server aborted it when the connection died
            self._in_txn = False

    # -------------------------------------------------------------- failover --

    def _adopt_primary_hint(self, error: NotPrimaryError) -> None:
        hint = getattr(error, "primary", None)
        if not isinstance(hint, str) or ":" not in hint:
            raise error
        host, _, port = hint.rpartition(":")
        addr = (host, int(port))
        if addr == self._primary_addr:
            raise error  # no progress possible; surface the truth
        if self._primary_addr not in self._replica_addrs:
            self._replica_addrs.append(self._primary_addr)
        if addr in self._replica_addrs:
            self._replica_addrs.remove(addr)
        self._primary_addr = addr

    def _primary_lost(self, cause: BaseException) -> None:
        """The primary stopped answering: fail over or fail loudly."""
        if self._in_txn:
            self._in_txn = False
            raise FailoverInProgressError(
                "primary lost mid-transaction; the transaction died with "
                "it — re-run it after failover"
            ) from cause
        if self._failing_over:
            raise FailoverInProgressError(
                "primary lost while a failover is already in progress"
            ) from cause
        self._failing_over = True
        try:
            self.failover(cause=cause)
        finally:
            self._failing_over = False

    def failover(self, cause: Optional[BaseException] = None) -> tuple:
        """Promote the most-caught-up replica and re-point the rest.
        Returns the new primary address; raises
        :class:`FailoverInProgressError` when no replica is reachable."""
        old_primary = self._primary_addr
        self._drop_client(old_primary)
        candidates: list[tuple[int, int, tuple]] = []
        for index, addr in enumerate(self._replica_addrs):
            try:
                status = self._client(addr)._call("repl_status")
            except Exception:
                self._drop_client(addr)
                continue
            applied = status.get("applied_lsn", status.get("last_lsn", 0))
            candidates.append((applied if isinstance(applied, int) else 0,
                               -index, addr))
        if not candidates:
            raise FailoverInProgressError(
                f"primary {old_primary[0]}:{old_primary[1]} is gone and no "
                "replica is reachable to promote"
            ) from cause
        candidates.sort(reverse=True)
        applied_lsn, _, new_primary = candidates[0]
        self._client(new_primary)._call("promote")
        self._replica_addrs.remove(new_primary)
        self._primary_addr = new_primary
        for addr in self._replica_addrs:
            try:
                self._client(addr)._call(
                    "repoint", host=new_primary[0], port=new_primary[1]
                )
            except Exception:
                self._drop_client(addr)  # it can be re-pointed later
        self.failovers += 1
        if obs_metrics.ENABLED:
            obs_metrics.counter("failover_total").inc()
        obs_events.emit(
            "failover",
            old_primary=f"{old_primary[0]}:{old_primary[1]}",
            new_primary=f"{new_primary[0]}:{new_primary[1]}",
            applied_lsn=applied_lsn,
            replicas=len(self._replica_addrs),
            cause=type(cause).__name__ if cause is not None else None,
        )
        return new_primary

    # --------------------------------------------------------------- health --

    def heartbeat(self) -> bool:
        """Ping the primary; on transport failure run failover.  Returns
        True when (possibly after promoting) a primary answers."""
        with self._lock:
            try:
                return self._client(self._primary_addr).ping()
            except _TRANSPORT_ERRORS as error:
                self._primary_lost(error)
                return self._client(self._primary_addr).ping()

    def status(self) -> dict:
        with self._lock:
            return {
                "primary": f"{self._primary_addr[0]}:{self._primary_addr[1]}",
                "replicas": [f"{h}:{p}" for h, p in self._replica_addrs],
                "consistency": self.consistency,
                "last_seen_lsn": self.last_seen_lsn,
                "failovers": self.failovers,
                "in_txn": self._in_txn,
            }

    def __repr__(self) -> str:
        return (
            f"<ReplicaSet primary={self._primary_addr} "
            f"replicas={len(self._replica_addrs)} "
            f"consistency={self.consistency}>"
        )

