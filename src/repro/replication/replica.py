"""Replica-side WAL puller: subscribe to a primary, apply, acknowledge.

A :class:`WalPuller` is a daemon thread each replica server owns.  It
speaks the ordinary wire protocol as a client: dial the primary, consume
the handshake, send one ``wal_subscribe`` request, then sit in a read
loop consuming unsolicited ``{"ship": ...}`` frames — applying each batch
through the :class:`~repro.replication.apply.ReplicationApplier` and
answering with a fire-and-forget ``{"ack": {"lsn": N}}`` frame so the
primary's semi-sync gate can release writers.

Resilience is the point, so the loop assumes the wire is hostile:

* every read has a timeout of ``heartbeat_timeout`` — the primary ships
  empty heartbeat frames when idle, so a silent socket means the primary
  (or the path to it) is gone, not that there is nothing to say;
* any transport failure tears the connection down and re-dials with the
  engine's canonical :func:`~repro.fault.retry.retry_with_backoff`
  (full jitter, seeded), re-subscribing **from the applier's received
  watermark** — the primary re-ships anything in flight when the
  connection died, and the applier's duplicate filter drops whatever was
  already processed (at-least-once delivery, exactly-once apply);
* :meth:`retarget` atomically swaps the upstream address (failover:
  surviving replicas re-point at the promoted primary) by severing the
  current connection and letting the reconnect loop do the rest.

The puller's socket I/O goes through :func:`repro.server.protocol` and
therefore through the ``client.frame_read``/``client.frame_write``
failpoints — the chaos harness injects `drop_conn`/`truncate_frame`/
`delay` exactly here to prove the loop recovers.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Optional

from repro.errors import ProtocolError
from repro.fault.retry import RetryExhaustedError, retry_with_backoff
from repro.obs import events as obs_events
from repro.replication.apply import ReplicationApplier
from repro.server import protocol

__all__ = ["WalPuller"]


class WalPuller:
    """Background subscription thread feeding one replica's applier."""

    def __init__(
        self,
        applier: ReplicationApplier,
        primary_host: str,
        primary_port: int,
        connect_timeout: float = 5.0,
        heartbeat_timeout: float = 2.0,
        backoff_base: float = 0.05,
        seed: int = 0,
    ):
        self.applier = applier
        self.primary_host = primary_host
        self.primary_port = primary_port
        self.connect_timeout = connect_timeout
        self.heartbeat_timeout = heartbeat_timeout
        self.backoff_base = backoff_base
        self.seed = seed
        self._sock: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._connected = False
        self._last_ship_ts: Optional[float] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def primary_address(self) -> str:
        return f"{self.primary_host}:{self.primary_port}"

    @property
    def connected(self) -> bool:
        return self._connected

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        self.applier.bootstrap(self.applier.db.context.log.last_lsn)
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run,
            name=f"repro-wal-puller-{self.applier.name}",
            daemon=True,
        )
        self._thread.start()

    def stop(self, join_timeout: Optional[float] = 2.0) -> None:
        self._stop.set()
        self._sever()
        thread = self._thread
        if thread is not None and join_timeout is not None:
            thread.join(timeout=join_timeout)

    def retarget(self, host: str, port: int) -> None:
        """Follow a different primary (post-promotion re-pointing).  The
        applier's watermarks carry over — the promoted replica's log is
        LSN-aligned with the old primary's, so the subscription simply
        continues from the same position upstream."""
        with self._lock:
            self.primary_host = host
            self.primary_port = int(port)
        obs_events.emit(
            "replica_retarget",
            replica=self.applier.name,
            primary=self.primary_address,
        )
        self._sever()

    def _sever(self) -> None:
        sock, self._sock = self._sock, None
        self._connected = False
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # -- the loop ------------------------------------------------------------

    def _run(self) -> None:
        attempt_seed = self.seed
        while not self._stop.is_set():
            try:
                retry_with_backoff(
                    lambda _attempt: self._connect_and_stream(),
                    attempts=6,
                    retry_on=(ConnectionError, OSError, ProtocolError),
                    base_delay=self.backoff_base,
                    jitter=True,
                    seed=attempt_seed,
                    sleep=self._interruptible_sleep,
                )
            except ConnectionAbortedError:
                return  # stop() interrupted a backoff sleep
            except RetryExhaustedError:
                if self._stop.is_set():
                    return
                obs_events.emit(
                    "replica_upstream_unreachable",
                    replica=self.applier.name,
                    primary=self.primary_address,
                )
                # Keep trying forever (a replica's job is to catch up when
                # the primary returns), but with a fresh jitter sequence.
                attempt_seed += 1
                try:
                    self._interruptible_sleep(self.backoff_base * 8)
                except ConnectionAbortedError:
                    return

    def _interruptible_sleep(self, seconds: float) -> None:
        self._stop.wait(timeout=seconds)
        if self._stop.is_set():
            raise ConnectionAbortedError("puller stopped")

    def _connect_and_stream(self) -> None:
        if self._stop.is_set():
            raise ConnectionAbortedError("puller stopped")
        with self._lock:
            host, port = self.primary_host, self.primary_port
        sock = socket.create_connection(
            (host, port), timeout=self.connect_timeout
        )
        self._sock = sock
        try:
            sock.settimeout(self.connect_timeout)
            hello = protocol.read_frame(sock)
            if hello is None:
                raise ProtocolError("primary closed before hello")
            if hello.get("ok") is False:
                protocol.raise_wire_error(hello.get("error"))
            from_lsn = self.applier.received_lsn
            protocol.write_frame(
                sock,
                protocol.request(1, "wal_subscribe", from_lsn=from_lsn),
            )
            # The ship task starts inside the wal_subscribe handler, so its
            # first frame can beat the response onto the wire.  Early ships
            # are processed in place (apply is idempotent either way).
            early_ships: list[dict] = []
            while True:
                response = protocol.read_frame(sock)
                if response is None:
                    raise ProtocolError("primary closed during wal_subscribe")
                ship = response.get("ship")
                if isinstance(ship, dict):
                    early_ships.append(ship)
                    continue
                break
            if response.get("ok") is not True:
                protocol.raise_wire_error(response.get("error"))
            # The response carries the primary's catalog snapshot — DDL is
            # not logged, so missing stores must exist before the first
            # record lands (a store only sees appends made after it).
            result = response.get("result") or {}
            self.applier.sync_catalog(result.get("catalog") or [])
            self._connected = True
            for ship in early_ships:
                self._handle_ship(sock, ship)
            obs_events.emit(
                "replica_subscribed",
                replica=self.applier.name,
                primary=f"{host}:{port}",
                from_lsn=from_lsn,
            )
            sock.settimeout(self.heartbeat_timeout)
            while not self._stop.is_set():
                try:
                    frame = protocol.read_frame(sock)
                except socket.timeout:
                    raise ConnectionError(
                        f"no ship/heartbeat frame from {host}:{port} within "
                        f"{self.heartbeat_timeout}s — presuming primary loss"
                    ) from None
                if frame is None:
                    raise ConnectionError("primary closed the WAL stream")
                ship = frame.get("ship")
                if not isinstance(ship, dict):
                    continue  # stray frame (e.g. late response); ignore
                self._handle_ship(sock, ship)
        finally:
            self._connected = False
            if self._sock is sock:
                self._sock = None
            try:
                sock.close()
            except OSError:
                pass

    def _handle_ship(self, sock: socket.socket, ship: dict) -> None:
        records = ship.get("records") or []
        if records:
            self.applier.apply_records(records)
        ts = ship.get("ts")
        if isinstance(ts, (int, float)):
            self._last_ship_ts = float(ts)
            self.applier.set_lag(float(ts))
        # Fire-and-forget acknowledgement of the applied prefix — the
        # primary's semi-sync gate waits on these.
        protocol.write_frame(sock, {"ack": {"lsn": self.applier.applied_lsn}})

    # -- introspection -------------------------------------------------------

    def describe(self) -> dict:
        state = self.applier.watermarks()
        state.update(
            {
                "primary": self.primary_address,
                "connected": self._connected,
                "running": self.running,
                "last_ship_age_seconds": (
                    None
                    if self._last_ship_ts is None
                    else round(time.time() - self._last_ship_ts, 3)
                ),
            }
        )
        return state
