"""Replica-side apply: replay shipped WAL records into a local database.

The primary's central log has a useful shape: a transaction's data
operations are published **atomically at commit time** (under the
transaction-manager mutex), immediately followed by their ``COMMIT``
marker, so committed blocks are contiguous in LSN order and only
``ABORT``/structural/``CHECKPOINT`` markers appear between them.  The
applier exploits that:

* records stream in strict LSN order; at most **one** commit block can be
  open (partially received, its COMMIT still in flight) at a time;
* an open block is buffered and applied as a unit when its COMMIT
  arrives — appended through the replica's own
  :class:`~repro.storage.log.CentralLog`, the exact path crash recovery
  (:func:`repro.storage.wal.replay_into`) uses, so the replica's storage
  views, WAL shadow and checkpoints all see replicated writes the same
  way they see local ones;
* marker records are appended as-is, keeping the replica log **LSN-aligned**
  with the primary — the property that makes a promoted replica's log a
  drop-in continuation for its peers.

Two watermarks, both in *primary* LSNs:

* ``received_lsn`` — every record processed (buffered or applied).  The
  re-subscribe position after a reconnect, and the duplicate filter: a
  retransmitted or duplicated frame's records fall at or below it and are
  skipped, which is what makes apply **idempotent** (the chaos harness's
  ``duplicate_frame`` effect leans on this).
* ``applied_lsn`` — the prefix actually applied: equals ``received_lsn``
  unless a block is open, in which case it stops just before the block.
  This is the watermark ``bounded`` reads wait on.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.errors import ReplicationError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.storage.log import LogOp

__all__ = ["ReplicationApplier"]

_DATA_OPS = frozenset(
    (LogOp.INSERT.value, LogOp.UPDATE.value, LogOp.DELETE.value)
)


class ReplicationApplier:
    """Applies shipped WAL-record dicts into one :class:`MultiModelDB`.

    Thread-safety: :meth:`apply_records` runs on the puller thread while
    ``repl_wait``/``repl_status`` read the watermarks from the server's
    event loop, so watermark updates happen under a small lock and the
    read side uses :meth:`watermarks`.
    """

    def __init__(self, db, name: str = "replica"):
        self.db = db
        self.name = name
        self._lock = threading.Lock()
        self._received_lsn = 0
        self._applied_lsn = 0
        #: The open commit block: records of one transaction whose COMMIT
        #: marker has not arrived yet.
        self._pending: list[dict] = []
        self._records_applied = 0
        self._diverged = False

    # -- watermarks ----------------------------------------------------------

    @property
    def received_lsn(self) -> int:
        return self._received_lsn

    @property
    def applied_lsn(self) -> int:
        return self._applied_lsn

    def watermarks(self) -> dict:
        with self._lock:
            return {
                "received_lsn": self._received_lsn,
                "applied_lsn": self._applied_lsn,
                "pending_records": len(self._pending),
                "records_applied": self._records_applied,
                "diverged": self._diverged,
            }

    def bootstrap(self, lsn: int) -> None:
        """Anchor the watermarks at the local log position before the first
        subscription: a freshly provisioned replica's log already holds its
        own DDL entries, and (by the provisioning contract) the primary's
        log holds the same ones at the same LSNs — shipping starts after
        them."""
        with self._lock:
            if self._received_lsn == 0:
                self._received_lsn = lsn
                self._applied_lsn = lsn

    def sync_catalog(self, entries: list) -> list:
        """Materialize catalog objects this replica is missing.

        DDL is not logged, so the primary ships a catalog snapshot with
        every ``wal_subscribe`` response (its "base backup"); anything
        the snapshot names that the local catalog lacks is created here
        — before any shipped record is applied, so the new store sees
        every subsequent log append.  Schema-less entries (a wide-column
        table whose UDT spec did not survive the wire) are skipped; an
        already-present name is left exactly as it is.  Returns the list
        of names created."""
        existing = set(self.db.catalog())
        created = []
        for entry in entries or ():
            name, kind = entry.get("name"), entry.get("kind")
            if not isinstance(name, str) or name in existing:
                continue
            try:
                self._create_from_snapshot(name, kind, entry.get("schema"))
            except Exception as error:
                obs_events.emit(
                    "replica_catalog_sync_failed",
                    replica=self.name, object=name, kind=kind,
                    error=type(error).__name__,
                )
                continue
            created.append(name)
        if created:
            obs_events.emit(
                "replica_catalog_synced", replica=self.name, created=created
            )
        return created

    def _create_from_snapshot(self, name: str, kind, schema) -> None:
        if kind == "collection":
            self.db.create_collection(name)
        elif kind == "bucket":
            self.db.create_bucket(name)
        elif kind == "graph":
            self.db.create_graph(name)
        elif kind == "trees":
            self.db.create_tree_store(name)
        elif kind == "triples":
            self.db.create_triple_store(name)
        elif kind == "objects":
            self.db.create_object_store(name)
        elif kind == "spatial":
            self.db.create_spatial(name)
        elif kind == "table" and isinstance(schema, dict):
            from repro.relational.schema import Column, TableSchema

            self.db.create_table(TableSchema(
                name,
                [
                    Column(
                        column["name"],
                        column.get("type", "json"),
                        nullable=column.get("nullable", True),
                        default=column.get("default"),
                    )
                    for column in schema["columns"]
                ],
                primary_key=schema["primary_key"],
            ))
        elif kind == "wide" and isinstance(schema, dict):
            from repro.widecolumn.table import CqlColumn

            self.db.create_wide_table(
                name,
                [
                    CqlColumn(column["name"], column["spec"])
                    for column in schema["columns"]
                ],
                primary_key=schema["primary_key"],
            )
        else:
            raise ReplicationError(
                f"catalog snapshot entry {name!r} has kind {kind!r} "
                "without a usable schema"
            )

    # -- applying ------------------------------------------------------------

    def apply_records(self, records: list[dict]) -> int:
        """Apply one shipped batch; returns how many records were fresh.

        Records at or below ``received_lsn`` are duplicates (retransmit,
        duplicated frame) and are skipped.  A gap above ``received_lsn``
        means the subscription lost records — that is unrecoverable
        drift, so it raises :class:`ReplicationError` (the puller
        re-subscribes from its watermark, which repairs an honest
        disconnect; a gap that survives that is a real bug).
        """
        fresh = 0
        for record in records:
            lsn = record.get("lsn")
            if not isinstance(lsn, int):
                raise ReplicationError(
                    f"shipped record without an integer lsn: {record!r}"
                )
            if lsn <= self._received_lsn:
                continue  # duplicate delivery: already buffered or applied
            if lsn != self._received_lsn + 1 and self._received_lsn:
                raise ReplicationError(
                    f"gap in shipped WAL stream: expected lsn "
                    f"{self._received_lsn + 1}, got {lsn}"
                )
            self._ingest(record)
            fresh += 1
        if fresh and obs_metrics.ENABLED:
            obs_metrics.counter(
                "wal_records_applied_total", replica=self.name
            ).inc(fresh)
        return fresh

    def _ingest(self, record: dict) -> None:
        op = record["op"]
        txn = record.get("txn", 0)
        if op in _DATA_OPS:
            if self._pending and self._pending[0].get("txn") != txn:
                # Cannot happen with an honest primary (blocks are
                # contiguous); flush defensively so we never deadlock on a
                # block whose COMMIT will never come.
                self._note_divergence(
                    "interleaved data records", record
                )
                self._flush_block(commit_record=None)
            self._pending.append(record)
            with self._lock:
                self._received_lsn = record["lsn"]
            return
        if op == LogOp.COMMIT.value:
            self._pending.append(record)
            self._flush_block(commit_record=record)
            return
        if op == LogOp.ABORT.value and self._pending:
            # The open block's transaction aborted?  Primaries never ship
            # that (aborted ops are not published), so treat it as a
            # marker between blocks; drop nothing.
            self._note_divergence("abort while block open", record)
        # Marker / structural records (ABORT, CHECKPOINT, namespace DDL)
        # apply immediately to keep LSN alignment.
        self._append_marker(record)
        with self._lock:
            self._received_lsn = record["lsn"]
            self._applied_lsn = (
                record["lsn"] if not self._pending else self._applied_lsn
            )
            self._records_applied += 1

    def _flush_block(self, commit_record: Optional[dict]) -> None:
        """Append the buffered block (data ops + COMMIT) to the local log
        as one contiguous run, mirroring the primary's atomic publish."""
        block, self._pending = self._pending, []
        log = self.db.context.log
        for record in block:
            self._append_record(log, record)
        last = block[-1]["lsn"]
        with self._lock:
            self._received_lsn = max(self._received_lsn, last)
            self._applied_lsn = self._received_lsn
            self._records_applied += len(block)

    def _append_marker(self, record: dict) -> None:
        self._append_record(self.db.context.log, record)

    def _append_record(self, log, record: dict) -> None:
        entry = log.append(
            record.get("txn", 0),
            LogOp(record["op"]),
            record.get("ns", ""),
            record.get("key"),
            record.get("value"),
            record.get("before"),
        )
        if entry.lsn != record["lsn"]:
            self._note_divergence(
                f"local lsn {entry.lsn} != shipped lsn {record['lsn']}",
                record,
            )

    def _note_divergence(self, why: str, record: dict) -> None:
        if self._diverged:
            return
        self._diverged = True
        obs_events.emit(
            "replication_divergence",
            replica=self.name,
            reason=why,
            lsn=record.get("lsn"),
        )

    # -- lifecycle -----------------------------------------------------------

    def reset_pending(self) -> int:
        """Drop the open block (promotion path: a block whose COMMIT never
        arrived belongs to a transaction the dead primary never committed,
        so discarding it is exactly what crash recovery would do).
        Returns how many records were dropped."""
        with self._lock:
            dropped, self._pending = len(self._pending), []
            # The dropped records were counted as received; rewind so a
            # later subscription re-fetches them if a new primary has them.
            self._received_lsn = self._applied_lsn
            return dropped

    def set_lag(self, ship_ts: float) -> None:
        """Record replication lag from a ship frame's primary timestamp."""
        if obs_metrics.ENABLED:
            obs_metrics.gauge(
                "replication_lag_seconds", replica=self.name
            ).set(max(time.time() - ship_ts, 0.0))
            obs_metrics.gauge(
                "replication_applied_lsn", replica=self.name
            ).set(self._applied_lsn)
