"""PostgreSQL-style JSON path operators (slides 37, 73, 82).

The tutorial demonstrates PostgreSQL's JSON operator family on the running
example; this module reproduces it over data-model values:

=========  =========================================  ===========================
Operator   PostgreSQL meaning                          Function here
=========  =========================================  ===========================
``->``     object field / array element (as JSON)     :func:`get_field`
``->>``    object field / array element (as text)     :func:`get_field_text`
``#>``     object at path (as JSON)                    :func:`get_path`
``#>>``    object at path (as text)                    :func:`get_path_text`
``@>``     containment                                 :func:`contains` (re-export)
``?``      top-level key exists                        :func:`has_key`
``?|``     any of the keys exist                       :func:`has_any_key`
``?&``     all of the keys exist                       :func:`has_all_keys`
``#-``     delete at path                              :func:`delete_path`
=========  =========================================  ===========================

Path strings use the PostgreSQL text form ``'{Orderlines,1,Product_Name}'``
(parsed by :func:`parse_path`) or plain dotted form ``a.b.0.c``.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.core import datamodel
from repro.core.datamodel import contains  # noqa: F401  (re-export: @>)
from repro.errors import PathError

__all__ = [
    "parse_path",
    "get_field",
    "get_field_text",
    "get_path",
    "get_path_text",
    "contains",
    "has_key",
    "has_any_key",
    "has_all_keys",
    "delete_path",
    "set_path",
]


def parse_path(path: str | tuple | list) -> tuple:
    """Parse ``'{a,b,1}'`` or ``'a.b.1'`` (or an already-split sequence)
    into a tuple of str keys / int positions."""
    if isinstance(path, (tuple, list)):
        steps = list(path)
    elif isinstance(path, str):
        text = path.strip()
        if text.startswith("{") and text.endswith("}"):
            text = text[1:-1]
            steps = [step.strip() for step in text.split(",")] if text else []
        else:
            steps = text.split(".") if text else []
    else:
        raise PathError(f"cannot parse path from {type(path).__name__!r}")
    parsed: list = []
    for step in steps:
        if isinstance(step, int) and not isinstance(step, bool):
            parsed.append(step)
        elif isinstance(step, str):
            stripped = step.strip()
            if not stripped:
                raise PathError(f"empty step in path {path!r}")
            if stripped.lstrip("-").isdigit():
                parsed.append(int(stripped))
            else:
                parsed.append(stripped)
        else:
            raise PathError(f"bad path step {step!r}")
    return tuple(parsed)


def _as_text(value: Any) -> Optional[str]:
    """The ``->>``/``#>>`` text coercion: strings pass through, scalars use
    JSON spelling, containers serialize."""
    if value is None:
        return None
    if isinstance(value, str):
        return value
    return json.dumps(datamodel.normalize(value), separators=(", ", ": "))


def get_field(value: Any, field: str | int) -> Any:
    """``->``: one object field (str) or array element (int), as a value."""
    return datamodel.deep_get(value, (field,))


def get_field_text(value: Any, field: str | int) -> Optional[str]:
    """``->>``: like ``->`` but coerced to text."""
    return _as_text(get_field(value, field))


def get_path(value: Any, path: str | tuple | list) -> Any:
    """``#>``: navigate a full path, as a value."""
    return datamodel.deep_get(value, parse_path(path))


def get_path_text(value: Any, path: str | tuple | list) -> Optional[str]:
    """``#>>``: like ``#>`` but coerced to text."""
    return _as_text(get_path(value, path))


def has_key(value: Any, key: str) -> bool:
    """``?``: *key* is a top-level object key (or array member, as in
    PostgreSQL where arrays test element membership for strings)."""
    tag = datamodel.type_of(value)
    if tag is datamodel.TypeTag.OBJECT:
        return key in value
    if tag is datamodel.TypeTag.ARRAY:
        return any(
            isinstance(item, str) and item == key for item in value
        )
    return False


def has_any_key(value: Any, keys: list[str]) -> bool:
    """``?|``"""
    return any(has_key(value, key) for key in keys)


def has_all_keys(value: Any, keys: list[str]) -> bool:
    """``?&``"""
    return all(has_key(value, key) for key in keys)


def delete_path(value: Any, path: str | tuple | list) -> Any:
    """``#-``: a copy of *value* with the element at *path* removed
    (missing paths return the value unchanged, as in PostgreSQL)."""
    steps = parse_path(path)
    if not steps:
        return datamodel.normalize(value)
    return _delete(datamodel.normalize(value), steps)


def _delete(value: Any, steps: tuple) -> Any:
    step, rest = steps[0], steps[1:]
    tag = datamodel.type_of(value)
    if tag is datamodel.TypeTag.OBJECT and isinstance(step, str):
        if step not in value:
            return value
        if not rest:
            return {key: item for key, item in value.items() if key != step}
        return {
            key: _delete(item, rest) if key == step else item
            for key, item in value.items()
        }
    if tag is datamodel.TypeTag.ARRAY and isinstance(step, int):
        if not -len(value) <= step < len(value):
            return value
        position = step % len(value)
        if not rest:
            return [item for index, item in enumerate(value) if index != position]
        return [
            _delete(item, rest) if index == position else item
            for index, item in enumerate(value)
        ]
    return value


def set_path(value: Any, path: str | tuple | list, new_value: Any) -> Any:
    """``jsonb_set``: a copy of *value* with *path* replaced (intermediate
    objects are created for missing object keys; missing array positions
    raise :class:`PathError`)."""
    steps = parse_path(path)
    if not steps:
        return datamodel.normalize(new_value)
    return _set(datamodel.normalize(value), steps, datamodel.normalize(new_value))


def _set(value: Any, steps: tuple, new_value: Any) -> Any:
    step, rest = steps[0], steps[1:]
    tag = datamodel.type_of(value)
    if isinstance(step, str):
        base = dict(value) if tag is datamodel.TypeTag.OBJECT else {}
        child = base.get(step)
        base[step] = new_value if not rest else _set(child if child is not None else {}, rest, new_value)
        return base
    if tag is datamodel.TypeTag.ARRAY and isinstance(step, int):
        if not -len(value) <= step < len(value):
            raise PathError(f"array position {step} out of range")
        position = step % len(value)
        copy = list(value)
        copy[position] = (
            new_value if not rest else _set(copy[position], rest, new_value)
        )
        return copy
    raise PathError(f"cannot set step {step!r} inside a {datamodel.type_name(value)}")
