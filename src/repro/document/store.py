"""Document collections (the ArangoDB/Couchbase/MarkLogic model, slide 55).

"Document DB = key/value, where value is complex" — a
:class:`DocumentCollection` stores JSON documents keyed by ``_key`` (assigned
when absent, ArangoDB-style), with:

* PostgreSQL-operator queries (``find_contains`` via GIN when indexed);
* QBE-style example matching (ArangoDB's "simple QBE", slide 72);
* predicate/path filtering, projection and updates (deep merge);
* optional open/closed schema validation (AsterixDB's open vs closed
  datatypes, slide 18).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator, Optional

from repro.core import datamodel
from repro.core.context import BaseStore, EngineContext
from repro.core.cursor import warn_deprecated_scan
from repro.document import jsonpath
from repro.errors import PrimaryKeyError, SchemaError
from repro.txn.manager import Transaction

__all__ = ["DocumentCollection"]


class DocumentCollection(BaseStore):
    """One document collection."""

    model = "doc"

    def __init__(
        self,
        context: EngineContext,
        name: str,
        required_fields: Optional[dict[str, str]] = None,
        closed: bool = False,
    ):
        """``required_fields`` maps field name → data-model type name
        (``"number"``, ``"string"``, …); ``closed=True`` additionally
        rejects fields outside that set (AsterixDB closed datatypes)."""
        super().__init__(context, name)
        self._required = dict(required_fields or {})
        self._closed = closed
        if closed and not self._required:
            raise SchemaError("a closed collection needs declared fields")
        self._key_counter = itertools.count(1)

    # -- validation -------------------------------------------------------------

    def _validate(self, document: dict) -> None:
        for field, type_name in self._required.items():
            if field not in document:
                raise SchemaError(
                    f"collection {self.name!r}: missing required field "
                    f"{field!r}"
                )
            actual = datamodel.type_name(document[field])
            if actual != type_name:
                raise SchemaError(
                    f"collection {self.name!r}: field {field!r} must be "
                    f"{type_name}, got {actual}"
                )
        if self._closed:
            extra = set(document) - set(self._required) - {"_key"}
            if extra:
                raise SchemaError(
                    f"closed collection {self.name!r} rejects fields "
                    f"{sorted(extra)}"
                )

    # -- CRUD ---------------------------------------------------------------------

    def insert(self, document: dict, txn: Optional[Transaction] = None) -> str:
        """Insert a document; assigns ``_key`` when absent; returns the key."""
        if datamodel.type_of(document) is not datamodel.TypeTag.OBJECT:
            raise SchemaError("documents must be objects")
        document = datamodel.normalize(document)
        key = document.get("_key")
        if key is None:
            key = self._next_key(txn)
            document["_key"] = key
        elif not isinstance(key, str):
            raise SchemaError("_key must be a string")
        self._validate(document)
        if self._raw_get(key, txn) is not None:
            raise PrimaryKeyError(
                f"collection {self.name!r}: duplicate _key {key!r}"
            )
        self._put(key, document, txn)
        return key

    def _next_key(self, txn: Optional[Transaction]) -> str:
        while True:
            key = str(next(self._key_counter))
            if self._raw_get(key, txn) is None:
                return key

    def insert_many(
        self, documents: list[dict], txn: Optional[Transaction] = None
    ) -> list[str]:
        return [self.insert(document, txn) for document in documents]

    def get(self, key: str, txn: Optional[Transaction] = None) -> Optional[dict]:
        return self._raw_get(key, txn)

    def replace(
        self, key: str, document: dict, txn: Optional[Transaction] = None
    ) -> bool:
        if self._raw_get(key, txn) is None:
            return False
        document = datamodel.normalize(document)
        document["_key"] = key
        self._validate(document)
        self._put(key, document, txn)
        return True

    def update(
        self, key: str, patch: dict, txn: Optional[Transaction] = None
    ) -> bool:
        """Deep-merge *patch* into the stored document (RFC 7396 flavour)."""
        current = self._raw_get(key, txn)
        if current is None:
            return False
        merged = datamodel.deep_merge(current, patch)
        merged["_key"] = key
        self._validate(merged)
        self._put(key, merged, txn)
        return True

    def delete(self, key: str, txn: Optional[Transaction] = None) -> bool:
        return self._delete_key(key, txn)

    # -- queries -----------------------------------------------------------------

    def all(self, txn: Optional[Transaction] = None) -> Iterator[dict]:
        """Deprecated compat shim — use :meth:`scan_cursor` instead."""
        warn_deprecated_scan("DocumentCollection.all()")
        return iter(self.scan_cursor(txn=txn))

    def find(
        self,
        predicate: Callable[[dict], bool],
        limit: Optional[int] = None,
        txn: Optional[Transaction] = None,
    ) -> list[dict]:
        result = []
        for document in self.scan_cursor(txn=txn):
            if predicate(document):
                result.append(document)
                if limit is not None and len(result) >= limit:
                    break
        return result

    def find_by_example(
        self, example: dict, txn: Optional[Transaction] = None
    ) -> list[dict]:
        """ArangoDB QBE: documents containing the example (``@>``)."""
        return self.find(lambda document: datamodel.contains(document, example), txn=txn)

    def find_contains(
        self, probe: dict, txn: Optional[Transaction] = None
    ) -> list[dict]:
        """``@>`` query, answered through a GIN index when one exists on the
        whole document, else by scan + exact containment."""
        if txn is None:
            index = self._context.indexes.find(self.namespace, (), "containment")
            if index is not None:
                keys = index.index.search_contains(
                    probe, lambda key: self._raw_get(key)
                )
                return [self._raw_get(key) for key in keys]
        return self.find_by_example(probe, txn=txn)

    def find_path_equals(
        self,
        path: str | tuple,
        value: Any,
        txn: Optional[Transaction] = None,
    ) -> list[dict]:
        """Documents whose value at *path* equals *value* (index-served when
        a matching single-field index exists)."""
        steps = jsonpath.parse_path(path)
        if txn is None:
            index = self._context.indexes.find(self.namespace, steps, "point")
            if index is not None:
                return [
                    document
                    for document in (self._raw_get(key) for key in index.search(value))
                    if document is not None
                ]
        return self.find(
            lambda document: datamodel.values_equal(
                datamodel.deep_get(document, steps), value
            ),
            txn=txn,
        )

    # -- DDL helpers ----------------------------------------------------------------

    def create_index(self, path: str | tuple = (), kind: str = "gin", **kwargs):
        """Secondary index: GIN over the whole document by default, or a
        point/range index over one path."""
        steps = jsonpath.parse_path(path) if path else ()
        return self._context.indexes.create_index(
            self.namespace, steps, kind=kind, **kwargs
        )
