"""Document model: JSON collections + PostgreSQL path operators."""

from repro.document import jsonpath
from repro.document.store import DocumentCollection

__all__ = ["jsonpath", "DocumentCollection"]
