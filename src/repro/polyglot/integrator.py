"""The polyglot e-commerce application: client-side integration layer.

Slide 9's cons of polyglot persistence, made executable:

* "hard to handle inter-model queries" — :meth:`recommend_products` joins
  customers (documents), friends (graph), carts (key/value) and orders
  (documents) *in application code*, paying one round trip per store call;
* "hard to handle inter-model transactions" — :meth:`place_order` writes
  three stores with **no atomicity**: a crash between writes
  (``fail_after``) leaves the stores inconsistent, which
  :meth:`check_consistency` detects.  The multi-model engine's
  transactional equivalent can never exhibit this (UniBench Workload C,
  experiment E14).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.fault import registry as fault_registry
from repro.polyglot.stores import (
    NetworkMeter,
    PolyglotDocumentStore,
    PolyglotGraphStore,
    PolyglotKeyValueStore,
)

__all__ = ["PartialFailure", "PolyglotECommerce"]

# Failpoint sites between the three store writes of place_order — the
# atomicity gaps a distributed-transaction coordinator would have closed.
# Armed (e.g. with a seeded ``prob:P`` trigger) they replace the ad-hoc
# crash RNG the UniBench workload used to hand-roll.
_FP_AFTER_ORDERS = fault_registry.register(
    "polyglot.place_order.after_orders",
    "crash window after the order-store write",
)
_FP_AFTER_CART = fault_registry.register(
    "polyglot.place_order.after_cart",
    "crash window after the cart-store write",
)


class PartialFailure(RuntimeError):
    """Simulated crash between two store writes."""


class PolyglotECommerce:
    """Slide 7's deployment: four databases, one application."""

    def __init__(self):
        self.meter = NetworkMeter()
        self.customers = PolyglotDocumentStore("customers", self.meter)
        self.orders = PolyglotDocumentStore("orders", self.meter)
        self.carts = PolyglotKeyValueStore("cart", self.meter)
        self.social = PolyglotGraphStore("social", self.meter)
        self._placed_seq = 0

    # -- data loading ------------------------------------------------------------

    def add_customer(self, customer_id: str, name: str, credit_limit: int) -> None:
        self.customers.insert(
            {"_key": customer_id, "name": name, "credit_limit": credit_limit}
        )
        self.social.add_vertex(customer_id, {"name": name})

    def befriend(self, customer_a: str, customer_b: str) -> None:
        self.social.add_edge(customer_a, customer_b, label="knows")

    # -- the cross-model query (client-side joins) -----------------------------------

    def recommend_products(self, min_credit: int) -> list[str]:
        """Products ordered by friends of customers with
        credit_limit > min_credit — the slide 27 recommendation query, done
        the polyglot way: one store call per join step."""
        rich = self.customers.find(
            lambda customer: (customer.get("credit_limit") or 0) > min_credit
        )
        products: list[str] = []
        for customer in rich:
            friends = self.social.neighbors(customer["_key"], label="knows")
            for friend in friends:
                order_no = self.carts.get(friend)
                if order_no is None:
                    continue
                order = self.orders.get(order_no)
                if order is None:
                    continue
                for line in order.get("Orderlines", []):
                    products.append(line["Product_no"])
        return products

    # -- the cross-model "transaction" (no atomicity) ----------------------------------

    def place_order(
        self,
        customer_id: str,
        order: dict,
        fail_after: Optional[str] = None,
    ) -> str:
        """Create an order, point the customer's cart at it, and record the
        spend on the customer — three stores, three separate commits.

        ``fail_after`` ∈ {"orders", "cart"} aborts between store writes,
        modelling the process crash a distributed-transaction coordinator
        would have protected against; armed failpoints
        (``polyglot.place_order.after_orders`` / ``…after_cart``) trigger
        the same windows deterministically.
        """
        order = dict(order)
        self._placed_seq += 1
        # Markers for the consistency audit: which flow created the order,
        # for whom, and in what sequence.
        order["placed"] = self._placed_seq
        order["placed_for"] = customer_id
        order_no = self.orders.insert(order)
        if fail_after == "orders" or (
            _FP_AFTER_ORDERS.armed and _FP_AFTER_ORDERS.fires()
        ):
            raise PartialFailure("crashed after writing the order store")
        self.carts.put(customer_id, order_no)
        if fail_after == "cart" or (
            _FP_AFTER_CART.armed and _FP_AFTER_CART.fires()
        ):
            raise PartialFailure("crashed after writing the cart store")
        total = sum(line.get("Price", 0) for line in order.get("Orderlines", []))
        self.customers.update(customer_id, {"last_order_total": total})
        return order_no

    def check_consistency(self) -> list[str]:
        """Invariant audit across the stores; returns violation messages.

        Only orders created through :meth:`place_order` are audited (they
        carry the ``placed`` sequence marker).  For each customer, the
        *latest* placed order must be the one their cart references, and
        their document's last_order_total must match it — exactly the state
        an atomic cross-store transaction would have guaranteed.
        """
        violations = []
        latest: dict[str, dict] = {}
        for order in self.orders.all():
            sequence = order.get("placed")
            if not sequence:
                continue
            customer_id = order.get("placed_for", "")
            current = latest.get(customer_id)
            if current is None or sequence > current["placed"]:
                latest[customer_id] = order
        for customer_id, order in sorted(latest.items()):
            cart_pointer = self.carts.get(customer_id)
            if cart_pointer != order["_key"]:
                violations.append(
                    f"order {order['_key']} exists but the cart of customer "
                    f"{customer_id} does not reference it"
                )
                continue
            total = sum(
                line.get("Price", 0) for line in order.get("Orderlines", [])
            )
            customer = self.customers.get(customer_id)
            if customer is None or customer.get("last_order_total") != total:
                violations.append(
                    f"customer {customer_id} cart points at order "
                    f"{order['_key']} but last_order_total is stale"
                )
        return violations
