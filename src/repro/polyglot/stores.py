"""Standalone single-model stores for the polyglot-persistence baseline.

Slide 7's architecture: "Sales → MongoDB, Shopping-cart → Redis, Social
media → Neo4j, Customer → MongoDB" — one *separate* database per model.
Each store here owns its own private backend (its own log, views and
transaction manager), so nothing can be shared: no cross-store queries, no
cross-store transactions.  That isolation is the point of the baseline.

Every public operation charges one *round trip* to a shared
:class:`NetworkMeter` — the client/server hop a real polyglot deployment
pays per store call — so the benchmarks (E12-E14) can compare round-trip
counts against the multi-model engine's single-process execution.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.core.context import EngineContext
from repro.document.store import DocumentCollection
from repro.graph.store import Direction, PropertyGraph
from repro.keyvalue.store import KeyValueBucket

__all__ = [
    "NetworkMeter",
    "PolyglotDocumentStore",
    "PolyglotKeyValueStore",
    "PolyglotGraphStore",
]


class NetworkMeter:
    """Counts simulated client↔server round trips."""

    def __init__(self):
        self.round_trips = 0

    def charge(self, trips: int = 1) -> None:
        self.round_trips += trips

    def reset(self) -> int:
        count = self.round_trips
        self.round_trips = 0
        return count


class PolyglotDocumentStore:
    """A MongoDB-like document database (its own backend)."""

    def __init__(self, name: str, meter: NetworkMeter):
        self._context = EngineContext()
        self._collection = DocumentCollection(self._context, name)
        self._meter = meter
        self.name = name

    def insert(self, document: dict) -> str:
        self._meter.charge()
        return self._collection.insert(document)

    def get(self, key: str) -> Optional[dict]:
        self._meter.charge()
        return self._collection.get(key)

    def update(self, key: str, patch: dict) -> bool:
        self._meter.charge()
        return self._collection.update(key, patch)

    def delete(self, key: str) -> bool:
        self._meter.charge()
        return self._collection.delete(key)

    def find(self, predicate: Callable[[dict], bool]) -> list[dict]:
        self._meter.charge()
        return self._collection.find(predicate)

    def all(self) -> list[dict]:
        self._meter.charge()
        return list(self._collection.scan_cursor())

    def count(self) -> int:
        self._meter.charge()
        return self._collection.count()


class PolyglotKeyValueStore:
    """A Redis-like key/value database (its own backend)."""

    def __init__(self, name: str, meter: NetworkMeter):
        self._context = EngineContext()
        self._bucket = KeyValueBucket(self._context, name)
        self._meter = meter
        self.name = name

    def put(self, key: str, value: Any) -> None:
        self._meter.charge()
        self._bucket.put(key, value)

    def get(self, key: str) -> Any:
        self._meter.charge()
        return self._bucket.get(key)

    def get_many(self, keys: list[str]) -> dict[str, Any]:
        # A pipelined MGET is still one round trip — Redis semantics.
        self._meter.charge()
        return self._bucket.get_many(keys)

    def delete(self, key: str) -> bool:
        self._meter.charge()
        return self._bucket.delete(key)

    def increment(self, key: str, amount: int = 1) -> int:
        self._meter.charge()
        return self._bucket.increment(key, amount)


class PolyglotGraphStore:
    """A Neo4j-like graph database (its own backend)."""

    def __init__(self, name: str, meter: NetworkMeter):
        self._context = EngineContext()
        self._graph = PropertyGraph(self._context, name)
        self._meter = meter
        self.name = name

    def add_vertex(self, key: str, properties: Optional[dict] = None) -> str:
        self._meter.charge()
        return self._graph.add_vertex(key, properties)

    def add_edge(self, from_key: str, to_key: str, label: str = "") -> str:
        self._meter.charge()
        return self._graph.add_edge(from_key, to_key, label=label)

    def vertex(self, key: str) -> Optional[dict]:
        self._meter.charge()
        return self._graph.vertex(key)

    def neighbors(
        self, key: str, direction: str = Direction.OUTBOUND, label: Optional[str] = None
    ) -> list[str]:
        self._meter.charge()
        return self._graph.neighbors(key, direction, label)

    def traverse(
        self,
        start: str,
        min_depth: int,
        max_depth: int,
        direction: str = Direction.OUTBOUND,
        label: Optional[str] = None,
    ) -> list[tuple[str, int]]:
        self._meter.charge()
        return self._graph.traverse(start, min_depth, max_depth, direction, label)

    def remove_vertex(self, key: str) -> bool:
        self._meter.charge()
        return self._graph.remove_vertex(key)
