"""Polyglot-persistence baseline: separate stores + client-side integration."""

from repro.polyglot.integrator import PartialFailure, PolyglotECommerce
from repro.polyglot.stores import (
    NetworkMeter,
    PolyglotDocumentStore,
    PolyglotGraphStore,
    PolyglotKeyValueStore,
)

__all__ = [
    "PartialFailure",
    "PolyglotECommerce",
    "NetworkMeter",
    "PolyglotDocumentStore",
    "PolyglotGraphStore",
    "PolyglotKeyValueStore",
]
