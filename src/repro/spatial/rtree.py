"""An R-tree index for spatial data.

The tutorial's title figure lists *Spatial* among the models a multi-model
database must host, and slide 78 notes "Oracle MySQL — spatial data
R-trees".  This is a real dynamic R-tree (Guttman's original, with
quadratic split): rectangles in leaves, minimum bounding rectangles in
internal nodes, inserts choose the child needing least enlargement, and
overflowing nodes split by the quadratic seed heuristic.

Geometry is 2-D; entries are ``(Rect, rid)``.  Points are zero-area
rectangles.  Queries: rectangle intersection search, containment search,
and k-nearest-neighbour by best-first branch and bound.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.errors import UnsupportedIndexOperationError
from repro.indexes.base import Index, IndexCapabilities

__all__ = ["Rect", "RTree"]


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle (min_x ≤ max_x, min_y ≤ max_y)."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self):
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(f"degenerate rect {self}")

    @classmethod
    def point(cls, x: float, y: float) -> "Rect":
        return cls(x, y, x, y)

    @property
    def area(self) -> float:
        return (self.max_x - self.min_x) * (self.max_y - self.min_y)

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to absorb *other*."""
        return self.union(other).area - self.area

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def contains(self, other: "Rect") -> bool:
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def min_distance_to(self, x: float, y: float) -> float:
        """Euclidean distance from a point to this rectangle (0 inside)."""
        dx = max(self.min_x - x, 0.0, x - self.max_x)
        dy = max(self.min_y - y, 0.0, y - self.max_y)
        return math.hypot(dx, dy)

    def center(self) -> tuple[float, float]:
        return ((self.min_x + self.max_x) / 2, (self.min_y + self.max_y) / 2)


class _Node:
    __slots__ = ("is_leaf", "entries")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        # leaves: list of (Rect, rid); internal: list of (Rect, _Node)
        self.entries: list[tuple[Rect, Any]] = []

    def mbr(self) -> Rect:
        rect = self.entries[0][0]
        for other, _child in self.entries[1:]:
            rect = rect.union(other)
        return rect


class RTree(Index):
    """Guttman R-tree with quadratic split."""

    kind = "rtree"
    capabilities = IndexCapabilities(point=False)

    def __init__(self, max_entries: int = 8, name: str = ""):
        if max_entries < 4:
            raise ValueError("R-tree needs max_entries >= 4")
        self._max = max_entries
        self._min = max(2, max_entries // 2)
        self.name = name
        self._root = _Node(is_leaf=True)
        self._size = 0
        self._height = 1

    # -- protocol ----------------------------------------------------------

    def insert(self, key: Any, rid: Any) -> None:
        """Insert a :class:`Rect` (or (x, y) point tuple) for *rid*."""
        rect = self._coerce(key)
        split = self._insert(self._root, rect, rid, self._height)
        if split is not None:
            old_root = self._root
            self._root = _Node(is_leaf=False)
            self._root.entries = [
                (old_root.mbr(), old_root),
                (split.mbr(), split),
            ]
            self._height += 1
        self._size += 1

    def delete(self, key: Any, rid: Any) -> None:
        """Remove one (rect, rid) entry (exact match); no tree condensation
        beyond removing empty leaves (lazy, like the B+tree)."""
        rect = self._coerce(key)
        if self._delete(self._root, rect, rid):
            self._size -= 1

    def search(self, key: Any) -> list[Any]:
        """rids whose rectangle intersects *key* (the natural probe)."""
        return self.search_intersects(key)

    def clear(self) -> None:
        self._root = _Node(is_leaf=True)
        self._size = 0
        self._height = 1

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    # -- queries --------------------------------------------------------------

    def search_intersects(self, key: Any) -> list[Any]:
        query = self._coerce(key)
        result: list[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            for rect, child in node.entries:
                if not rect.intersects(query):
                    continue
                if node.is_leaf:
                    result.append(child)
                else:
                    stack.append(child)
        return result

    def search_contained_in(self, key: Any) -> list[Any]:
        """rids whose rectangle lies fully inside *key*."""
        query = self._coerce(key)
        result: list[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            for rect, child in node.entries:
                if node.is_leaf:
                    if query.contains(rect):
                        result.append(child)
                elif rect.intersects(query):
                    stack.append(child)
        return result

    def nearest(self, x: float, y: float, k: int = 1) -> list[tuple[float, Any]]:
        """k nearest entries to (x, y) as (distance, rid), best-first."""
        if k < 1:
            return []
        counter = itertools.count()
        heap: list[tuple[float, int, bool, Any]] = [
            (0.0, next(counter), False, self._root)
        ]
        found: list[tuple[float, Any]] = []
        while heap and len(found) < k:
            distance, _tie, is_entry, payload = heapq.heappop(heap)
            if is_entry:
                found.append((distance, payload))
                continue
            node: _Node = payload
            for rect, child in node.entries:
                child_distance = rect.min_distance_to(x, y)
                heapq.heappush(
                    heap,
                    (child_distance, next(counter), node.is_leaf, child),
                )
        return found

    # -- internals ----------------------------------------------------------------

    @staticmethod
    def _coerce(key: Any) -> Rect:
        if isinstance(key, Rect):
            return key
        if (
            isinstance(key, (tuple, list))
            and len(key) == 2
            and all(isinstance(value, (int, float)) for value in key)
        ):
            return Rect.point(float(key[0]), float(key[1]))
        if isinstance(key, (tuple, list)) and len(key) == 4:
            return Rect(*(float(value) for value in key))
        raise UnsupportedIndexOperationError(
            f"R-tree keys are Rects, (x, y) points or 4-tuples; got {key!r}"
        )

    def _insert(
        self, node: _Node, rect: Rect, rid: Any, level: int
    ) -> Optional[_Node]:
        if node.is_leaf:
            node.entries.append((rect, rid))
        else:
            best_index = min(
                range(len(node.entries)),
                key=lambda i: (
                    node.entries[i][0].enlargement(rect),
                    node.entries[i][0].area,
                ),
            )
            child_rect, child = node.entries[best_index]
            split = self._insert(child, rect, rid, level - 1)
            node.entries[best_index] = (child.mbr(), child)
            if split is not None:
                node.entries.append((split.mbr(), split))
        if len(node.entries) > self._max:
            return self._quadratic_split(node)
        return None

    def _quadratic_split(self, node: _Node) -> _Node:
        entries = node.entries
        # Pick the two seeds wasting the most area together.
        worst = None
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i][0].union(entries[j][0]).area
                    - entries[i][0].area
                    - entries[j][0].area
                )
                if worst is None or waste > worst:
                    worst = waste
                    seeds = (i, j)
        first, second = seeds
        group_a = [entries[first]]
        group_b = [entries[second]]
        rest = [
            entry
            for index, entry in enumerate(entries)
            if index not in (first, second)
        ]
        rect_a = group_a[0][0]
        rect_b = group_b[0][0]
        for entry in rest:
            # Respect the minimum fill factor.
            remaining = len(rest) - (len(group_a) + len(group_b) - 2)
            if len(group_a) + remaining <= self._min:
                group_a.append(entry)
                rect_a = rect_a.union(entry[0])
                continue
            if len(group_b) + remaining <= self._min:
                group_b.append(entry)
                rect_b = rect_b.union(entry[0])
                continue
            if rect_a.enlargement(entry[0]) <= rect_b.enlargement(entry[0]):
                group_a.append(entry)
                rect_a = rect_a.union(entry[0])
            else:
                group_b.append(entry)
                rect_b = rect_b.union(entry[0])
        node.entries = group_a
        sibling = _Node(is_leaf=node.is_leaf)
        sibling.entries = group_b
        return sibling

    def _delete(self, node: _Node, rect: Rect, rid: Any) -> bool:
        if node.is_leaf:
            for index, (stored_rect, stored_rid) in enumerate(node.entries):
                if stored_rid == rid and stored_rect == rect:
                    del node.entries[index]
                    return True
            return False
        for index, (stored_rect, child) in enumerate(node.entries):
            if stored_rect.intersects(rect) and self._delete(child, rect, rid):
                if child.entries:
                    node.entries[index] = (child.mbr(), child)
                else:
                    del node.entries[index]
                return True
        return False
