"""Spatial store: geo-tagged records over the shared backend.

Completes the title figure's model list (Table, XML, JSON, Spatial, Text,
RDF): records carry a point or box geometry, an R-tree serves window and
nearest-neighbour queries, and everything participates in cross-model
transactions like every other store.

Records are stored as ``{"geometry": {"type": "point"|"box", …},
"properties": {…}}``; geometry follows a GeoJSON-flavoured dict shape so
documents can embed it too.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.core import datamodel
from repro.core.context import BaseStore, EngineContext
from repro.core.cursor import IteratorScanCursor, ScanCursor, warn_deprecated_scan
from repro.errors import SchemaError
from repro.spatial.rtree import Rect, RTree
from repro.storage.log import LogEntry, LogOp
from repro.txn.manager import Transaction

__all__ = ["SpatialStore", "geometry_to_rect"]


def geometry_to_rect(geometry: dict) -> Rect:
    """Convert a geometry dict to its bounding :class:`Rect`."""
    if not isinstance(geometry, dict):
        raise SchemaError("geometry must be an object")
    kind = geometry.get("type")
    try:
        if kind == "point":
            return Rect.point(float(geometry["x"]), float(geometry["y"]))
        if kind == "box":
            return Rect(
                float(geometry["min_x"]),
                float(geometry["min_y"]),
                float(geometry["max_x"]),
                float(geometry["max_y"]),
            )
    except (KeyError, TypeError, ValueError) as error:
        raise SchemaError(f"bad geometry {geometry!r}: {error}") from error
    raise SchemaError(f"unknown geometry type {kind!r} (point or box)")


class SpatialStore(BaseStore):
    """Geo-keyed records with an R-tree maintained from the central log."""

    model = "geo"

    def __init__(self, context: EngineContext, name: str, rtree_fanout: int = 8):
        super().__init__(context, name)
        self._rtree = RTree(max_entries=rtree_fanout, name=f"rtree:{name}")
        context.log.subscribe(self._on_log_entry)

    # -- R-tree maintenance (committed data only, like all indexes) ------------

    def _on_log_entry(self, entry: LogEntry) -> None:
        if entry.namespace != self.namespace:
            return
        if entry.op is LogOp.DROP_NAMESPACE:
            self._rtree.clear()
            return
        if entry.op in (LogOp.UPDATE, LogOp.DELETE) and entry.before is not None:
            self._rtree.delete(
                geometry_to_rect(entry.before["geometry"]), entry.key
            )
        if entry.op in (LogOp.INSERT, LogOp.UPDATE):
            self._rtree.insert(
                geometry_to_rect(entry.value["geometry"]), entry.key
            )

    # -- CRUD --------------------------------------------------------------------

    def put_point(
        self,
        key: str,
        x: float,
        y: float,
        properties: Optional[dict] = None,
        txn: Optional[Transaction] = None,
    ) -> None:
        self._put_record(
            key, {"type": "point", "x": float(x), "y": float(y)}, properties, txn
        )

    def put_box(
        self,
        key: str,
        min_x: float,
        min_y: float,
        max_x: float,
        max_y: float,
        properties: Optional[dict] = None,
        txn: Optional[Transaction] = None,
    ) -> None:
        geometry = {
            "type": "box",
            "min_x": float(min_x),
            "min_y": float(min_y),
            "max_x": float(max_x),
            "max_y": float(max_y),
        }
        geometry_to_rect(geometry)  # validates ordering
        self._put_record(key, geometry, properties, txn)

    def _put_record(
        self,
        key: str,
        geometry: dict,
        properties: Optional[dict],
        txn: Optional[Transaction],
    ) -> None:
        if not isinstance(key, str):
            raise SchemaError("spatial keys are strings")
        record = {
            "geometry": geometry,
            "properties": datamodel.normalize(properties or {}),
        }
        self._put(key, record, txn)

    def get(self, key: str, txn: Optional[Transaction] = None) -> Optional[dict]:
        return self._raw_get(key, txn)

    def delete(self, key: str, txn: Optional[Transaction] = None) -> bool:
        return self._delete_key(key, txn)

    def scan_cursor(self, txn: Optional[Transaction] = None) -> ScanCursor:
        """Unified batched scan: ``{"_key": key, "geometry": …,
        "properties": …}`` frames (key folded into the record, MMQL
        shape)."""
        return IteratorScanCursor(
            {"_key": key, **record} for key, record in self._raw_scan(txn)
        )

    def all(self, txn: Optional[Transaction] = None) -> Iterator[tuple[str, dict]]:
        """Deprecated compat shim — use :meth:`scan_cursor` instead."""
        warn_deprecated_scan("SpatialStore.all()")
        return (
            (frame["_key"], {k: v for k, v in frame.items() if k != "_key"})
            for frame in self.scan_cursor(txn=txn)
        )

    # -- spatial queries -------------------------------------------------------------

    def window(
        self,
        min_x: float,
        min_y: float,
        max_x: float,
        max_y: float,
        txn: Optional[Transaction] = None,
    ) -> list[str]:
        """Keys whose geometry intersects the window.

        Served by the R-tree outside transactions; snapshot reads fall back
        to a filtered scan (index reflects committed state only).
        """
        query = Rect(min_x, min_y, max_x, max_y)
        if txn is None:
            return sorted(self._rtree.search_intersects(query))
        return sorted(
            key
            for key, record in self._raw_scan(txn)
            if geometry_to_rect(record["geometry"]).intersects(query)
        )

    def within(
        self,
        min_x: float,
        min_y: float,
        max_x: float,
        max_y: float,
        txn: Optional[Transaction] = None,
    ) -> list[str]:
        """Keys fully contained in the window."""
        query = Rect(min_x, min_y, max_x, max_y)
        if txn is None:
            return sorted(self._rtree.search_contained_in(query))
        return sorted(
            key
            for key, record in self._raw_scan(txn)
            if query.contains(geometry_to_rect(record["geometry"]))
        )

    def nearest(
        self, x: float, y: float, k: int = 1, txn: Optional[Transaction] = None
    ) -> list[tuple[str, float]]:
        """k nearest keys to (x, y) as (key, distance)."""
        if txn is None:
            return [
                (key, distance)
                for distance, key in self._rtree.nearest(x, y, k)
            ]
        scored = sorted(
            (
                geometry_to_rect(record["geometry"]).min_distance_to(x, y),
                key,
            )
            for key, record in self._raw_scan(txn)
        )
        return [(key, distance) for distance, key in scored[:k]]

    @property
    def rtree(self) -> RTree:
        return self._rtree
