"""Spatial model: R-tree indexed geo records (the title figure's 'Spatial')."""

from repro.spatial.rtree import Rect, RTree
from repro.spatial.store import SpatialStore, geometry_to_rect

__all__ = ["Rect", "RTree", "SpatialStore", "geometry_to_rect"]
