"""UniBench-style multi-model data generator (slides 86-88).

"UniBench: a unified benchmark for multi-model data — an e-commerce
application involving multi-model data" (J. Lu, CIDR 2017).  The original
derives its data from LDBC; this generator (the DESIGN.md §2 substitution)
produces the same *entity and model mix* synthetically and deterministically
from a seed:

* **customers** — relational rows (id, name, city, credit_limit);
* **social network** — a graph over customers with clustered ``knows``
  edges (preferential attachment, so degree is skewed like a real network);
* **products** — documents with category and price;
* **vendors** — RDF triples (product → vendor → country);
* **orders** — JSON documents with nested order lines;
* **carts** — key/value pairs (customer id → latest order number);
* **feedback** — text reviews (for the full-text index).

``scale_factor`` 1 ≈ 100 customers / 50 products / 200 orders; everything
scales linearly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["UniBenchData", "generate", "load_into_multimodel", "load_into_polyglot"]

_FIRST_NAMES = [
    "Mary", "John", "Anne", "William", "Eva", "Matti", "Jana", "Petr",
    "Laura", "Tomas", "Nina", "Olli", "Karel", "Sofia", "Mikko", "Lenka",
]
_CITIES = ["Prague", "Helsinki", "Brno", "Espoo", "Tampere", "Ostrava"]
_CATEGORIES = ["Toy", "Book", "Computer", "Garden", "Music", "Sport"]
_VENDOR_COUNTRIES = ["FI", "CZ", "DE", "SE", "US"]
_REVIEW_GOOD = [
    "excellent quality fast delivery would buy again",
    "great product works perfectly highly recommended",
    "good value happy with this purchase",
]
_REVIEW_BAD = [
    "poor quality broke after one week disappointed",
    "terrible experience arrived damaged refund requested",
    "bad packaging slow shipping not recommended",
]


@dataclass
class UniBenchData:
    """One generated data set (all lists are deterministic in the seed)."""

    scale_factor: int
    seed: int
    customers: list[dict] = field(default_factory=list)
    knows_edges: list[tuple[str, str]] = field(default_factory=list)
    products: list[dict] = field(default_factory=list)
    vendor_triples: list[tuple[str, str, str]] = field(default_factory=list)
    orders: list[dict] = field(default_factory=list)
    carts: dict[str, str] = field(default_factory=dict)
    feedback: list[dict] = field(default_factory=list)

    def summary(self) -> dict[str, int]:
        return {
            "customers": len(self.customers),
            "knows_edges": len(self.knows_edges),
            "products": len(self.products),
            "vendor_triples": len(self.vendor_triples),
            "orders": len(self.orders),
            "carts": len(self.carts),
            "feedback": len(self.feedback),
        }


def generate(scale_factor: int = 1, seed: int = 42) -> UniBenchData:
    """Deterministic multi-model e-commerce data set."""
    if scale_factor < 1:
        raise ValueError("scale factor must be >= 1")
    rng = random.Random(seed)
    data = UniBenchData(scale_factor=scale_factor, seed=seed)

    customer_count = 100 * scale_factor
    product_count = 50 * scale_factor
    order_count = 200 * scale_factor
    vendor_count = max(5, 2 * scale_factor)

    # customers (relational)
    for index in range(1, customer_count + 1):
        data.customers.append(
            {
                "id": index,
                "name": f"{rng.choice(_FIRST_NAMES)}-{index}",
                "city": rng.choice(_CITIES),
                "credit_limit": rng.choice([1000, 2000, 3000, 5000, 8000]),
            }
        )

    # social graph (preferential attachment for a skewed degree profile)
    endpoints: list[int] = []
    for index in range(2, customer_count + 1):
        edges_here = rng.randint(1, 3)
        for _ in range(edges_here):
            if endpoints and rng.random() < 0.7:
                target = rng.choice(endpoints)
            else:
                target = rng.randint(1, index - 1)
            if target != index:
                data.knows_edges.append((str(index), str(target)))
                endpoints.extend([index, target])
    data.knows_edges = sorted(set(data.knows_edges))

    # products (documents)
    for index in range(1, product_count + 1):
        category = rng.choice(_CATEGORIES)
        data.products.append(
            {
                "_key": f"p{index:05d}",
                "product_no": f"p{index:05d}",
                "name": f"{category}-{index}",
                "category": category,
                "price": rng.randint(5, 200),
            }
        )

    # vendors (RDF)
    vendors = [f"vendor{v}" for v in range(1, vendor_count + 1)]
    for vendor in vendors:
        data.vendor_triples.append(
            (vendor, "locatedIn", rng.choice(_VENDOR_COUNTRIES))
        )
    for product in data.products:
        data.vendor_triples.append(
            (product["product_no"], "soldBy", rng.choice(vendors))
        )

    # orders (JSON documents) + carts (key/value)
    for index in range(1, order_count + 1):
        customer = rng.randint(1, customer_count)
        lines = []
        for _ in range(rng.randint(1, 4)):
            product = rng.choice(data.products)
            quantity = rng.randint(1, 3)
            lines.append(
                {
                    "Product_no": product["product_no"],
                    "Product_Name": product["name"],
                    "Price": product["price"],
                    "Quantity": quantity,
                }
            )
        order_no = f"o{index:06d}"
        data.orders.append(
            {
                "_key": order_no,
                "Order_no": order_no,
                "customer_id": customer,
                "total": sum(l["Price"] * l["Quantity"] for l in lines),
                "Orderlines": lines,
            }
        )
        data.carts[str(customer)] = order_no

    # feedback (text)
    for index, order in enumerate(data.orders):
        if index % 3 != 0:
            continue
        line = rng.choice(order["Orderlines"])
        positive = rng.random() < 0.7
        data.feedback.append(
            {
                "_key": f"f{index:06d}",
                "product_no": line["Product_no"],
                "customer_id": order["customer_id"],
                "positive": positive,
                "text": rng.choice(_REVIEW_GOOD if positive else _REVIEW_BAD),
            }
        )
    return data


def load_into_multimodel(db, data: UniBenchData, with_indexes: bool = True) -> None:
    """Populate a :class:`repro.MultiModelDB` with the data set.

    Creates: table ``customers``; graph ``social``; collections
    ``products``, ``orders``, ``feedback``; bucket ``cart``; triple store
    ``vendors``; and (optionally) the indexes the workloads exploit.
    """
    from repro.relational.schema import Column, ColumnType, TableSchema

    db.create_table(
        TableSchema(
            "customers",
            [
                Column("id", ColumnType.INTEGER, nullable=False),
                Column("name", ColumnType.STRING, nullable=False),
                Column("city", ColumnType.STRING),
                Column("credit_limit", ColumnType.INTEGER),
            ],
            primary_key="id",
        )
    )
    customers = db.table("customers")
    for row in data.customers:
        customers.insert(row)

    social = db.create_graph("social")
    for row in data.customers:
        social.add_vertex(str(row["id"]), {"name": row["name"]})
    for source, target in data.knows_edges:
        social.add_edge(source, target, label="knows")

    products = db.create_collection("products")
    for product in data.products:
        products.insert(product)

    orders = db.create_collection("orders")
    for order in data.orders:
        orders.insert(order)

    cart = db.create_bucket("cart")
    for customer_id, order_no in data.carts.items():
        cart.put(customer_id, order_no)

    feedback = db.create_collection("feedback")
    for review in data.feedback:
        feedback.insert(review)

    vendors = db.create_triple_store("vendors")
    vendors.add_many(data.vendor_triples)

    if with_indexes:
        orders.create_index("Order_no", kind="hash")
        orders.create_index("customer_id", kind="hash")
        products.create_index("category", kind="hash")
        feedback.create_index("product_no", kind="hash")
        db.context.indexes.create_index(
            feedback.namespace, ("text",), kind="fulltext", name="feedback_text"
        )


def load_into_polyglot(app, data: UniBenchData) -> None:
    """Populate a :class:`repro.polyglot.PolyglotECommerce` deployment
    (meter reset afterwards so loading is free, like a warm system)."""
    for row in data.customers:
        app.add_customer(str(row["id"]), row["name"], row["credit_limit"])
        app.customers.update(str(row["id"]), {"city": row["city"]})
    for source, target in data.knows_edges:
        app.befriend(source, target)
    for order in data.orders:
        app.orders.insert(dict(order))
    for customer_id, order_no in data.carts.items():
        app.carts.put(customer_id, order_no)
    app.meter.reset()
