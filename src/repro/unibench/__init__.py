"""UniBench: the multi-model benchmark (slides 86-88)."""

from repro.unibench.generator import (
    UniBenchData,
    generate,
    load_into_multimodel,
    load_into_polyglot,
)
from repro.unibench.runner import (
    build_multimodel,
    build_polyglot,
    render_report,
    run_all,
)
from repro.unibench.workloads import (
    QUERIES_B,
    new_order_transaction,
    workload_a_multimodel,
    workload_a_polyglot,
    workload_b_api,
    workload_b_mmql,
    workload_b_polyglot,
    workload_c_multimodel,
    workload_c_polyglot,
)

__all__ = [
    "UniBenchData",
    "generate",
    "load_into_multimodel",
    "load_into_polyglot",
    "build_multimodel",
    "build_polyglot",
    "render_report",
    "run_all",
    "QUERIES_B",
    "new_order_transaction",
    "workload_a_multimodel",
    "workload_a_polyglot",
    "workload_b_api",
    "workload_b_mmql",
    "workload_b_polyglot",
    "workload_c_multimodel",
    "workload_c_polyglot",
]
