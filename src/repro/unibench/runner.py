"""UniBench runner: builds both deployments, runs A/B/C, renders a report.

This is the module the ``benchmarks/bench_unibench_*.py`` targets and the
``examples/unibench_demo.py`` script drive; it returns plain dicts so
pytest-benchmark and the report renderer can both consume the results.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.database import MultiModelDB
from repro.obs import metrics as obs_metrics
from repro.polyglot.integrator import PolyglotECommerce
from repro.unibench import workloads
from repro.unibench.generator import (
    UniBenchData,
    generate,
    load_into_multimodel,
    load_into_polyglot,
)

__all__ = ["build_multimodel", "build_polyglot", "run_all", "render_report"]


def build_multimodel(
    data: UniBenchData, with_indexes: bool = True
) -> MultiModelDB:
    db = MultiModelDB()
    load_into_multimodel(db, data, with_indexes=with_indexes)
    return db


def build_polyglot(data: UniBenchData) -> PolyglotECommerce:
    app = PolyglotECommerce()
    load_into_polyglot(app, data)
    return app


def _timed(workload: str, deployment: str, fn, *args, **kwargs) -> tuple[Any, float]:
    """Run a workload step, landing its wall-time in the engine metrics
    registry (``unibench_workload_seconds{workload=…,deployment=…}``) so
    benchmark timings share a home with the query/storage counters."""
    metric = obs_metrics.histogram(
        "unibench_workload_seconds", workload=workload, deployment=deployment
    )
    return obs_metrics.timed_call(fn, *args, metric=metric, **kwargs)


def run_all(scale_factor: int = 1, seed: int = 42) -> dict:
    """Run every workload against both deployments; returns the full
    result tree (used by EXPERIMENTS.md and the demo example)."""
    data = generate(scale_factor, seed)
    db = build_multimodel(data)
    app = build_polyglot(data)

    results: dict[str, Any] = {"scale_factor": scale_factor, "data": data.summary()}

    a_mm, t_mm = _timed("A", "multimodel", workloads.workload_a_multimodel, db, data)
    a_pg, t_pg = _timed("A", "polyglot", workloads.workload_a_polyglot, app, data)
    results["A"] = {
        "multimodel": {**a_mm, "seconds": t_mm},
        "polyglot": {**a_pg, "seconds": t_pg},
    }

    results["B"] = {}
    for query_id in workloads.QUERIES_B:
        result, seconds = _timed(
            f"B:{query_id}", "multimodel", workloads.workload_b_mmql, db, query_id
        )
        results["B"][query_id] = {
            "multimodel": {"rows": len(result.rows), "seconds": seconds,
                           "stats": result.stats},
        }
    pg_q1, seconds = _timed("B:Q1", "polyglot", workloads.workload_b_polyglot, app)
    results["B"]["Q1"]["polyglot"] = {
        "rows": len(pg_q1["products"]),
        "round_trips": pg_q1["round_trips"],
        "seconds": seconds,
    }
    # Cross-check Q1 three ways.
    api_products = workloads.workload_b_api(db)
    results["B"]["Q1"]["agreement"] = sorted(pg_q1["products"]) == sorted(
        api_products
    ) and sorted(api_products) == sorted(
        workloads.workload_b_mmql(db, "Q1").rows
    )

    c_mm, t_mm = _timed("C", "multimodel", workloads.workload_c_multimodel, db, data)
    c_pg, t_pg = _timed("C", "polyglot", workloads.workload_c_polyglot, app, data)
    results["C"] = {
        "multimodel": {**c_mm, "seconds": t_mm},
        "polyglot": {**c_pg, "seconds": t_pg},
    }
    return results


def render_report(results: dict) -> str:
    """Plain-text report in the shape of the paper's workload table."""
    lines = [
        f"UniBench  (scale factor {results['scale_factor']})",
        "=" * 64,
        "data: " + ", ".join(f"{k}={v}" for k, v in results["data"].items()),
        "",
        "Workload A — insertion & reading",
        f"  multi-model : {results['A']['multimodel']['reads']} reads, "
        f"{results['A']['multimodel']['hits']} hits, "
        f"{results['A']['multimodel']['seconds'] * 1000:.1f} ms",
        f"  polyglot    : {results['A']['polyglot']['reads']} reads, "
        f"{results['A']['polyglot']['hits']} hits, "
        f"{results['A']['polyglot']['round_trips']} round trips, "
        f"{results['A']['polyglot']['seconds'] * 1000:.1f} ms",
        "",
        "Workload B — cross-model queries",
    ]
    for query_id, entry in results["B"].items():
        mm = entry["multimodel"]
        line = (
            f"  {query_id}: {mm['rows']} rows in {mm['seconds'] * 1000:.1f} ms "
            f"(scanned {mm['stats']['scanned']}, "
            f"index lookups {mm['stats']['index_lookups']})"
        )
        if "polyglot" in entry:
            pg = entry["polyglot"]
            line += (
                f"  |  polyglot: {pg['rows']} rows, {pg['round_trips']} "
                f"round trips, {pg['seconds'] * 1000:.1f} ms"
            )
        lines.append(line)
    if "agreement" in results["B"].get("Q1", {}):
        lines.append(
            f"  Q1 three-way agreement (MMQL vs API vs polyglot): "
            f"{results['B']['Q1']['agreement']}"
        )
    c_mm = results["C"]["multimodel"]
    c_pg = results["C"]["polyglot"]
    lines += [
        "",
        "Workload C — cross-model transactions",
        f"  multi-model : {c_mm['commits']} commits, {c_mm['aborts']} aborts, "
        f"{c_mm['violations']} consistency violations",
        f"  polyglot    : {c_pg['completed']} completed, {c_pg['crashed']} crashed, "
        f"{c_pg['violations']} consistency violations",
    ]
    return "\n".join(lines)
