"""UniBench workloads A, B, C (slide 87).

* **Workload A — data insertion and reading**: per-model inserts followed
  by point reads; measured for the multi-model engine and the polyglot
  deployment (whose cost unit is store round trips).
* **Workload B — cross-model query**: five queries, each spanning at least
  two models, implemented three ways where applicable: MMQL against the
  engine, hand-written against the engine's APIs, and client-side joins
  against the polyglot stores.
* **Workload C — cross-model transaction**: the new-order transaction
  touching the order collection, the cart bucket and the customer relation;
  run under contention for abort-rate measurements, and against the
  polyglot baseline with crash injection for atomicity violations.
"""

from __future__ import annotations

import random
from typing import Any, Optional

from repro.errors import SerializationError
from repro.fault import registry as fault_registry
from repro.fault.retry import RetryExhaustedError, retry_with_backoff
from repro.polyglot.integrator import PartialFailure, PolyglotECommerce
from repro.unibench.generator import UniBenchData

__all__ = [
    "workload_a_multimodel",
    "workload_a_polyglot",
    "QUERIES_B",
    "workload_b_mmql",
    "workload_b_api",
    "workload_b_remote",
    "mixed_ab_statements",
    "run_mixed_ab",
    "workload_b_polyglot",
    "new_order_transaction",
    "workload_c_multimodel",
    "workload_c_polyglot",
]


# ---------------------------------------------------------------------------
# Workload A — insertion and reading
# ---------------------------------------------------------------------------


def workload_a_multimodel(db, data: UniBenchData, reads: int = 200, seed: int = 7) -> dict:
    """Point reads across all models of an already-loaded engine."""
    rng = random.Random(seed)
    customers = db.table("customers")
    orders = db.collection("orders")
    cart = db.bucket("cart")
    social = db.graph("social")
    hits = 0
    for _ in range(reads):
        kind = rng.choice(["rel", "doc", "kv", "graph"])
        if kind == "rel":
            row = customers.get(rng.randint(1, len(data.customers)))
            hits += row is not None
        elif kind == "doc":
            order = orders.get(rng.choice(data.orders)["_key"])
            hits += order is not None
        elif kind == "kv":
            value = cart.get(str(rng.randint(1, len(data.customers))))
            hits += value is not None
        else:
            vertex = social.vertex(str(rng.randint(1, len(data.customers))))
            hits += vertex is not None
    return {"reads": reads, "hits": hits}


def workload_a_polyglot(app: PolyglotECommerce, data: UniBenchData, reads: int = 200, seed: int = 7) -> dict:
    rng = random.Random(seed)
    hits = 0
    app.meter.reset()
    for _ in range(reads):
        kind = rng.choice(["rel", "doc", "kv", "graph"])
        if kind in ("rel", "doc"):
            store = app.customers if kind == "rel" else app.orders
            key = (
                str(rng.randint(1, len(data.customers)))
                if kind == "rel"
                else rng.choice(data.orders)["_key"]
            )
            hits += store.get(key) is not None
        elif kind == "kv":
            hits += app.carts.get(str(rng.randint(1, len(data.customers)))) is not None
        else:
            hits += app.social.vertex(str(rng.randint(1, len(data.customers)))) is not None
    return {"reads": reads, "hits": hits, "round_trips": app.meter.round_trips}


# ---------------------------------------------------------------------------
# Workload B — cross-model queries
# ---------------------------------------------------------------------------

#: Q1 — the running example (slides 27-28): products ordered by a friend of
#: a customer whose credit_limit > @min_credit.
Q1_RECOMMENDATION = """
FOR c IN customers
  FILTER c.credit_limit > @min_credit
  FOR friend IN 1..1 OUTBOUND c.id GRAPH social LABEL 'knows'
    LET order_no = KV_GET('cart', friend._key)
    FILTER order_no != NULL
    FOR o IN orders
      FILTER o.Order_no == order_no
      FOR line IN o.Orderlines
        RETURN DISTINCT line.Product_no
"""

#: Q2 — orders of customers living in @city (relational ⋈ document).
Q2_CITY_ORDERS = """
FOR c IN customers
  FILTER c.city == @city
  FOR o IN orders
    FILTER o.customer_id == c.id
    RETURN {customer: c.name, order: o.Order_no, total: o.total}
"""

#: Q3 — total spend per city (relational ⋈ document + aggregation).
Q3_SPEND_BY_CITY = """
FOR o IN orders
  LET c = DOCUMENT('customers', o.customer_id)
  COLLECT city = c.city INTO members
  SORT city
  RETURN {city: city, spend: SUM(members[*].o.total)}
"""

#: Q4 — products in @category with positive feedback (document ⋈ document
#: ⋈ full-text flavoured predicate).
Q4_CATEGORY_FEEDBACK = """
FOR p IN products
  FILTER p.category == @category
  LET praise = (
    FOR f IN feedback
      FILTER f.product_no == p.product_no AND f.positive == true
      RETURN f._key
  )
  FILTER LENGTH(praise) > 0
  SORT p.product_no
  RETURN {product: p.product_no, reviews: LENGTH(praise)}
"""

#: Q5 — two-hop friend recommendation with vendor country (graph depth 2 ⋈
#: key/value ⋈ document ⋈ RDF).
Q5_TWO_HOP_VENDORS = """
FOR friend IN 2..2 OUTBOUND @start GRAPH social LABEL 'knows'
  LET order_no = KV_GET('cart', friend._key)
  FILTER order_no != NULL
  FOR o IN orders
    FILTER o.Order_no == order_no
    FOR line IN o.Orderlines
      FOR triple IN RDF_MATCH('vendors', line.Product_no, 'soldBy', '?v')
        RETURN DISTINCT {product: line.Product_no, vendor: triple[2]}
"""

QUERIES_B = {
    "Q1": (Q1_RECOMMENDATION, {"min_credit": 5000}),
    "Q2": (Q2_CITY_ORDERS, {"city": "Prague"}),
    "Q3": (Q3_SPEND_BY_CITY, {}),
    "Q4": (Q4_CATEGORY_FEEDBACK, {"category": "Book"}),
    "Q5": (Q5_TWO_HOP_VENDORS, {"start": "10"}),
}


def workload_b_mmql(db, query_id: str = "Q1", bind_vars: Optional[dict] = None):
    text, defaults = QUERIES_B[query_id]
    return db.query(text, {**defaults, **(bind_vars or {})})


def workload_b_api(db, min_credit: int = 5000) -> list[str]:
    """Q1 hand-written against the engine APIs (no query language) — the
    reference the MMQL result is checked against."""
    customers = db.table("customers")
    social = db.graph("social")
    cart = db.bucket("cart")
    orders = db.collection("orders")
    seen: list[str] = []
    for row in customers.select(where=lambda r: r["credit_limit"] > min_credit):
        for friend in social.neighbors(str(row["id"]), label="knows"):
            order_no = cart.get(friend)
            if order_no is None:
                continue
            order = orders.find_path_equals("Order_no", order_no)
            if not order:
                continue
            for line in order[0]["Orderlines"]:
                if line["Product_no"] not in seen:
                    seen.append(line["Product_no"])
    return seen


def workload_b_remote(client, query_id: str = "Q1", bind_vars: Optional[dict] = None):
    """Workload B over the wire: same statement, served engine.

    *client* is anything with the :class:`repro.client.ReproClient` query
    surface, so the differential tests can pass either a wire client or the
    embedded ``db`` and compare row-for-row."""
    text, defaults = QUERIES_B[query_id]
    return client.query(text, {**defaults, **(bind_vars or {})})


def mixed_ab_statements(
    data: UniBenchData,
    seed: int = 7,
    reads: int = 20,
    queries: tuple = ("Q1", "Q2", "Q3", "Q4"),
) -> list[tuple[str, dict]]:
    """A deterministic mixed A/B workload as ``(text, bind_vars)`` pairs.

    Workload-A point reads are phrased in MMQL (relational/document/KV
    lookups) so the *same* statements execute embedded via ``db.query`` or
    remotely via a wire client — the remote-session acceptance test runs
    both and compares results.  Seeded shuffling interleaves cheap point
    reads with the heavier cross-model B queries, which is exactly the mix
    that exposes session-interleaving bugs."""
    rng = random.Random(seed)
    statements: list[tuple[str, dict]] = []
    for _ in range(reads):
        kind = rng.choice(["rel", "doc", "kv"])
        if kind == "rel":
            statements.append((
                "FOR c IN customers FILTER c.id == @id RETURN c.name",
                {"id": rng.randint(1, len(data.customers))},
            ))
        elif kind == "doc":
            statements.append((
                "FOR o IN orders FILTER o._key == @key RETURN o.Order_no",
                {"key": rng.choice(data.orders)["_key"]},
            ))
        else:
            statements.append((
                "RETURN KV_GET('cart', @key)",
                {"key": str(rng.randint(1, len(data.customers)))},
            ))
    for query_id in queries:
        statements.append(QUERIES_B[query_id])
    rng.shuffle(statements)
    return statements


def run_mixed_ab(executor, statements: list[tuple[str, dict]]) -> list[list]:
    """Execute a :func:`mixed_ab_statements` list and return rows per
    statement.  *executor* is the embedded db or a wire client — both
    expose ``query(text, bind_vars)``."""
    return [executor.query(text, dict(binds)).rows for text, binds in statements]


def workload_b_polyglot(app: PolyglotECommerce, min_credit: int = 5000) -> dict:
    """Q1 against the polyglot stores; returns products and round trips."""
    app.meter.reset()
    products = app.recommend_products(min_credit)
    unique = []
    for product in products:
        if product not in unique:
            unique.append(product)
    return {"products": unique, "round_trips": app.meter.round_trips}


# ---------------------------------------------------------------------------
# Workload C — cross-model transactions
# ---------------------------------------------------------------------------


def new_order_transaction(db, customer_id: int, order: dict, txn=None) -> str:
    """The UniBench new-order transaction: insert the order document, point
    the cart at it, and debit the customer's credit — three models, one
    atomic unit when *txn* is supplied."""
    orders = db.collection("orders")
    cart = db.bucket("cart")
    customers = db.table("customers")

    order_no = orders.insert(order, txn=txn)
    cart.put(str(customer_id), order_no, txn=txn)
    row = customers.get(customer_id, txn=txn)
    if row is None:
        raise ValueError(f"no customer {customer_id}")
    customers.update(
        customer_id,
        {"credit_limit": row["credit_limit"] - order.get("total", 0)},
        txn=txn,
    )
    return order_no


def workload_c_multimodel(
    db,
    data: UniBenchData,
    transactions: int = 50,
    hot_customers: int = 5,
    seed: int = 11,
) -> dict:
    """Run contended new-order transactions; returns commit/abort counts.

    ``hot_customers`` shrinks the customer pool to force write-write
    conflicts on the cart/credit records (the contention knob)."""
    rng = random.Random(seed)
    commits = 0
    aborts = 0
    for index in range(transactions):
        customer_id = rng.randint(1, hot_customers)
        order = {
            "Order_no": f"wc{seed}-{index:05d}",
            "_key": f"wc{seed}-{index:05d}",
            "customer_id": customer_id,
            "total": rng.randint(5, 50),
            "Orderlines": [
                {"Product_no": rng.choice(data.products)["product_no"],
                 "Price": 10, "Quantity": 1}
            ],
        }
        txn = db.begin()
        try:
            new_order_transaction(db, customer_id, order, txn=txn)
            # Interleave a rival on the same hot customer some of the time.
            if rng.random() < 0.3:
                rival = db.begin()
                db.bucket("cart").put(str(customer_id), "rival-order", txn=rival)
                db.commit(rival)
            db.commit(txn)
            commits += 1
        except SerializationError:
            aborts += 1
    violations = _audit_multimodel(db)
    return {
        "transactions": transactions,
        "commits": commits,
        "aborts": aborts,
        "violations": violations,
    }


def _audit_multimodel(db) -> int:
    """Atomicity audit: every order created by workload C must be fully
    wired (cart pointer consistent) — partial states count as violations."""
    orders = db.collection("orders")
    cart = db.bucket("cart")
    violations = 0
    for order in orders.scan_cursor():
        key = order.get("_key", "")
        if not key.startswith("wc"):
            continue
        pointer = cart.get(str(order["customer_id"]))
        # The cart may legitimately point at a newer order; a violation is
        # an order whose customer has NO cart pointer at all.
        if pointer is None:
            violations += 1
    return violations


def workload_c_polyglot(
    app: PolyglotECommerce,
    data: UniBenchData,
    transactions: int = 50,
    crash_rate: float = 0.2,
    seed: int = 11,
    retries: int = 0,
) -> dict:
    """The same new-order flow against separate stores with crash
    injection; partial failures leave real inconsistencies behind.

    Crashes come from the engine's failpoint registry (the two
    ``polyglot.place_order.*`` sites, armed with seeded probability
    triggers derived from ``crash_rate``), not an ad-hoc RNG — so the
    shell's ``.faults`` sees them and every run is reproducible from the
    seed.  ``retries`` wraps each order in
    :func:`repro.fault.retry.retry_with_backoff`; a retried attempt uses a
    fresh order key (a new idempotency key, the way a real client would).
    """
    rng = random.Random(seed)
    completed = 0
    crashed = 0
    retried = 0
    sites = (
        "polyglot.place_order.after_orders",
        "polyglot.place_order.after_cart",
    )
    if crash_rate > 0:
        # Two independent crash windows share the budget, so the overall
        # per-transaction crash probability stays ~crash_rate.
        for offset, site in enumerate(sites):
            fault_registry.arm(
                site,
                f"prob:{crash_rate / 2}",
                effect="error",
                seed=seed * 2 + offset,
            )
    try:
        for index in range(transactions):
            customer_id = str(rng.randint(1, len(data.customers)))
            product_no = rng.choice(data.products)["product_no"]

            def place(attempt: int, index=index, customer_id=customer_id,
                      product_no=product_no) -> str:
                nonlocal retried
                if attempt:
                    retried += 1
                key = f"pc{seed}-{index:05d}" + (f"r{attempt}" if attempt else "")
                return app.place_order(
                    customer_id,
                    {
                        "_key": key,
                        "Order_no": key,
                        "Orderlines": [{"Product_no": product_no, "Price": 10}],
                    },
                )

            try:
                if retries > 0:
                    retry_with_backoff(
                        place,
                        attempts=retries + 1,
                        retry_on=(PartialFailure,),
                        sleep=None,
                    )
                else:
                    place(0)
                completed += 1
            except (PartialFailure, RetryExhaustedError):
                crashed += 1
    finally:
        if crash_rate > 0:
            for site in sites:
                fault_registry.disarm(site)
    return {
        "transactions": transactions,
        "completed": completed,
        "crashed": crashed,
        "retried": retried,
        "violations": len(app.check_consistency()),
    }
