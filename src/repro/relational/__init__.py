"""Relational model: typed schemas, constraints, tables (slides 34-39)."""

from repro.relational.schema import Column, ColumnType, TableSchema
from repro.relational.table import Table

__all__ = ["Column", "ColumnType", "TableSchema", "Table"]
