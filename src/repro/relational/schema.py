"""Relational schemas: typed columns and declarative constraints.

The relational model is the tutorial's "biggest set" (slide 34): typed
columns, primary keys, NOT NULL and CHECK constraints.  Following the
multi-model extensions it surveys (PostgreSQL JSONB columns, SQL Server
NVARCHAR JSON, Oracle XMLType), a column may be declared with type ``json``
or ``xml`` — the gateway through which documents live inside relations
(experiment E7 queries a JSONB ``orders`` column exactly like slide 37).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core import datamodel
from repro.errors import ConstraintViolationError, SchemaError

__all__ = ["ColumnType", "Column", "TableSchema"]


class ColumnType:
    """Column type names and their data-model admission checks."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    BOOLEAN = "boolean"
    JSON = "json"
    XML = "xml"

    _CHECKS: dict[str, Callable[[Any], bool]] = {}

    @classmethod
    def validate(cls, type_name: str, value: Any) -> bool:
        """True when *value* is admissible for *type_name* (NULL always is —
        nullability is a separate constraint)."""
        if value is None:
            return True
        tag = datamodel.type_of(value)
        if type_name == cls.INTEGER:
            return tag is datamodel.TypeTag.NUMBER and float(value).is_integer()
        if type_name == cls.FLOAT:
            return tag is datamodel.TypeTag.NUMBER
        if type_name == cls.STRING:
            return tag is datamodel.TypeTag.STRING
        if type_name == cls.BOOLEAN:
            return tag is datamodel.TypeTag.BOOL
        if type_name == cls.JSON:
            return True  # any model value is JSON
        if type_name == cls.XML:
            return tag is datamodel.TypeTag.STRING or tag is datamodel.TypeTag.OBJECT
        raise SchemaError(f"unknown column type {type_name!r}")

    ALL = (INTEGER, FLOAT, STRING, BOOLEAN, JSON, XML)


@dataclass
class Column:
    """One column definition."""

    name: str
    type: str = ColumnType.JSON
    nullable: bool = True
    default: Any = None

    def __post_init__(self):
        if self.type not in ColumnType.ALL:
            raise SchemaError(f"unknown column type {self.type!r}")

    def admit(self, value: Any, table: str) -> Any:
        """Validate and normalize one cell value."""
        if value is None:
            value = self.default
        if value is None:
            if not self.nullable:
                raise ConstraintViolationError(
                    f"{table}.{self.name} is NOT NULL"
                )
            return None
        if not ColumnType.validate(self.type, value):
            raise ConstraintViolationError(
                f"{table}.{self.name} expects {self.type}, got "
                f"{datamodel.type_name(value)} ({value!r})"
            )
        return datamodel.normalize(value)


@dataclass
class TableSchema:
    """Table definition: ordered columns, primary key, CHECK predicates.

    ``checks`` maps a constraint name to a predicate over the full row dict;
    predicates must be pure.
    """

    name: str
    columns: list[Column]
    primary_key: str = "id"
    checks: dict[str, Callable[[dict], bool]] = field(default_factory=dict)

    def __post_init__(self):
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        if self.primary_key not in names:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of "
                f"table {self.name!r}"
            )
        self._by_name = {column.name: column for column in self.columns}

    def column(self, name: str) -> Column:
        column = self._by_name.get(name)
        if column is None:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return column

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def admit_row(self, row: dict) -> dict:
        """Validate a full row: unknown columns rejected, types checked,
        defaults applied, CHECK constraints evaluated, PK present."""
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(
                f"table {self.name!r} has no columns {sorted(unknown)}"
            )
        admitted = {}
        for column in self.columns:
            admitted[column.name] = column.admit(row.get(column.name), self.name)
        if admitted[self.primary_key] is None:
            raise ConstraintViolationError(
                f"table {self.name!r}: primary key {self.primary_key!r} "
                "must not be NULL"
            )
        for check_name, predicate in self.checks.items():
            if not predicate(admitted):
                raise ConstraintViolationError(
                    f"table {self.name!r}: CHECK {check_name!r} failed for "
                    f"row {admitted!r}"
                )
        return admitted
