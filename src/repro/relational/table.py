"""Relational tables over the shared backend.

A :class:`Table` is a schema-checked record store keyed by primary key, with
SQL-flavoured conveniences: ``select`` with predicate/projection/order/limit,
``where_equals`` using a secondary index when one exists, and JSON path
access into ``json`` columns (the PostgreSQL pattern of slides 37/73).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from repro.core import datamodel
from repro.core.context import BaseStore, EngineContext
from repro.core.cursor import warn_deprecated_scan
from repro.errors import PrimaryKeyError
from repro.relational.schema import TableSchema
from repro.txn.manager import Transaction

__all__ = ["Table"]


class Table(BaseStore):
    """One relational table."""

    model = "rel"

    def __init__(self, context: EngineContext, schema: TableSchema):
        super().__init__(context, schema.name)
        self.schema = schema
        # Rows are dense (admit_row fills every schema column), so every
        # column is worth a typed segment + zone map.
        context.segments.register(self.namespace, schema.column_names)

    # -- DML -----------------------------------------------------------------

    def insert(self, row: dict, txn: Optional[Transaction] = None) -> Any:
        """Insert one row; returns its primary key."""
        admitted = self.schema.admit_row(row)
        key = admitted[self.schema.primary_key]
        if self._raw_get(key, txn) is not None:
            raise PrimaryKeyError(
                f"table {self.name!r}: duplicate primary key {key!r}"
            )
        self._put(key, admitted, txn)
        return key

    def insert_many(self, rows: list[dict], txn: Optional[Transaction] = None) -> int:
        for row in rows:
            self.insert(row, txn)
        return len(rows)

    def get(self, key: Any, txn: Optional[Transaction] = None) -> Optional[dict]:
        """Row by primary key (None when absent)."""
        return self._raw_get(key, txn)

    def update(
        self, key: Any, changes: dict, txn: Optional[Transaction] = None
    ) -> bool:
        """Apply column changes to one row; False when the key is absent."""
        current = self._raw_get(key, txn)
        if current is None:
            return False
        merged = dict(current)
        merged.update(changes)
        admitted = self.schema.admit_row(merged)
        if admitted[self.schema.primary_key] != key:
            raise PrimaryKeyError(
                f"table {self.name!r}: updates must not change the primary key"
            )
        self._put(key, admitted, txn)
        return True

    def replace(
        self, key: Any, row: dict, txn: Optional[Transaction] = None
    ) -> bool:
        """Whole-row replacement (unset columns revert to their defaults);
        False when the key is absent."""
        if self._raw_get(key, txn) is None:
            return False
        admitted = self.schema.admit_row(row)
        if admitted[self.schema.primary_key] != key:
            raise PrimaryKeyError(
                f"table {self.name!r}: REPLACE must not change the primary key"
            )
        self._put(key, admitted, txn)
        return True

    def delete(self, key: Any, txn: Optional[Transaction] = None) -> bool:
        return self._delete_key(key, txn)

    # -- queries ------------------------------------------------------------------

    def rows(self, txn: Optional[Transaction] = None) -> Iterator[dict]:
        """Deprecated compat shim — use :meth:`scan_cursor` instead.

        (Scan order: primary-key order inside transactions, insertion
        order otherwise — the cursor preserves it.)"""
        warn_deprecated_scan("Table.rows()")
        return iter(self.scan_cursor(txn=txn))

    def select(
        self,
        where: Optional[Callable[[dict], bool]] = None,
        columns: Optional[list[str]] = None,
        order_by: Optional[str] = None,
        descending: bool = False,
        limit: Optional[int] = None,
        txn: Optional[Transaction] = None,
    ) -> list[dict]:
        """SELECT columns FROM self WHERE … ORDER BY … LIMIT …"""
        result = [
            row for row in self.scan_cursor(txn=txn) if where is None or where(row)
        ]
        if order_by is not None:
            self.schema.column(order_by)
            result.sort(
                key=lambda row: datamodel.SortKey(row.get(order_by)),
                reverse=descending,
            )
        if limit is not None:
            result = result[:limit]
        if columns is not None:
            for name in columns:
                self.schema.column(name)
            result = [{name: row.get(name) for name in columns} for row in result]
        return result

    def where_equals(
        self, column: str, value: Any, txn: Optional[Transaction] = None
    ) -> list[dict]:
        """Equality filter, served by a secondary index when available
        (and the read is not inside a snapshot older than the index)."""
        self.schema.column(column)
        if txn is None:
            index = self._context.indexes.find(self.namespace, (column,), "point")
            if index is not None:
                keys = index.search(value)
                return [
                    row
                    for row in (self._raw_get(key) for key in keys)
                    if row is not None
                ]
        return [
            row
            for row in self.scan_cursor(txn=txn)
            if datamodel.values_equal(row.get(column), value)
        ]

    def json_path(
        self,
        key: Any,
        column: str,
        path: tuple,
        txn: Optional[Transaction] = None,
    ) -> Any:
        """Navigate into a JSON column (slide 37's ``orders #> '{…}'``)."""
        row = self.get(key, txn)
        if row is None:
            return None
        return datamodel.deep_get(row.get(column), path)

    # -- DDL helpers -----------------------------------------------------------------

    def create_index(self, column: str, kind: str = "hash", unique: bool = False):
        """Secondary index on one column."""
        self.schema.column(column)
        return self._context.indexes.create_index(
            self.namespace, (column,), kind=kind, unique=unique
        )
