"""``python -m repro`` — version stamp or the MMQL shell.

``python -m repro --version`` prints the single-sourced package version
(the same string the server handshake reports); any other arguments are
handed to the shell entry point, so ``python -m repro serve --demo`` and
``python -m repro -c 'RETURN 1'`` behave exactly like ``repro-shell``.
"""

from __future__ import annotations

import sys


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("--version", "-V"):
        from repro import __version__

        print(f"repro {__version__}")
        return 0
    from repro.cli import main as cli_main

    return cli_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
