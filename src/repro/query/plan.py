"""Physical plan nodes and plan rendering (EXPLAIN).

The optimizer rewrites parsed operations into a physical plan: most AST
operations execute directly, but scans with suitable predicates become
:class:`IndexScanOp` (the optimizer's index-selection step, slide 78-82) and
the storage-view/column decisions are recorded for EXPLAIN output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.query import ast

__all__ = [
    "IndexScanOp",
    "HashJoinOp",
    "SemiJoinOp",
    "AntiJoinOp",
    "MaterializeOp",
    "render_plan",
    "analyzed_op_stats",
    "render_analyzed_plan",
]


@dataclass
class IndexScanOp(ast.Operation):
    """``FOR var IN collection FILTER var.path == value`` rewritten to probe
    a secondary index.

    ``residual`` is any remaining filter condition; ``fallback_condition``
    re-applies the full original predicate when the scan cannot use the
    index (inside snapshots older than the index's data, the executor falls
    back to scan + filter).
    """

    var: str
    source_name: str
    path: tuple
    value: ast.Expr
    index_name: str
    index_kind: str
    residual: Optional[ast.Expr] = None
    original_condition: Optional[ast.Expr] = None


@dataclass
class HashJoinOp(ast.Operation):
    """``FOR var IN collection FILTER var.path == probe`` inside an outer
    loop, rewritten into a hash join.

    The executor materializes the named collection once into a hash table
    keyed on ``build_path`` (the *build* side), then probes it with the
    per-frame value of ``probe`` — turning a correlated rescan (quadratic)
    into one build plus O(1) probes (linear).  Equality follows the data
    model's ``==`` (``compare() == 0``), so ``null == null`` matches and
    ``1 == 1.0``, exactly as the nested-loop filter would.

    ``residual`` holds any remaining filter conjuncts, applied after the
    join with the inner variable bound; ``original_condition`` preserves
    the full predicate for EXPLAIN and the rewrite-off differential tests.
    """

    var: str
    source_name: str
    build_path: tuple
    probe: ast.Expr
    residual: Optional[ast.Expr] = None
    original_condition: Optional[ast.Expr] = None


@dataclass
class SemiJoinOp(ast.Operation):
    """An existence-tested correlated subquery (``FILTER LENGTH((FOR x IN
    coll FILTER x.path == probe … RETURN e)) > 0``) rewritten into a hash
    semi join by the ``decorrelate_subquery`` rule.

    The executor builds a hash table over ``source_name`` keyed on
    ``build_path`` once (lazily), then per outer frame passes the frame
    **unchanged** iff some build row matches ``probe`` (confirmed with
    ``compare() == 0``, so hash collisions and the model's ``1 == 1.0`` /
    ``null == null`` semantics behave exactly like the subquery filter
    did) and satisfies ``residual`` with ``var`` bound to the candidate.
    Nothing is bound downstream — only existence is observable, which is
    what makes the rewrite safe for any side-effect-free RETURN."""

    var: str
    source_name: str
    build_path: tuple
    probe: ast.Expr
    residual: Optional[ast.Expr] = None
    original_condition: Optional[ast.Expr] = None


@dataclass
class AntiJoinOp(SemiJoinOp):
    """The ``LENGTH(…) == 0`` twin of :class:`SemiJoinOp`: frames pass
    when **no** build row matches."""


@dataclass
class MaterializeOp(ast.Operation):
    """``LET var = (uncorrelated subquery)`` rewritten by the
    ``materialize_let`` rule: the executor runs ``query`` once per
    top-level execution (keyed on the plan node in ``ctx.materialized``)
    and binds the shared row list into every frame, instead of
    re-executing the subquery for each outer row."""

    var: str
    query: ast.Query


def _expr_text(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.BindVar):
        return f"@{expr.name}"
    if isinstance(expr, ast.AttrAccess):
        return f"{_expr_text(expr.subject)}.{expr.attribute}"
    if isinstance(expr, ast.IndexAccess):
        return f"{_expr_text(expr.subject)}[{_expr_text(expr.index)}]"
    if isinstance(expr, ast.Expansion):
        suffix = f" -> {_expr_text(expr.suffix)}" if expr.suffix else ""
        return f"{_expr_text(expr.subject)}[*]{suffix}"
    if isinstance(expr, ast.InlineFilter):
        return f"{_expr_text(expr.subject)}[* FILTER {_expr_text(expr.condition)}]"
    if isinstance(expr, ast.FuncCall):
        return f"{expr.name}({', '.join(_expr_text(arg) for arg in expr.args)})"
    if isinstance(expr, ast.UnaryOp):
        return f"{expr.op} {_expr_text(expr.operand)}"
    if isinstance(expr, ast.BinOp):
        return f"({_expr_text(expr.left)} {expr.op} {_expr_text(expr.right)})"
    if isinstance(expr, ast.RangeExpr):
        return f"{_expr_text(expr.low)}..{_expr_text(expr.high)}"
    if isinstance(expr, ast.ArrayLiteral):
        return f"[{', '.join(_expr_text(item) for item in expr.items)}]"
    if isinstance(expr, ast.ObjectLiteral):
        inner = ", ".join(f"{key}: {_expr_text(value)}" for key, value in expr.items)
        return f"{{{inner}}}"
    if isinstance(expr, ast.Ternary):
        return (
            f"({_expr_text(expr.condition)} ? {_expr_text(expr.then)} : "
            f"{_expr_text(expr.otherwise)})"
        )
    if isinstance(expr, ast.SubQuery):
        return "(subquery)"
    return type(expr).__name__


def _operation_lines(operation: ast.Operation, indent: int) -> list[str]:
    pad = "  " * indent
    if isinstance(operation, IndexScanOp):
        lines = [
            f"{pad}IndexScan {operation.var} IN {operation.source_name} "
            f"USING {operation.index_kind} index {operation.index_name!r} "
            f"ON {'.'.join(operation.path)} == {_expr_text(operation.value)}"
        ]
        if operation.residual is not None:
            lines.append(f"{pad}  Residual: {_expr_text(operation.residual)}")
        return lines
    if isinstance(operation, HashJoinOp):
        lines = [
            f"{pad}HashJoin {operation.var} IN {operation.source_name} "
            f"ON {'.'.join(operation.build_path)} == "
            f"{_expr_text(operation.probe)} "
            f"(build: hash table over {operation.source_name})"
        ]
        if operation.residual is not None:
            lines.append(f"{pad}  Residual: {_expr_text(operation.residual)}")
        return lines
    if isinstance(operation, AntiJoinOp) or isinstance(operation, SemiJoinOp):
        word = "AntiJoin" if isinstance(operation, AntiJoinOp) else "SemiJoin"
        lines = [
            f"{pad}{word} EXISTS({operation.var} IN {operation.source_name}) "
            f"ON {'.'.join(operation.build_path)} == "
            f"{_expr_text(operation.probe)} "
            f"(build: hash table over {operation.source_name})"
        ]
        if operation.residual is not None:
            lines.append(f"{pad}  Residual: {_expr_text(operation.residual)}")
        return lines
    if isinstance(operation, MaterializeOp):
        return [
            f"{pad}Materialize {operation.var} = (subquery) "
            f"(computed once, shared across frames)"
        ]
    if isinstance(operation, ast.ForOp):
        return [f"{pad}Scan {operation.var} IN {_expr_text(operation.source)}"]
    if isinstance(operation, ast.TraversalOp):
        label = f" LABEL {operation.label!r}" if operation.label else ""
        return [
            f"{pad}Traverse {operation.var} IN "
            f"{operation.min_depth}..{operation.max_depth} "
            f"{operation.direction.upper()} {_expr_text(operation.start)} "
            f"GRAPH {operation.graph}{label} (edge index)"
        ]
    if isinstance(operation, ast.ShortestPathOp):
        return [
            f"{pad}ShortestPath {operation.var} "
            f"{operation.direction.upper()} {_expr_text(operation.start)} "
            f"TO {_expr_text(operation.goal)} GRAPH {operation.graph}"
        ]
    if isinstance(operation, ast.FilterOp):
        return [f"{pad}Filter {_expr_text(operation.condition)}"]
    if isinstance(operation, ast.LetOp):
        return [f"{pad}Let {operation.var} = {_expr_text(operation.value)}"]
    if isinstance(operation, ast.SortOp):
        keys = ", ".join(
            f"{_expr_text(key.expr)} {'ASC' if key.ascending else 'DESC'}"
            for key in operation.keys
        )
        return [f"{pad}Sort {keys}"]
    if isinstance(operation, ast.LimitOp):
        return [f"{pad}Limit offset={operation.offset} count={operation.count}"]
    if isinstance(operation, ast.CollectOp):
        groups = ", ".join(f"{name} = {_expr_text(expr)}" for name, expr in operation.groups)
        extras = []
        if operation.count_into:
            extras.append(f"WITH COUNT INTO {operation.count_into}")
        if operation.into:
            extras.append(f"INTO {operation.into}")
        return [f"{pad}Collect {groups} {' '.join(extras)}".rstrip()]
    if isinstance(operation, ast.ReturnOp):
        distinct = "DISTINCT " if operation.distinct else ""
        return [f"{pad}Return {distinct}{_expr_text(operation.expr)}"]
    if isinstance(operation, ast.InsertOp):
        return [f"{pad}Insert {_expr_text(operation.document)} INTO {operation.target}"]
    if isinstance(operation, ast.UpdateOp):
        return [
            f"{pad}Update {_expr_text(operation.key)} WITH "
            f"{_expr_text(operation.changes)} IN {operation.target}"
        ]
    if isinstance(operation, ast.RemoveOp):
        return [f"{pad}Remove {_expr_text(operation.key)} IN {operation.target}"]
    if isinstance(operation, ast.ReplaceOp):
        return [
            f"{pad}Replace {_expr_text(operation.key)} WITH "
            f"{_expr_text(operation.document)} IN {operation.target}"
        ]
    if isinstance(operation, ast.UpsertOp):
        return [
            f"{pad}Upsert {_expr_text(operation.search)} INSERT "
            f"{_expr_text(operation.insert_doc)} UPDATE "
            f"{_expr_text(operation.update_patch)} INTO {operation.target}"
        ]
    return [f"{pad}{type(operation).__name__}"]


def render_plan(query: ast.Query) -> str:
    """Human-readable plan, one operation per line, pipeline order."""
    lines = []
    for indent, operation in enumerate(query.operations):
        lines.extend(_operation_lines(operation, indent))
    return "\n".join(lines)


def analyzed_op_stats(probes: list) -> list[dict]:
    """Per-operator measurements from EXPLAIN ANALYZE probes.

    Probe timing is cumulative (each operator's clock includes its
    upstream, because upstream rows are pulled from inside downstream
    ``next()`` calls); self-time is the difference between neighbours,
    clipped at zero. ``rows_in`` of operator *k* is ``rows_out`` of
    operator *k-1* — the pipeline starts from one seed frame.
    """
    stats = []
    previous_rows = 1
    previous_seconds = 0.0
    for probe in probes:
        operation = probe.operation
        label = _operation_lines(operation, 0)[0].strip()
        entry = {
            "operator": type(operation).__name__,
            "label": label,
            "rows_in": previous_rows,
            "rows_out": probe.rows_out,
            "batches_out": getattr(probe, "batches_out", 0),
            "columnar_batches": getattr(probe, "columnar_batches", 0),
            "seconds": probe.seconds,
            "self_seconds": max(0.0, probe.seconds - previous_seconds),
        }
        estimated = getattr(operation, "_est_rows", None)
        if estimated is not None:
            # Smoothed Q-error: max of over-/under-estimation factor,
            # +1 on both sides so empty results stay finite.
            entry["est_rows"] = estimated
            entry["q_error"] = max(
                (estimated + 1) / (probe.rows_out + 1),
                (probe.rows_out + 1) / (estimated + 1),
            )
        stats.append(entry)
        previous_rows = probe.rows_out
        previous_seconds = max(previous_seconds, probe.seconds)
    return stats


def render_analyzed_plan(
    query: ast.Query,
    probes: list,
    total_seconds: float,
    query_stats: Optional[dict] = None,
) -> str:
    """The physical plan annotated with actual rows and wall-time per
    operator (EXPLAIN ANALYZE output).

    Operators that emitted columnar batches are flagged ``columnar=yes``;
    when the execution touched the segment store at all, a ``Columnar:``
    summary line reports segments scanned, segments pruned by zone maps,
    and rows that went through vectorized kernels."""
    stats = analyzed_op_stats(probes)
    lines = []
    for indent, (operation, entry) in enumerate(zip(query.operations, stats)):
        op_lines = _operation_lines(operation, indent)
        columnar = " columnar=yes" if entry["columnar_batches"] else ""
        estimate = ""
        if "est_rows" in entry:
            estimate = (
                f" est={entry['est_rows']} q_error={entry['q_error']:.2f}"
            )
        op_lines[0] += (
            f"  [rows in={entry['rows_in']} out={entry['rows_out']}"
            f"{estimate} "
            f"batches={entry['batches_out']}{columnar} "
            f"self={entry['self_seconds'] * 1000:.3f} ms "
            f"cum={entry['seconds'] * 1000:.3f} ms]"
        )
        lines.extend(op_lines)
    if query_stats is not None and (
        query_stats.get("segments_scanned")
        or query_stats.get("segments_pruned")
        or query_stats.get("columnar_kernel_rows")
    ):
        lines.append(
            f"Columnar: segments_scanned={query_stats['segments_scanned']} "
            f"segments_pruned={query_stats['segments_pruned']} "
            f"kernel_rows={query_stats['columnar_kernel_rows']}"
        )
    lines.append(f"Execution time: {total_seconds * 1000:.3f} ms")
    return "\n".join(lines)
