"""MMQL recursive-descent parser (Pratt expressions).

Grammar (EBNF-ish; ``…*`` repetition, ``[…]`` optional):

    query      := operation* return_like
    operation  := for | filter | let | sort | limit | collect | dml
    for        := FOR ident IN (traversal | expr)
    traversal  := int '..' int (OUTBOUND|INBOUND|ANY) expr GRAPH ident
                  [LABEL string]
    filter     := FILTER expr
    let        := LET ident '=' expr
    sort       := SORT expr [ASC|DESC] (',' expr [ASC|DESC])*
    limit      := LIMIT int [',' int]            (offset, count when two)
    collect    := COLLECT ident '=' expr (',' ident '=' expr)*
                  [WITH COUNT INTO ident] [INTO ident]
    return_like:= RETURN [DISTINCT] expr | insert | update | remove
    insert     := INSERT expr INTO ident
    update     := UPDATE expr WITH expr IN ident
    remove     := REMOVE expr IN ident

    expr       := ternary-free Pratt expression with the precedence ladder
                  OR < AND < NOT < comparison (== != < <= > >= IN LIKE)
                  < additive (+ -) < multiplicative (* / %) < unary (-)
                  < postfix (.attr, [index], [*], [* FILTER cond], call)
    primary    := literal | ident | @bindvar | '(' query-or-expr ')'
                | '[' exprs ']' | '{' pairs '}' | ident '(' args ')'

A parenthesized ``(FOR … RETURN …)`` is a subquery expression — the AQL
idiom the running example uses for its LET clauses (slide 28).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.query import ast
from repro.query.lexer import Token, TokenKind, tokenize

__all__ = ["parse", "parse_expression"]


def parse(text: str) -> ast.Query:
    """Parse a full MMQL query."""
    parser = _Parser(tokenize(text))
    query = parser.parse_query(top_level=True)
    parser.expect_eof()
    return query


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and the REPL)."""
    parser = _Parser(tokenize(text))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


_COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0
        self._no_in = False

    # -- token plumbing ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._position]

    def advance(self) -> Token:
        token = self.current
        if token.kind != TokenKind.EOF:
            self._position += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(
            f"{message} (found {token.text or 'end of query'!r})",
            token.line,
            token.column,
        )

    def match_punct(self, text: str) -> bool:
        if self.current.kind == TokenKind.PUNCT and self.current.text == text:
            self.advance()
            return True
        return False

    def match_op(self, *texts: str) -> Optional[str]:
        if self.current.kind == TokenKind.OPERATOR and self.current.text in texts:
            return self.advance().text
        return None

    def match_keyword(self, *names: str) -> Optional[str]:
        if self.current.is_keyword(*names):
            return self.advance().text
        return None

    def expect_punct(self, text: str) -> None:
        if not self.match_punct(text):
            raise self._error(f"expected {text!r}")

    def expect_keyword(self, name: str) -> None:
        if not self.match_keyword(name):
            raise self._error(f"expected {name}")

    def expect_ident(self) -> str:
        if self.current.kind != TokenKind.IDENT:
            raise self._error("expected an identifier")
        return self.advance().text

    def expect_eof(self) -> None:
        if self.current.kind != TokenKind.EOF:
            raise self._error("unexpected trailing input")

    # -- query structure -----------------------------------------------------------

    def parse_query(self, top_level: bool = False) -> ast.Query:
        operations: list[ast.Operation] = []
        while True:
            token = self.current
            if token.is_keyword("FOR"):
                operations.append(self._parse_for())
            elif token.is_keyword("FILTER"):
                self.advance()
                operations.append(ast.FilterOp(self.parse_expr()))
            elif token.is_keyword("LET"):
                operations.append(self._parse_let())
            elif token.is_keyword("SORT"):
                operations.append(self._parse_sort())
            elif token.is_keyword("LIMIT"):
                operations.append(self._parse_limit())
            elif token.is_keyword("COLLECT"):
                operations.append(self._parse_collect())
            elif token.is_keyword("RETURN"):
                self.advance()
                distinct = bool(self.match_keyword("DISTINCT"))
                operations.append(ast.ReturnOp(self.parse_expr(), distinct))
                break
            elif token.is_keyword("INSERT"):
                self.advance()
                document = self.parse_expr()
                self.expect_keyword("INTO")
                operations.append(ast.InsertOp(document, self.expect_ident()))
                break
            elif token.is_keyword("UPDATE"):
                self.advance()
                key = self.parse_expr(no_in=True)
                self.expect_keyword("WITH")
                changes = self.parse_expr(no_in=True)
                self.expect_keyword("IN")
                operations.append(ast.UpdateOp(key, changes, self.expect_ident()))
                break
            elif token.is_keyword("REMOVE"):
                self.advance()
                key = self.parse_expr(no_in=True)
                self.expect_keyword("IN")
                operations.append(ast.RemoveOp(key, self.expect_ident()))
                break
            elif token.is_keyword("REPLACE"):
                self.advance()
                key = self.parse_expr(no_in=True)
                self.expect_keyword("WITH")
                document = self.parse_expr(no_in=True)
                self.expect_keyword("IN")
                operations.append(
                    ast.ReplaceOp(key, document, self.expect_ident())
                )
                break
            elif token.is_keyword("UPSERT"):
                self.advance()
                search = self.parse_expr()
                self.expect_keyword("INSERT")
                insert_doc = self.parse_expr()
                self.expect_keyword("UPDATE")
                update_patch = self.parse_expr()
                self.expect_keyword("INTO")
                operations.append(
                    ast.UpsertOp(search, insert_doc, update_patch, self.expect_ident())
                )
                break
            else:
                raise self._error(
                    "expected FOR/FILTER/LET/SORT/LIMIT/COLLECT/RETURN/"
                    "INSERT/UPDATE/REMOVE"
                )
        if not operations:
            raise self._error("empty query")
        return ast.Query(operations)

    def _parse_for(self) -> ast.Operation:
        self.expect_keyword("FOR")
        var = self.expect_ident()
        edge_var = None
        if self.match_punct(","):
            edge_var = self.expect_ident()
        self.expect_keyword("IN")
        # Shortest-path form: DIRECTION SHORTEST_PATH start TO goal GRAPH g
        direction = self.match_keyword("OUTBOUND", "INBOUND", "ANY")
        if direction is not None:
            self.expect_keyword("SHORTEST_PATH")
            if edge_var is not None:
                raise self._error(
                    "SHORTEST_PATH traversals do not bind an edge variable"
                )
            start = self.parse_expr()
            self.expect_keyword("TO")
            goal = self.parse_expr()
            self.expect_keyword("GRAPH")
            graph = self.expect_ident()
            return ast.ShortestPathOp(
                var, direction.lower(), start, goal, graph
            )
        # Traversal form: min..max DIRECTION start GRAPH name [LABEL s]
        saved = self._position
        if self.current.kind == TokenKind.NUMBER:
            low_token = self.advance()
            if self.match_op(".."):
                if self.current.kind != TokenKind.NUMBER:
                    raise self._error("expected the traversal's max depth")
                high_token = self.advance()
                direction = self.match_keyword("OUTBOUND", "INBOUND", "ANY")
                if direction is None:
                    # Not a traversal after all — `FOR i IN 1..5` is a plain
                    # range loop; re-parse as an expression.
                    if edge_var is not None:
                        raise self._error(
                            "an edge variable (FOR v, e IN …) requires a "
                            "graph traversal"
                        )
                    self._position = saved
                    return ast.ForOp(var, self.parse_expr())
                start = self.parse_expr()
                self.expect_keyword("GRAPH")
                graph = self.expect_ident()
                label = None
                if self.match_keyword("LABEL"):
                    if self.current.kind != TokenKind.STRING:
                        raise self._error("LABEL takes a string")
                    label = self.advance().text
                return ast.TraversalOp(
                    var,
                    int(low_token.text),
                    int(high_token.text),
                    direction.lower(),
                    start,
                    graph,
                    label,
                    edge_var,
                )
            self._position = saved
        if edge_var is not None:
            raise self._error(
                "an edge variable (FOR v, e IN …) requires a graph traversal"
            )
        return ast.ForOp(var, self.parse_expr())

    def _parse_let(self) -> ast.LetOp:
        self.expect_keyword("LET")
        var = self.expect_ident()
        if not self.match_op("="):
            raise self._error("expected = after LET variable")
        return ast.LetOp(var, self.parse_expr())

    def _parse_sort(self) -> ast.SortOp:
        self.expect_keyword("SORT")
        keys = []
        while True:
            expr = self.parse_expr()
            ascending = True
            if self.match_keyword("DESC"):
                ascending = False
            else:
                self.match_keyword("ASC")
            keys.append(ast.SortKeySpec(expr, ascending))
            if not self.match_punct(","):
                break
        return ast.SortOp(keys)

    def _parse_limit(self) -> ast.LimitOp:
        self.expect_keyword("LIMIT")
        if self.current.kind != TokenKind.NUMBER:
            raise self._error("LIMIT takes integers")
        first = int(self.advance().text)
        if self.match_punct(","):
            if self.current.kind != TokenKind.NUMBER:
                raise self._error("LIMIT takes integers")
            return ast.LimitOp(first, int(self.advance().text))
        return ast.LimitOp(0, first)

    def _parse_collect(self) -> ast.CollectOp:
        self.expect_keyword("COLLECT")
        groups = []
        if self.current.kind == TokenKind.IDENT:
            while True:
                name = self.expect_ident()
                if not self.match_op("="):
                    raise self._error("expected = in COLLECT group")
                groups.append((name, self.parse_expr()))
                if not self.match_punct(","):
                    break
        aggregates: list[tuple[str, str, ast.Expr]] = []
        if self.match_keyword("AGGREGATE"):
            while True:
                name = self.expect_ident()
                if not self.match_op("="):
                    raise self._error("expected = in AGGREGATE clause")
                call = self.parse_expr()
                if not isinstance(call, ast.FuncCall) or len(call.args) != 1:
                    raise self._error(
                        "AGGREGATE takes FUNC(expr) with one argument"
                    )
                aggregates.append((name, call.name, call.args[0]))
                if not self.match_punct(","):
                    break
        count_into = None
        into = None
        if self.match_keyword("WITH"):
            self.expect_keyword("COUNT")
            self.expect_keyword("INTO")
            count_into = self.expect_ident()
        elif self.match_keyword("INTO"):
            into = self.expect_ident()
        if not groups and count_into is None and not aggregates:
            raise self._error(
                "COLLECT needs groups, AGGREGATE, or WITH COUNT INTO"
            )
        return ast.CollectOp(groups, count_into, into, aggregates)

    # -- expressions (Pratt) -----------------------------------------------------------

    def parse_expr(self, no_in: bool = False) -> ast.Expr:
        """``no_in=True`` keeps a top-level IN keyword unconsumed (the
        UPDATE/REMOVE clauses use IN as a clause separator; parenthesized
        and bracketed subexpressions reset the flag)."""
        saved = self._no_in
        self._no_in = no_in
        try:
            return self._parse_ternary()
        finally:
            self._no_in = saved

    def _parse_ternary(self) -> ast.Expr:
        condition = self._parse_or()
        if self.match_punct("?"):
            then = self._parse_ternary()
            self.expect_punct(":")
            otherwise = self._parse_ternary()
            return ast.Ternary(condition, then, otherwise)
        return condition

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.match_keyword("OR") or self.match_op("||"):
            left = ast.BinOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.match_keyword("AND") or self.match_op("&&"):
            left = ast.BinOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self.match_keyword("NOT") or self.match_op("!"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        op = self.match_op(*_COMPARISON_OPS)
        if op is not None:
            return ast.BinOp(op, left, self._parse_additive())
        if not self._no_in and self.match_keyword("IN"):
            return ast.BinOp("IN", left, self._parse_additive())
        if self.match_keyword("LIKE"):
            return ast.BinOp("LIKE", left, self._parse_additive())
        if not self._no_in and self.match_keyword("NOT"):
            if self.match_keyword("IN"):
                return ast.UnaryOp(
                    "NOT", ast.BinOp("IN", left, self._parse_additive())
                )
            raise self._error("expected IN after NOT")
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            op = self.match_op("+", "-")
            if op is None:
                return left
            left = ast.BinOp(op, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            op = self.match_op("*", "/", "%")
            if op is None:
                return left
            left = ast.BinOp(op, left, self._parse_unary())

    def _parse_unary(self) -> ast.Expr:
        if self.match_op("-"):
            return ast.UnaryOp("-", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self.match_punct("."):
                if self.current.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                    raise self._error("expected an attribute name after .")
                expr = ast.AttrAccess(expr, self.advance().text)
            elif self.match_punct("["):
                if self.current.kind == TokenKind.OPERATOR and self.current.text == "*":
                    self.advance()
                    if self.match_keyword("FILTER"):
                        condition = self.parse_expr()
                        self.expect_punct("]")
                        expr = ast.InlineFilter(expr, condition)
                    else:
                        self.expect_punct("]")
                        expr = self._parse_expansion_suffix(expr)
                else:
                    index = self.parse_expr()
                    self.expect_punct("]")
                    expr = ast.IndexAccess(expr, index)
            else:
                return expr

    def _parse_expansion_suffix(self, subject: ast.Expr) -> ast.Expr:
        """After ``expr[*]``, a chain like ``.a.b[0]`` applies per element;
        it is parsed against the pseudo-variable ``$CURRENT``."""
        suffix: ast.Expr = ast.VarRef("$CURRENT")
        has_suffix = False
        while True:
            if self.match_punct("."):
                if self.current.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                    raise self._error("expected an attribute name after .")
                suffix = ast.AttrAccess(suffix, self.advance().text)
                has_suffix = True
            elif (
                self.current.kind == TokenKind.PUNCT
                and self.current.text == "["
                and self._peek_is_index()
            ):
                self.advance()
                index = self.parse_expr()
                self.expect_punct("]")
                suffix = ast.IndexAccess(suffix, index)
                has_suffix = True
            else:
                break
        return ast.Expansion(subject, suffix if has_suffix else None)

    def _peek_is_index(self) -> bool:
        next_token = self._tokens[self._position + 1]
        return not (
            next_token.kind == TokenKind.OPERATOR and next_token.text == "*"
        )

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == TokenKind.NUMBER:
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            if self.match_op(".."):
                high = self.parse_expr()
                return ast.RangeExpr(ast.Literal(value), high)
            return ast.Literal(value)
        if token.kind == TokenKind.STRING:
            self.advance()
            return ast.Literal(token.text)
        if token.kind == TokenKind.BINDVAR:
            self.advance()
            return ast.BindVar(token.text)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("SHORTEST_PATH", "COUNT"):
            # keyword-named builtins usable as functions
            self.advance()
            return self._parse_call(token.text)
        if token.kind == TokenKind.IDENT:
            self.advance()
            if self.current.kind == TokenKind.PUNCT and self.current.text == "(":
                return self._parse_call(token.text)
            return ast.VarRef(token.text)
        if self.match_punct("("):
            if self.current.is_keyword(
                "FOR", "LET", "RETURN", "FILTER", "SORT", "COLLECT", "LIMIT"
            ):
                query = self.parse_query()
                self.expect_punct(")")
                return ast.SubQuery(query)
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if self.match_punct("["):
            items = []
            if not self.match_punct("]"):
                while True:
                    items.append(self.parse_expr())
                    if not self.match_punct(","):
                        break
                self.expect_punct("]")
            return ast.ArrayLiteral(tuple(items))
        if self.match_punct("{"):
            pairs = []
            if not self.match_punct("}"):
                while True:
                    pairs.append(self._parse_object_pair())
                    if not self.match_punct(","):
                        break
                self.expect_punct("}")
            return ast.ObjectLiteral(tuple(pairs))
        raise self._error("expected an expression")

    def _parse_object_pair(self) -> tuple[str, ast.Expr]:
        token = self.current
        if token.kind in (TokenKind.IDENT, TokenKind.STRING, TokenKind.KEYWORD):
            key = self.advance().text
        else:
            raise self._error("expected an object key")
        if self.match_punct(":"):
            return key, self.parse_expr()
        # Shorthand {name} == {name: name}
        return key, ast.VarRef(key)

    def _parse_call(self, name: str) -> ast.FuncCall:
        self.expect_punct("(")
        args = []
        if not self.match_punct(")"):
            while True:
                # A bare subquery is allowed as a call argument:
                # FIRST(FOR x IN xs RETURN x).
                if self.current.is_keyword(
                    "FOR", "LET", "RETURN", "FILTER", "SORT", "COLLECT", "LIMIT"
                ):
                    args.append(ast.SubQuery(self.parse_query()))
                else:
                    args.append(self.parse_expr())
                if not self.match_punct(","):
                    break
            self.expect_punct(")")
        return ast.FuncCall(name.upper(), tuple(args))
