"""Rule-based query optimizer: a fixpoint engine over the rule registry.

The rewrites themselves live in two places: this module keeps the four
classic transformation functions (constant folding, filter pushdown,
index selection, hash joins — each still importable and independently
callable, as the ablation tests rely on), while :mod:`repro.query.rules`
wraps them — plus the subquery rewrites (decorrelation, shared LET
materialization) and predicate splitting — into a named, toggleable
:data:`~repro.query.rules.REGISTRY`.

:func:`optimize` drives that registry to a **fixpoint**: rules apply in
registry order, and passes repeat until no rule changes the plan (bounded
by ``rules.MAX_PASSES``).  The names of the rules that fired land on
``query.rules_fired`` for EXPLAIN's ``Rules fired:`` line, and — when the
database carries a :class:`repro.query.statistics.StatisticsStore` — the
final plan is annotated with per-operator cardinality estimates that
EXPLAIN ANALYZE compares against actuals (Q-error), closing the feedback
loop.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from repro.query import ast
from repro.query.plan import HashJoinOp, IndexScanOp, MaterializeOp, SemiJoinOp

__all__ = [
    "optimize",
    "fold_constants",
    "push_down_filters",
    "select_indexes",
    "build_hash_joins",
]

_FOLDABLE_BINOPS = {"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "AND", "OR"}


# ---------------------------------------------------------------------------
# Rule 1: constant folding
# ---------------------------------------------------------------------------


def _fold_expr(expr: ast.Expr) -> ast.Expr:
    if isinstance(expr, ast.BinOp):
        left = _fold_expr(expr.left)
        right = _fold_expr(expr.right)
        if (
            isinstance(left, ast.Literal)
            and isinstance(right, ast.Literal)
            and expr.op in _FOLDABLE_BINOPS
        ):
            folded = _try_fold(expr.op, left.value, right.value)
            if folded is not _NO_FOLD:
                return ast.Literal(folded)
        return ast.BinOp(expr.op, left, right)
    if isinstance(expr, ast.UnaryOp):
        operand = _fold_expr(expr.operand)
        if isinstance(operand, ast.Literal):
            if expr.op == "-" and isinstance(operand.value, (int, float)):
                return ast.Literal(-operand.value)
            if expr.op == "NOT":
                from repro.core.datamodel import truthy

                return ast.Literal(not truthy(operand.value))
        return ast.UnaryOp(expr.op, operand)
    if isinstance(expr, ast.AttrAccess):
        return ast.AttrAccess(_fold_expr(expr.subject), expr.attribute)
    if isinstance(expr, ast.IndexAccess):
        return ast.IndexAccess(_fold_expr(expr.subject), _fold_expr(expr.index))
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(expr.name, tuple(_fold_expr(arg) for arg in expr.args))
    if isinstance(expr, ast.ArrayLiteral):
        return ast.ArrayLiteral(tuple(_fold_expr(item) for item in expr.items))
    if isinstance(expr, ast.ObjectLiteral):
        return ast.ObjectLiteral(
            tuple((key, _fold_expr(value)) for key, value in expr.items)
        )
    if isinstance(expr, ast.Expansion):
        return ast.Expansion(
            _fold_expr(expr.subject),
            _fold_expr(expr.suffix) if expr.suffix else None,
        )
    if isinstance(expr, ast.InlineFilter):
        return ast.InlineFilter(_fold_expr(expr.subject), _fold_expr(expr.condition))
    if isinstance(expr, ast.RangeExpr):
        return ast.RangeExpr(_fold_expr(expr.low), _fold_expr(expr.high))
    if isinstance(expr, ast.Ternary):
        condition = _fold_expr(expr.condition)
        then = _fold_expr(expr.then)
        otherwise = _fold_expr(expr.otherwise)
        if isinstance(condition, ast.Literal):
            from repro.core.datamodel import truthy

            return then if truthy(condition.value) else otherwise
        return ast.Ternary(condition, then, otherwise)
    return expr


class _NoFold:
    pass


_NO_FOLD = _NoFold()


def _try_fold(op: str, left: Any, right: Any) -> Any:
    from repro.core import datamodel

    try:
        if op in ("+", "-", "*", "/", "%"):
            if (
                datamodel.type_of(left) is not datamodel.TypeTag.NUMBER
                or datamodel.type_of(right) is not datamodel.TypeTag.NUMBER
            ):
                return _NO_FOLD
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return _NO_FOLD if right == 0 else left / right
            return _NO_FOLD if right == 0 else left % right
        comparison = datamodel.compare(left, right)
        if op == "==":
            return comparison == 0
        if op == "!=":
            return comparison != 0
        if op == "<":
            return comparison < 0
        if op == "<=":
            return comparison <= 0
        if op == ">":
            return comparison > 0
        if op == ">=":
            return comparison >= 0
        if op == "AND":
            return datamodel.truthy(left) and datamodel.truthy(right)
        if op == "OR":
            return datamodel.truthy(left) or datamodel.truthy(right)
    except Exception:
        return _NO_FOLD
    return _NO_FOLD


def fold_constants(query: ast.Query) -> ast.Query:
    operations: list[ast.Operation] = []
    for operation in query.operations:
        operations.append(_map_operation_exprs(operation, _fold_expr))
    return ast.Query(operations)


def _map_operation_exprs(operation: ast.Operation, mapper) -> ast.Operation:
    if isinstance(operation, ast.FilterOp):
        return ast.FilterOp(mapper(operation.condition))
    if isinstance(operation, ast.ForOp):
        return ast.ForOp(operation.var, mapper(operation.source))
    if isinstance(operation, ast.LetOp):
        return ast.LetOp(operation.var, mapper(operation.value))
    if isinstance(operation, ast.SortOp):
        return ast.SortOp(
            [ast.SortKeySpec(mapper(key.expr), key.ascending) for key in operation.keys]
        )
    if isinstance(operation, ast.ReturnOp):
        return ast.ReturnOp(mapper(operation.expr), operation.distinct)
    if isinstance(operation, ast.TraversalOp):
        return dataclasses.replace(operation, start=mapper(operation.start))
    if isinstance(operation, ast.ShortestPathOp):
        return dataclasses.replace(
            operation, start=mapper(operation.start), goal=mapper(operation.goal)
        )
    if isinstance(operation, ast.CollectOp):
        return ast.CollectOp(
            [(name, mapper(expr)) for name, expr in operation.groups],
            operation.count_into,
            operation.into,
            [
                (name, func, mapper(arg))
                for name, func, arg in operation.aggregates
            ],
        )
    if isinstance(operation, ast.ReplaceOp):
        return ast.ReplaceOp(
            mapper(operation.key), mapper(operation.document), operation.target
        )
    if isinstance(operation, ast.UpsertOp):
        return ast.UpsertOp(
            mapper(operation.search),
            mapper(operation.insert_doc),
            mapper(operation.update_patch),
            operation.target,
        )
    if isinstance(operation, ast.InsertOp):
        return ast.InsertOp(mapper(operation.document), operation.target)
    if isinstance(operation, ast.UpdateOp):
        return ast.UpdateOp(
            mapper(operation.key), mapper(operation.changes), operation.target
        )
    if isinstance(operation, ast.RemoveOp):
        return ast.RemoveOp(mapper(operation.key), operation.target)
    return operation


# ---------------------------------------------------------------------------
# Rule 2: filter pushdown
# ---------------------------------------------------------------------------


def _variables_in(expr: ast.Expr) -> set[str]:
    names: set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.VarRef):
            names.add(node.name)
        if isinstance(node, ast.SubQuery):
            for operation in node.query.operations:
                names |= _operation_reads(operation)
        stack.extend(node.children())
    names.discard("$CURRENT")
    return names


def _operation_reads(operation: ast.Operation) -> set[str]:
    reads: set[str] = set()
    if isinstance(operation, ast.FilterOp):
        reads |= _variables_in(operation.condition)
    elif isinstance(operation, ast.ForOp):
        reads |= _variables_in(operation.source)
    elif isinstance(operation, ast.LetOp):
        reads |= _variables_in(operation.value)
    elif isinstance(operation, ast.SortOp):
        for key in operation.keys:
            reads |= _variables_in(key.expr)
    elif isinstance(operation, ast.ReturnOp):
        reads |= _variables_in(operation.expr)
    elif isinstance(operation, ast.TraversalOp):
        reads |= _variables_in(operation.start)
    elif isinstance(operation, ast.ShortestPathOp):
        reads |= _variables_in(operation.start)
        reads |= _variables_in(operation.goal)
    elif isinstance(operation, ast.CollectOp):
        for _name, expr in operation.groups:
            reads |= _variables_in(expr)
        for _name, _func, arg in operation.aggregates:
            reads |= _variables_in(arg)
    elif isinstance(operation, (ast.InsertOp, ast.UpdateOp, ast.RemoveOp)):
        for attr in ("document", "key", "changes"):
            expr = getattr(operation, attr, None)
            if expr is not None:
                reads |= _variables_in(expr)
    return reads


def _operation_binds(operation: ast.Operation) -> set[str]:
    if isinstance(operation, ast.TraversalOp):
        bound = {operation.var}
        if operation.edge_var:
            bound.add(operation.edge_var)
        return bound
    if isinstance(operation, (ast.ForOp, ast.ShortestPathOp)):
        return {operation.var}
    if isinstance(operation, (IndexScanOp, HashJoinOp)):
        return {operation.var}
    if isinstance(operation, MaterializeOp):
        return {operation.var}
    # Semi/anti joins bind nothing: only existence is observable, the
    # inner variable never escapes.
    if isinstance(operation, ast.LetOp):
        return {operation.var}
    if isinstance(operation, ast.CollectOp):
        bound = {name for name, _expr in operation.groups}
        bound |= {name for name, _func, _arg in operation.aggregates}
        if operation.count_into:
            bound.add(operation.count_into)
        if operation.into:
            bound.add(operation.into)
        return bound
    return set()


def push_down_filters(query: ast.Query) -> ast.Query:
    """Move each FILTER to just after the last operation binding a variable
    it reads.  Barriers (SORT/LIMIT/COLLECT/DML) are never crossed because
    crossing them changes semantics."""
    operations = list(query.operations)
    barriers = (
        ast.SortOp,
        ast.LimitOp,
        ast.CollectOp,
        ast.InsertOp,
        ast.UpdateOp,
        ast.RemoveOp,
        ast.ReplaceOp,
        ast.UpsertOp,
    )
    changed = True
    while changed:
        changed = False
        for index, operation in enumerate(operations):
            if not isinstance(operation, ast.FilterOp):
                continue
            needed = _variables_in(operation.condition)
            target = 0
            blocked = False
            for earlier_index in range(index - 1, -1, -1):
                earlier = operations[earlier_index]
                if isinstance(earlier, barriers):
                    blocked = True
                    target = earlier_index + 1
                    break
                if _operation_binds(earlier) & needed:
                    target = earlier_index + 1
                    break
            del blocked
            # Only move when the hop crosses a non-FILTER operation:
            # reordering a filter past sibling filters is semantically a
            # no-op, and attempting it makes two filters that share a
            # binder swap places forever.
            if target < index and any(
                not isinstance(operations[between], ast.FilterOp)
                for between in range(target, index)
            ):
                operations.pop(index)
                operations.insert(target, operation)
                changed = True
                break
    return ast.Query(operations)


# ---------------------------------------------------------------------------
# Rule 3: index selection
# ---------------------------------------------------------------------------


def _equality_conjuncts(condition: ast.Expr) -> list[ast.Expr]:
    """Split a condition into AND-conjuncts."""
    if isinstance(condition, ast.BinOp) and condition.op == "AND":
        return _equality_conjuncts(condition.left) + _equality_conjuncts(condition.right)
    return [condition]


def _attr_path(expr: ast.Expr, var: str) -> Optional[tuple]:
    """``var.a.b`` → ("a", "b"); anything else → None."""
    steps: list[str] = []
    node = expr
    while isinstance(node, ast.AttrAccess):
        steps.append(node.attribute)
        node = node.subject
    if isinstance(node, ast.VarRef) and node.name == var and steps:
        return tuple(reversed(steps))
    return None


def _is_probe_value(expr: ast.Expr, loop_var: str) -> bool:
    """True when *expr* can serve as an index probe: it must not depend on
    the loop variable itself (correlated outer variables are fine — the
    probe is re-evaluated per outer frame, which is an index nested-loop
    join)."""
    if isinstance(expr, ast.SubQuery):
        return False
    return loop_var not in _variables_in(expr)


def select_indexes(query: ast.Query, db) -> ast.Query:
    """Rewrite scan+filter pairs into index scans where the catalog allows."""
    operations = list(query.operations)
    result: list[ast.Operation] = []
    index = 0
    while index < len(operations):
        operation = operations[index]
        next_operation = operations[index + 1] if index + 1 < len(operations) else None
        rewritten = None
        if (
            isinstance(operation, ast.ForOp)
            and isinstance(operation.source, ast.VarRef)
            and isinstance(next_operation, ast.FilterOp)
        ):
            rewritten = _try_index_scan(operation, next_operation, db)
        if rewritten is not None:
            result.append(rewritten)
            index += 2
        else:
            result.append(operation)
            index += 1
    return ast.Query(result)


def _try_index_scan(
    for_op: ast.ForOp, filter_op: ast.FilterOp, db
) -> Optional[IndexScanOp]:
    from repro.query.statistics import index_selectivity

    source_name = for_op.source.name
    try:
        namespace = db.resolve(source_name).namespace
    except Exception:
        return None
    conjuncts = _equality_conjuncts(filter_op.condition)
    # Collect every index-servable conjunct, then pick the most selective
    # index (fewest expected matches per probe) — the cost-based choice.
    candidates: list[tuple[float, int, Any, tuple, ast.Expr]] = []
    for position, conjunct in enumerate(conjuncts):
        if not (isinstance(conjunct, ast.BinOp) and conjunct.op == "=="):
            continue
        for path_side, value_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            path = _attr_path(path_side, for_op.var)
            if path is None or not _is_probe_value(value_side, for_op.var):
                continue
            index_view = db.context.indexes.find(namespace, path, "point")
            if index_view is None:
                continue
            candidates.append(
                (index_selectivity(index_view), position, index_view, path, value_side)
            )
    if not candidates:
        return None
    candidates.sort(key=lambda entry: (entry[0], entry[1]))
    _selectivity, position, index_view, path, value_side = candidates[0]
    residual_conjuncts = conjuncts[:position] + conjuncts[position + 1:]
    residual = None
    for part in residual_conjuncts:
        residual = part if residual is None else ast.BinOp("AND", residual, part)
    return IndexScanOp(
        var=for_op.var,
        source_name=source_name,
        path=path,
        value=value_side,
        index_name=index_view.index.name,
        index_kind=index_view.index.kind,
        residual=residual,
        original_condition=filter_op.condition,
    )


# ---------------------------------------------------------------------------
# Rule 4: hash joins
# ---------------------------------------------------------------------------

#: Operations that can emit more than one frame per input frame — the
#: signal that everything downstream runs once *per outer row*.
_MULTI_FRAME_OPS = (
    ast.ForOp,
    ast.TraversalOp,
    ast.ShortestPathOp,
    IndexScanOp,
    HashJoinOp,
)


def build_hash_joins(query: ast.Query, db) -> ast.Query:
    """Rewrite correlated inner scans into hash joins.

    Pattern: an inner ``FOR x IN coll`` + ``FILTER … x.path == probe …``
    pair (after filter pushdown has made them adjacent, and after index
    selection has taken every pair an index can serve).  Executed naively
    the pair rescans *coll* once per outer frame — O(outer x inner); the
    :class:`HashJoinOp` builds a hash table over *coll* once and probes it
    per frame — O(outer + inner).

    The rewrite only fires when an earlier operation can produce multiple
    frames (otherwise the scan runs once and a plain filter — or an index
    scan — is already optimal), and never when the FOR source is a variable
    bound upstream (that is array iteration, not a collection scan).
    """
    operations = list(query.operations)
    result: list[ast.Operation] = []
    bound_vars: set[str] = set()
    inner_loop = False
    index = 0
    while index < len(operations):
        operation = operations[index]
        next_operation = (
            operations[index + 1] if index + 1 < len(operations) else None
        )
        if (
            inner_loop
            and isinstance(operation, ast.ForOp)
            and isinstance(operation.source, ast.VarRef)
            and operation.source.name not in bound_vars
            and isinstance(next_operation, ast.FilterOp)
        ):
            rewritten = _try_hash_join(operation, next_operation, db)
            if rewritten is not None:
                result.append(rewritten)
                bound_vars |= _operation_binds(rewritten)
                inner_loop = True
                index += 2
                continue
        if isinstance(operation, _MULTI_FRAME_OPS):
            inner_loop = True
        bound_vars |= _operation_binds(operation)
        result.append(operation)
        index += 1
    return ast.Query(result)


def _try_hash_join(
    for_op: ast.ForOp, filter_op: ast.FilterOp, db
) -> Optional[HashJoinOp]:
    source_name = for_op.source.name
    try:
        db.resolve(source_name)
    except Exception:
        return None
    conjuncts = _equality_conjuncts(filter_op.condition)
    for position, conjunct in enumerate(conjuncts):
        if not (isinstance(conjunct, ast.BinOp) and conjunct.op == "=="):
            continue
        for path_side, probe_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            path = _attr_path(path_side, for_op.var)
            if path is None or not _is_probe_value(probe_side, for_op.var):
                continue
            residual_conjuncts = conjuncts[:position] + conjuncts[position + 1:]
            residual = None
            for part in residual_conjuncts:
                residual = (
                    part if residual is None else ast.BinOp("AND", residual, part)
                )
            return HashJoinOp(
                var=for_op.var,
                source_name=source_name,
                build_path=path,
                probe=probe_side,
                residual=residual,
                original_condition=filter_op.condition,
            )
    return None


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


#: Legacy keyword → registry rule names (pre-registry callers and the
#: older ablation tests pass ``optimize(query, db, hash_joins=False)``).
_LEGACY_TOGGLES = {
    "fold": ("constant_folding",),
    "pushdown": ("filter_pushdown", "predicate_split"),
    "indexes": ("index_selection",),
    "hash_joins": ("hash_join",),
}


def optimize(
    query: ast.Query,
    db,
    fold: bool = True,
    pushdown: bool = True,
    indexes: bool = True,
    hash_joins: bool = True,
    disabled=None,
    ast_only: bool = False,
) -> ast.Query:
    """Drive the rule registry to a fixpoint over *query*.

    Rules apply in registry order (normalization → subquery rewrites →
    access paths; hash joins run last so index selection gets first pick:
    an index nested-loop probe needs no build and stays current under
    writes), repeating until a full pass changes nothing.

    Toggles compose from three sources: the legacy boolean kwargs, the
    explicit ``disabled`` iterable of rule names, and the database's
    ``optimizer_rules`` (:class:`repro.query.rules.RuleToggles`).  A
    disabled rule never fires — the ablation suite proves result parity
    for every single-rule ablation.

    ``ast_only=True`` applies only the AST-safe subset (folding,
    predicate split, pushdown): the output is guaranteed re-parseable
    through :mod:`repro.query.unparse`, which is what the cluster
    coordinator needs before segmenting a statement for shards.  Rules
    that inspect the catalog are likewise skipped when *db* is None.

    The names of the rules that fired are recorded on
    ``query.rules_fired`` (EXPLAIN renders them); with a database
    attached, the final plan is annotated with cardinality estimates fed
    by the statistics store's observed feedback.
    """
    from repro.query import rules as rules_module
    from repro.query.statistics import annotate_estimates

    off = set(disabled or ())
    legacy = {
        "fold": fold,
        "pushdown": pushdown,
        "indexes": indexes,
        "hash_joins": hash_joins,
    }
    for keyword, names in _LEGACY_TOGGLES.items():
        if not legacy[keyword]:
            off.update(names)
    toggles = getattr(db, "optimizer_rules", None)
    if toggles is not None:
        off |= set(toggles.disabled)
    context = rules_module.RuleContext(db=db)
    optimized = query
    for _pass in range(rules_module.MAX_PASSES):
        changed = False
        for rule in rules_module.REGISTRY:
            if rule.name in off:
                continue
            if not rule.ast_safe and (ast_only or db is None):
                continue
            rewritten = rule.rewrite(optimized, context)
            if rewritten is not optimized and rewritten != optimized:
                optimized = rewritten
                changed = True
                if rule.name not in context.fired:
                    context.fired.append(rule.name)
        if not changed:
            break
    if optimized is query:
        # Never hand back the caller's object with mutated metadata.
        optimized = ast.Query(list(query.operations))
    optimized.rules_fired = tuple(context.fired)
    if db is not None and not ast_only:
        annotate_estimates(optimized, db)
    return optimized
