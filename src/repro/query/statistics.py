"""Catalog statistics for cost-based decisions.

The optimizer's index selection asks: of the (possibly several) equality
conjuncts that an index could serve, which one to probe?  The classic
answer is selectivity — expected matches per probe = rows / distinct keys.
These statistics come straight from live structures (row-view counts and
index distinct counts), so they are always current and cost nothing to
maintain.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["collection_cardinality", "index_selectivity", "estimate_probe_cost"]


def collection_cardinality(db, source_name: str) -> int:
    """Current record count of a catalog object."""
    store = db.resolve(source_name)
    namespace = getattr(store, "namespace", None)
    if namespace is None:
        return 0
    return db.context.rows.count(namespace)


def index_selectivity(index_view) -> float:
    """Expected fraction of rows matched by one equality probe
    (1/distinct-keys; 1.0 when the index is empty — i.e. useless)."""
    distinct = len(index_view.index)
    if distinct <= 0:
        return 1.0
    return 1.0 / distinct


def estimate_probe_cost(db, source_name: str, index_view) -> float:
    """Estimated rows fetched per probe: cardinality × selectivity."""
    cardinality = collection_cardinality(db, source_name)
    return cardinality * index_selectivity(index_view)
